"""Trajectory enrichment: attaching context data along a track.

Interlinking's analytical payoff: once positions link to weather cells,
a trajectory can be *enriched* — every sample annotated with the
conditions it sailed through — and summarised ("mean wind experienced",
"hours in rough sea"). These summaries feed both the VA layer and
voyage-level analytics (weather-normalised performance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.trajectory import Trajectory
from repro.sources.weather import WeatherCell, WeatherGridSource


@dataclass(frozen=True, slots=True)
class EnrichedSample:
    """One trajectory sample with its weather context."""

    t: float
    lon: float
    lat: float
    weather: WeatherCell


@dataclass(frozen=True, slots=True)
class WeatherExposure:
    """Voyage-level weather summary.

    Attributes:
        mean_wind_mps / max_wind_mps: Wind experienced along the track.
        mean_wave_m / max_wave_m: Significant wave height experienced.
        rough_fraction: Fraction of samples with waves above the
            roughness threshold.
        n_samples: Samples the summary is computed over.
    """

    mean_wind_mps: float
    max_wind_mps: float
    mean_wave_m: float
    max_wave_m: float
    rough_fraction: float
    n_samples: int


def enrich_trajectory(
    trajectory: Trajectory,
    weather: WeatherGridSource,
    sample_period_s: float = 300.0,
) -> list[EnrichedSample]:
    """Annotate a trajectory with the weather cell at each (resampled)
    position.

    Args:
        sample_period_s: Enrichment resolution; weather varies on
            hour/cell scales, so 5-minute sampling loses nothing.
    """
    if len(trajectory) == 0:
        return []
    track = (
        trajectory.resample(sample_period_s)
        if trajectory.duration > sample_period_s
        else trajectory
    )
    out: list[EnrichedSample] = []
    for i in range(len(track)):
        lon = float(track.lon[i])
        lat = float(track.lat[i])
        t = float(track.t[i])
        out.append(
            EnrichedSample(
                t=t, lon=lon, lat=lat, weather=weather.observation_at(lon, lat, t)
            )
        )
    return out


def weather_exposure(
    samples: list[EnrichedSample],
    rough_wave_m: float = 2.5,
) -> WeatherExposure:
    """Summarise the conditions a voyage was exposed to."""
    if not samples:
        raise ValueError("cannot summarise an empty enrichment")
    winds = np.array([s.weather.wind_speed_mps for s in samples])
    waves = np.array([s.weather.wave_height_m for s in samples])
    return WeatherExposure(
        mean_wind_mps=float(winds.mean()),
        max_wind_mps=float(winds.max()),
        mean_wave_m=float(waves.mean()),
        max_wave_m=float(waves.max()),
        rough_fraction=float((waves >= rough_wave_m).mean()),
        n_samples=len(samples),
    )

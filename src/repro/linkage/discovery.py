"""Link discovery evaluators: naive baselines and grid-blocked versions.

Blocking assigns items to spatio-temporal blocks (grid cell × time slot);
only pairs sharing a block (or adjacent blocks, to avoid boundary misses)
are compared exactly. For distance relations with threshold ``r`` the
block side is chosen ≥ r so neighbour rings of 1 suffice — recall stays
1.0 by construction, which E3 verifies empirically.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geo.geodesy import haversine_m
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.linkage.relations import Link, LinkRelation
from repro.model.reports import PositionReport
from repro.sources.weather import WeatherGridSource


@dataclass(frozen=True, slots=True)
class SpatialItem:
    """A linkable resource: an id with position and time."""

    item_id: str
    entity_id: str
    lon: float
    lat: float
    t: float


def items_from_reports(reports: Iterable[PositionReport]) -> list[SpatialItem]:
    """Wrap position reports as linkable items (id = entity@time)."""
    return [
        SpatialItem(
            item_id=f"{r.entity_id}@{r.t:.3f}",
            entity_id=r.entity_id,
            lon=r.lon,
            lat=r.lat,
            t=r.t,
        )
        for r in reports
    ]


# -- proximity (NEAR) ----------------------------------------------------------


def proximity_links_naive(
    items: Sequence[SpatialItem],
    radius_m: float,
    max_dt_s: float,
) -> tuple[list[Link], int]:
    """All cross-entity pairs within ``radius_m`` and ``max_dt_s``.

    Returns ``(links, candidates_compared)`` — the baseline compares every
    cross-entity pair, which is what blocking is measured against.
    """
    links: list[Link] = []
    candidates = 0
    n = len(items)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = items[i], items[j]
            if a.entity_id == b.entity_id:
                continue
            candidates += 1
            link = _check_pair(a, b, radius_m, max_dt_s)
            if link is not None:
                links.append(link)
    return (links, candidates)


def proximity_links_blocked(
    items: Sequence[SpatialItem],
    radius_m: float,
    max_dt_s: float,
    grid: GeoGrid | None = None,
) -> tuple[list[Link], int]:
    """Grid + time-slot blocked proximity discovery (recall-preserving).

    Args:
        grid: Blocking grid; when ``None`` one is derived with cell sides
            of at least ``radius_m`` over the items' extent.

    Returns:
        ``(links, candidates_compared)``.
    """
    if not items:
        return ([], 0)
    if grid is None:
        grid = _blocking_grid(items, radius_m)
    slot_s = max(max_dt_s, 1.0)

    blocks: dict[tuple[int, int, int], list[SpatialItem]] = defaultdict(list)
    for item in items:
        ix, iy = grid.cell_of(item.lon, item.lat)
        slot = int(item.t // slot_s)
        blocks[(ix, iy, slot)].append(item)

    links: list[Link] = []
    candidates = 0
    seen_pairs: set[tuple[str, str]] = set()
    for (ix, iy, slot), members in blocks.items():
        neighbours: list[SpatialItem] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for ds in (-1, 0, 1):
                    # Only look "forward" to avoid double-visiting pairs;
                    # the home block itself is handled below.
                    if (dx, dy, ds) == (0, 0, 0):
                        continue
                    neighbours.extend(blocks.get((ix + dx, iy + dy, slot + ds), ()))
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if a.entity_id == b.entity_id:
                    continue
                candidates += 1
                link = _check_pair(a, b, radius_m, max_dt_s)
                if link is not None and _remember(link, seen_pairs):
                    links.append(link)
            for b in neighbours:
                if a.entity_id == b.entity_id:
                    continue
                pair = _pair_ids(a, b)
                if pair in seen_pairs:
                    continue
                candidates += 1
                link = _check_pair(a, b, radius_m, max_dt_s)
                if link is not None and _remember(link, seen_pairs):
                    links.append(link)
    return (links, candidates)


def _blocking_grid(items: Sequence[SpatialItem], radius_m: float) -> GeoGrid:
    from repro.geo.bbox import BBox

    bbox = BBox.from_points((i.lon, i.lat) for i in items).expanded(0.01)
    mid_lat = (bbox.min_lat + bbox.max_lat) / 2.0
    metres_per_deg_lon = max(1.0, haversine_m(0.0, mid_lat, 1.0, mid_lat))
    metres_per_deg_lat = haversine_m(0.0, mid_lat - 0.5, 0.0, mid_lat + 0.5)
    cell_deg_lon = radius_m / metres_per_deg_lon
    cell_deg_lat = radius_m / metres_per_deg_lat
    nx = max(1, int(bbox.width / cell_deg_lon))
    ny = max(1, int(bbox.height / cell_deg_lat))
    return GeoGrid(bbox=bbox, nx=nx, ny=ny)


def _check_pair(
    a: SpatialItem, b: SpatialItem, radius_m: float, max_dt_s: float
) -> Link | None:
    if abs(a.t - b.t) > max_dt_s:
        return None
    distance = haversine_m(a.lon, a.lat, b.lon, b.lat)
    if distance > radius_m:
        return None
    return Link(
        source_id=a.item_id,
        target_id=b.item_id,
        relation=LinkRelation.NEAR,
        value=distance,
    ).canonical()


def _pair_ids(a: SpatialItem, b: SpatialItem) -> tuple[str, str]:
    return (a.item_id, b.item_id) if a.item_id <= b.item_id else (b.item_id, a.item_id)


def _remember(link: Link, seen: set[tuple[str, str]]) -> bool:
    pair = (link.source_id, link.target_id)
    if pair in seen:
        return False
    seen.add(pair)
    return True


# -- containment (WITHIN_ZONE) ---------------------------------------------------


def zone_links_naive(
    items: Sequence[SpatialItem], zones: Sequence[Polygon]
) -> tuple[list[Link], int]:
    """Every (item, zone) pair tested exactly."""
    links: list[Link] = []
    candidates = 0
    for item in items:
        for zone in zones:
            candidates += 1
            if zone.contains(item.lon, item.lat):
                links.append(
                    Link(item.item_id, zone.name, LinkRelation.WITHIN_ZONE)
                )
    return (links, candidates)


def zone_links_blocked(
    items: Sequence[SpatialItem], zones: Sequence[Polygon]
) -> tuple[list[Link], int]:
    """Bbox pre-filter per zone before the exact point-in-polygon test."""
    links: list[Link] = []
    candidates = 0
    for item in items:
        for zone in zones:
            if not zone.bbox.contains(item.lon, item.lat):
                continue
            candidates += 1
            if zone.contains(item.lon, item.lat):
                links.append(
                    Link(item.item_id, zone.name, LinkRelation.WITHIN_ZONE)
                )
    return (links, candidates)


# -- enrichment (HAS_WEATHER) ------------------------------------------------------


def weather_links(
    items: Sequence[SpatialItem], weather: WeatherGridSource
) -> list[Link]:
    """Deterministic enrichment: each item links to its weather cell.

    Containment in a regular grid is a direct lookup, so there is no
    naive/blocked distinction to measure here.
    """
    links: list[Link] = []
    for item in items:
        cell = weather.observation_at(item.lon, item.lat, item.t)
        links.append(
            Link(
                source_id=item.item_id,
                target_id=f"weather/{cell.cell_id}/{cell.t_start:.0f}",
                relation=LinkRelation.HAS_WEATHER,
            )
        )
    return links

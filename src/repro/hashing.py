"""Stable hashing for routing, seeding and color assignment.

Python's builtin ``hash()`` is salted per interpreter (``PYTHONHASHSEED``),
so anything derived from it — shard routing, per-entity RNG seeds,
trajectory colors — silently changes between runs and *between processes
of the same run*. Every consumer that needs run-to-run or cross-process
determinism must instead use :func:`stable_hash`, which is a pure
function of the key's bytes (CRC-32) and therefore identical in every
interpreter, on every platform, under every hash seed.

The multi-process runtime (:mod:`repro.runtime`) depends on this for
correctness, not just reproducibility: the parent routes a record to a
shard and the restarted worker must agree on which records belong to it.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_hash", "stable_shard"]


def _key_bytes(key: object) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bool):  # before int: bool is an int subclass
        return b"\x01" if key else b"\x00"
    if isinstance(key, int):
        return str(key).encode("ascii")
    if isinstance(key, tuple):
        return b"\x1f".join(_key_bytes(part) for part in key)
    raise TypeError(f"no stable byte encoding for key of type {type(key).__name__}")


def stable_hash(key: object) -> int:
    """A deterministic 32-bit hash of ``key``.

    Accepts ``str``, ``bytes``, ``int``, ``bool`` and (nested) tuples of
    those. Unlike builtin ``hash()``, the result does not depend on
    ``PYTHONHASHSEED``, the interpreter, or the platform.
    """
    return zlib.crc32(_key_bytes(key))


def stable_shard(key: object, n_shards: int) -> int:
    """Map ``key`` onto one of ``n_shards`` buckets, stably."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return stable_hash(key) % n_shards

"""The synopses generator: online, error-bounded trajectory compression.

Decision rule per report (per entity):

1. keep every critical point (from :class:`CriticalPointDetector`);
2. otherwise keep the report iff dead-reckoning from the last *kept* report
   (constant speed and heading) mispredicts the current position by more
   than ``dr_error_threshold_m``;
3. drop everything else.

Rule 2 bounds the reconstruction error of the synopsis: any dropped report
was within the threshold of the linear motion model anchored at a kept
report, so linear interpolation between kept reports stays within a small
factor of the threshold. Rule 1 preserves the semantic structure (stops,
turns, gaps) that downstream analytics — and the paper's event detection —
depend on.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.geo.geodesy import destination_point, haversine_m
from repro.insitu.critical import AnnotatedReport, CriticalPointDetector, CriticalPointType
from repro.model.reports import PositionReport
from repro.model.trajectory import Trajectory
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.streams.operators import KeyedProcessOperator
from repro.streams.records import Record


@dataclass(frozen=True)
class SynopsesConfig:
    """Tuning knobs of the synopses generator.

    Attributes:
        dr_error_threshold_m: Dead-reckoning error bound; the main
            compression-vs-fidelity dial (experiment E1 sweeps it).
        max_silence_s: A report is always kept when this much time passed
            since the last kept one (bounds worst-case reconstruction gaps).
        stop_speed_mps / turn_threshold_deg / speed_change_ratio /
        gap_threshold_s: forwarded to :class:`CriticalPointDetector`.
        enabled_critical: Detector subset (ablation hook, experiment E9).
    """

    dr_error_threshold_m: float = 120.0
    max_silence_s: float = 600.0
    stop_speed_mps: float = 0.8
    turn_threshold_deg: float = 12.0
    speed_change_ratio: float = 0.25
    gap_threshold_s: float = 300.0
    enabled_critical: frozenset[CriticalPointType] = frozenset(CriticalPointType)

    def __post_init__(self) -> None:
        if self.dr_error_threshold_m < 0:
            raise ValueError("dr_error_threshold_m must be >= 0")
        if self.max_silence_s <= 0:
            raise ValueError("max_silence_s must be positive")

    def detector(self) -> CriticalPointDetector:
        """Build the matching critical-point detector."""
        return CriticalPointDetector(
            stop_speed_mps=self.stop_speed_mps,
            turn_threshold_deg=self.turn_threshold_deg,
            speed_change_ratio=self.speed_change_ratio,
            gap_threshold_s=self.gap_threshold_s,
            enabled=self.enabled_critical,
        )


@dataclass
class _KeptState:
    report: PositionReport
    speed: float | None
    heading: float | None


class SynopsesGenerator:
    """Online keep/drop decisions over a report stream.

    Call :meth:`process` per report; it returns the annotated report plus
    the keep decision. :attr:`seen` / :attr:`kept` track the compression
    ratio achieved so far. With a ``metrics`` registry, the same numbers
    land on the shared surface (``insitu.synopses.seen`` / ``kept``
    counters and the ``insitu.synopses.compression_ratio`` gauge) when
    :meth:`publish_metrics` runs — publishing is deferred so the per-record
    hot path stays free of instrument calls.
    """

    def __init__(
        self,
        config: SynopsesConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or SynopsesConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._detector = self.config.detector()
        self._last_kept: dict[str, _KeptState] = {}
        self._last_seen: dict[str, PositionReport] = {}
        self.seen = 0
        self.kept = 0
        self._published_seen = 0
        self._published_kept = 0

    @property
    def compression_ratio(self) -> float:
        """Fraction of reports *dropped* so far (0 before any input)."""
        if self.seen == 0:
            return 0.0
        return 1.0 - (self.kept / self.seen)

    def process(self, report: PositionReport) -> tuple[AnnotatedReport, bool]:
        """Decide one report. Returns ``(annotated, keep)``."""
        self.seen += 1
        annotated = self._detector.process(report)
        keep = self._decide(annotated)
        self._last_seen[report.entity_id] = report
        if keep:
            self.kept += 1
            self._last_kept[report.entity_id] = _KeptState(
                report=report, speed=report.speed, heading=report.heading
            )
        return (annotated, keep)

    def process_batch(
        self, reports: Sequence[PositionReport]
    ) -> list[tuple[AnnotatedReport, bool]]:
        """Decide a batch of reports, in order; one call per batch.

        The decision recurrence is inherently sequential per entity
        (dead-reckoning projects from the last *kept* report), so this is
        a plain loop — it exists so the micro-batch pipeline stage has a
        single entry point per batch rather than per record.
        """
        return [self.process(report) for report in reports]

    def publish_metrics(self) -> None:
        """Top the registry up to the current seen/kept totals.

        Counters only move by the delta since the last publish, so calling
        this at every flush point (stream finish, pipeline finalize,
        checkpoint) never double-counts.
        """
        if not self.metrics.enabled:
            return
        self.metrics.counter("insitu.synopses.seen").inc(self.seen - self._published_seen)
        self.metrics.counter("insitu.synopses.kept").inc(self.kept - self._published_kept)
        self._published_seen = self.seen
        self._published_kept = self.kept
        self.metrics.gauge("insitu.synopses.compression_ratio").set(
            self.compression_ratio
        )

    def finish(self, entity_id: str) -> PositionReport | None:
        """Close an entity's track at end of stream.

        Returns the entity's last seen report when it was dropped by the
        online rule — the synopsis must include the track's final position
        or reconstruction error past the last kept point is unbounded.
        Counts the late keep toward the compression statistics.
        """
        last_seen = self._last_seen.get(entity_id)
        if last_seen is None:
            return None
        last_kept = self._last_kept.get(entity_id)
        if last_kept is not None and last_kept.report.t >= last_seen.t:
            return None
        self.kept += 1
        self._last_kept[entity_id] = _KeptState(
            report=last_seen, speed=last_seen.speed, heading=last_seen.heading
        )
        return last_seen

    def finish_all(self) -> list[PositionReport]:
        """Close every entity's track; returns the late-kept reports."""
        out = []
        for entity_id in list(self._last_seen):
            report = self.finish(entity_id)
            if report is not None:
                out.append(report)
        self.publish_metrics()
        return out

    def _decide(self, annotated: AnnotatedReport) -> bool:
        if annotated.is_critical:
            return True
        report = annotated.report
        kept = self._last_kept.get(report.entity_id)
        if kept is None:
            return True
        dt = report.t - kept.report.t
        if dt >= self.config.max_silence_s:
            return True
        predicted = self._dead_reckon(kept, dt)
        if predicted is None:
            # No kinematic state to predict with: fall back to displacement.
            error = haversine_m(kept.report.lon, kept.report.lat, report.lon, report.lat)
        else:
            error = haversine_m(predicted[0], predicted[1], report.lon, report.lat)
        return error > self.config.dr_error_threshold_m

    @staticmethod
    def _dead_reckon(kept: _KeptState, dt: float) -> tuple[float, float] | None:
        if kept.speed is None or kept.heading is None:
            return None
        return destination_point(
            kept.report.lon, kept.report.lat, kept.heading, kept.speed * dt
        )

    def reset(self) -> None:
        """Forget all state and counters."""
        self._detector.reset()
        self._last_kept.clear()
        self._last_seen.clear()
        self.seen = 0
        self.kept = 0
        self._published_seen = 0
        self._published_kept = 0

    def snapshot(self) -> dict:
        """Capture generator + detector state for a checkpoint."""
        return {
            "detector": self._detector.snapshot(),
            "last_kept": copy.deepcopy(self._last_kept),
            "last_seen": copy.deepcopy(self._last_seen),
            "seen": self.seen,
            "kept": self.kept,
            "published_seen": self._published_seen,
            "published_kept": self._published_kept,
        }

    def restore(self, state: dict) -> None:
        """Reinstate state captured by :meth:`snapshot`."""
        self._detector.restore(state["detector"])
        self._last_kept = copy.deepcopy(state["last_kept"])
        self._last_seen = copy.deepcopy(state["last_seen"])
        self.seen = state["seen"]
        self.kept = state["kept"]
        self._published_seen = state.get("published_seen", 0)
        self._published_kept = state.get("published_kept", 0)


class SynopsesOperator(KeyedProcessOperator):
    """Streaming wrapper: emits only kept (annotated) reports.

    Keyed by entity id; the value type changes from :class:`PositionReport`
    to :class:`AnnotatedReport` downstream.
    """

    def __init__(
        self,
        config: SynopsesConfig | None = None,
        name: str = "synopses",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(key_fn=lambda r: r.entity_id, name=name)
        self.generator = SynopsesGenerator(config, metrics=metrics)

    def process_keyed(self, record: Record, state: dict[str, Any]) -> Iterable[Record]:
        annotated, keep = self.generator.process(record.value)
        if keep:
            return (record.with_value(annotated),)
        return ()

    def flush_key(self, key: Any, state: dict[str, Any]) -> Iterable[Record]:
        report = self.generator.finish(key)
        if report is None:
            return ()
        return (
            Record(
                event_time=report.t,
                value=AnnotatedReport(report=report, critical=()),
                key=key,
            ),
        )

    def snapshot(self) -> Any:
        return {"keyed": super().snapshot(), "generator": self.generator.snapshot()}

    def restore(self, state: Any) -> None:
        super().restore(state["keyed"])
        self.generator.restore(state["generator"])


def compress_trajectory(
    trajectory: Trajectory,
    config: SynopsesConfig | None = None,
    reports: list[PositionReport] | None = None,
) -> tuple[Trajectory, float]:
    """Batch helper: compress a trajectory through the synopses generator.

    Args:
        trajectory: The (dense) input trajectory.
        config: Synopses configuration.
        reports: When given, these reports are compressed instead of
            synthesizing reports from the trajectory samples (used when the
            caller has the original measured stream).

    Returns:
        ``(compressed trajectory, compression ratio)`` where the ratio is
        the fraction of samples dropped.
    """
    generator = SynopsesGenerator(config)
    if reports is None:
        reports = _reports_from_trajectory(trajectory)
    kept_points = []
    for report in reports:
        annotated, keep = generator.process(report)
        if keep:
            kept_points.append(report.point())
    final = generator.finish(trajectory.entity_id)
    if final is not None:
        kept_points.append(final.point())
    compressed = Trajectory.from_points(
        trajectory.entity_id, kept_points, domain=trajectory.domain
    )
    return (compressed, generator.compression_ratio)


def _reports_from_trajectory(trajectory: Trajectory) -> list[PositionReport]:
    """Synthesize reports (with derived speed/heading) from samples."""
    from repro.geo.geodesy import initial_bearing_deg

    reports: list[PositionReport] = []
    n = len(trajectory)
    for i in range(n):
        point = trajectory[i]
        speed = heading = None
        if i + 1 < n:
            nxt = trajectory[i + 1]
            dt = nxt.t - point.t
            dist = haversine_m(point.lon, point.lat, nxt.lon, nxt.lat)
            if dt > 0:
                speed = dist / dt
            if dist > 1.0:
                heading = initial_bearing_deg(point.lon, point.lat, nxt.lon, nxt.lat)
        reports.append(
            PositionReport(
                entity_id=trajectory.entity_id,
                t=point.t,
                lon=point.lon,
                lat=point.lat,
                alt=point.alt,
                speed=speed,
                heading=heading,
                domain=trajectory.domain,
            )
        )
    return reports

"""The synopses generator: online, error-bounded trajectory compression.

Decision rule per report (per entity):

1. keep every critical point (from :class:`CriticalPointDetector`);
2. otherwise keep the report iff dead-reckoning from the last *kept* report
   (constant speed and heading) mispredicts the current position by more
   than ``dr_error_threshold_m``;
3. drop everything else.

Rule 2 bounds the reconstruction error of the synopsis: any dropped report
was within the threshold of the linear motion model anchored at a kept
report, so linear interpolation between kept reports stays within a small
factor of the threshold. Rule 1 preserves the semantic structure (stops,
turns, gaps) that downstream analytics — and the paper's event detection —
depend on.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.geo.geodesy import (
    EARTH_RADIUS_M,
    destination_point,
    haversine_m,
    heading_difference_deg,
    sphere_unit_vectors,
)
from repro.insitu.critical import AnnotatedReport, CriticalPointDetector, CriticalPointType
from repro.model.reports import PositionReport

if TYPE_CHECKING:
    from repro.core.recordbatch import RecordBatch
from repro.model.trajectory import Trajectory
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.streams.operators import KeyedProcessOperator
from repro.streams.records import Record


@dataclass(frozen=True)
class SynopsesConfig:
    """Tuning knobs of the synopses generator.

    Attributes:
        dr_error_threshold_m: Dead-reckoning error bound; the main
            compression-vs-fidelity dial (experiment E1 sweeps it).
        max_silence_s: A report is always kept when this much time passed
            since the last kept one (bounds worst-case reconstruction gaps).
        stop_speed_mps / turn_threshold_deg / speed_change_ratio /
        gap_threshold_s: forwarded to :class:`CriticalPointDetector`.
        enabled_critical: Detector subset (ablation hook, experiment E9).
    """

    dr_error_threshold_m: float = 120.0
    max_silence_s: float = 600.0
    stop_speed_mps: float = 0.8
    turn_threshold_deg: float = 12.0
    speed_change_ratio: float = 0.25
    gap_threshold_s: float = 300.0
    enabled_critical: frozenset[CriticalPointType] = frozenset(CriticalPointType)

    def __post_init__(self) -> None:
        if self.dr_error_threshold_m < 0:
            raise ValueError("dr_error_threshold_m must be >= 0")
        if self.max_silence_s <= 0:
            raise ValueError("max_silence_s must be positive")

    def detector(self) -> CriticalPointDetector:
        """Build the matching critical-point detector."""
        return CriticalPointDetector(
            stop_speed_mps=self.stop_speed_mps,
            turn_threshold_deg=self.turn_threshold_deg,
            speed_change_ratio=self.speed_change_ratio,
            gap_threshold_s=self.gap_threshold_s,
            enabled=self.enabled_critical,
        )


@dataclass
class _KeptState:
    report: PositionReport
    speed: float | None
    heading: float | None


def _anchor_basis(
    lon: float, lat: float, speed: float | None, heading: float | None, radius: float
) -> tuple[float, float, float, bool, float, float, float, float]:
    """Unit position vector and motion basis of a dead-reckoning anchor.

    Returns ``(ax, ay, az, have_kin, bx, by, bz, c)``: the anchor's unit
    3-vector, whether kinematics are available, the unit tangent vector in
    the heading direction (``cos(bearing)·north + sin(bearing)·east``) and
    the angular rate ``speed / radius``. Dead-reckoning ``dt`` seconds is
    then the great-circle rotation ``a·cos(c·dt) + b·sin(c·dt)`` — the
    same mathematical point :func:`destination_point` computes, differing
    only in floating-point route.
    """
    phi = math.radians(lat)
    lam = math.radians(lon)
    cphi = math.cos(phi)
    sphi = math.sin(phi)
    clam = math.cos(lam)
    slam = math.sin(lam)
    ax = cphi * clam
    ay = cphi * slam
    az = sphi
    if speed is None or heading is None:
        return (ax, ay, az, False, 0.0, 0.0, 0.0, 0.0)
    beta = math.radians(heading)
    cb = math.cos(beta)
    sb = math.sin(beta)
    bx = cb * (-sphi * clam) + sb * (-slam)
    by = cb * (-sphi * slam) + sb * clam
    bz = cb * cphi
    return (ax, ay, az, True, bx, by, bz, speed / radius)


class SynopsesGenerator:
    """Online keep/drop decisions over a report stream.

    Call :meth:`process` per report; it returns the annotated report plus
    the keep decision. :attr:`seen` / :attr:`kept` track the compression
    ratio achieved so far. With a ``metrics`` registry, the same numbers
    land on the shared surface (``insitu.synopses.seen`` / ``kept``
    counters and the ``insitu.synopses.compression_ratio`` gauge) when
    :meth:`publish_metrics` runs — publishing is deferred so the per-record
    hot path stays free of instrument calls.
    """

    def __init__(
        self,
        config: SynopsesConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or SynopsesConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._detector = self.config.detector()
        self._last_kept: dict[str, _KeptState] = {}
        self._last_seen: dict[str, PositionReport] = {}
        self.seen = 0
        self.kept = 0
        self._published_seen = 0
        self._published_kept = 0

    @property
    def compression_ratio(self) -> float:
        """Fraction of reports *dropped* so far (0 before any input)."""
        if self.seen == 0:
            return 0.0
        return 1.0 - (self.kept / self.seen)

    def process(self, report: PositionReport) -> tuple[AnnotatedReport, bool]:
        """Decide one report. Returns ``(annotated, keep)``."""
        self.seen += 1
        annotated = self._detector.process(report)
        keep = self._decide(annotated)
        self._last_seen[report.entity_id] = report
        if keep:
            self.kept += 1
            self._last_kept[report.entity_id] = _KeptState(
                report=report, speed=report.speed, heading=report.heading
            )
        return (annotated, keep)

    def process_batch(
        self, reports: Sequence[PositionReport]
    ) -> list[tuple[AnnotatedReport, bool]]:
        """Decide a batch of reports, in order; one call per batch.

        The decision recurrence is inherently sequential per entity
        (dead-reckoning projects from the last *kept* report), so this is
        a plain loop — it exists so the micro-batch pipeline stage has a
        single entry point per batch rather than per record.
        """
        return [self.process(report) for report in reports]

    def process_recordbatch(
        self, rb: "RecordBatch", active_mask: np.ndarray
    ) -> list[tuple[AnnotatedReport | None, bool] | None]:
        """Columnar keep/drop walk over a batch's active positions.

        Decision-identical to calling :meth:`process` per active record in
        stream order, by construction:

        * A conservative guard re-evaluates every *exact* arithmetic
          condition of :class:`CriticalPointDetector` (gap ``dt``, stop
          thresholds, turn angle, speed-change ratio — all raw-field
          float ops identical to the scalar ones) and sends any record
          that could fire a critical point, derive a missing field, or
          mutate reference state through the scalar :meth:`process`. The
          guard ignores the ``enabled`` ablation subset, which only ever
          adds scalar calls, never skips a fire.
        * Provably boring records decide keep/drop on the unit-sphere
          *chord* of the dead-reckoning error — monotonically equivalent
          to the haversine distance — against a band of half-width
          ``1e-6`` relative (plus an absolute floor) around the chord
          threshold. The scalar and chord routes agree far inside the
          band (their floating-point routes differ by ~1e-11 relative);
          records landing inside it replay through :meth:`process`.

        Per-entity detector/seen state is synced lazily (once per scalar
        call and at segment end), so the observable state after the batch
        matches the per-record path exactly. Returns a position-indexed
        list: ``(annotated, True)`` for keeps, ``(None, False)`` for
        drops, ``None`` at inactive positions.
        """
        det = self._detector
        states = det._states
        gap_th = det.gap_threshold_s
        stop_sp = det.stop_speed_mps
        turn_th = det.turn_threshold_deg
        sc_ratio = det.speed_change_ratio
        max_sil = self.config.max_silence_s
        thr = self.config.dr_error_threshold_m
        radius = EARTH_RADIUS_M
        # Chord threshold: d > thr on the sphere iff chord² > (2 sin(thr/2R))²
        # while thr stays below the antipode (always, for real configs).
        use_chord = thr < math.pi * radius
        cu = 2.0 * math.sin(thr / (2.0 * radius)) if use_chord else 0.0
        cu2 = cu * cu
        # Band half-width: relative term for the chord-vs-haversine ulp
        # spread, a linear term bounding the destination_point-vs-rotation
        # route difference (≲1e-8 m ≈ 1.6e-15 chord units, ×60 headroom),
        # and an absolute floor for thr → 0.
        eps = cu2 * 1e-6 + cu * 1e-13 + 1e-29
        hi = cu2 + eps
        lo = cu2 - eps

        reports = rb.reports
        t_l = rb.t.tolist()
        spd_l = rb.speed.tolist()
        hdg_l = rb.heading.tolist()
        lon_l = rb.lon.tolist()
        lat_l = rb.lat.tolist()
        ux, uy, uz = sphere_unit_vectors(rb.lon, rb.lat)
        x_l = ux.tolist()
        y_l = uy.tolist()
        z_l = uz.tolist()
        out: list[tuple[AnnotatedReport | None, bool] | None] = [None] * len(reports)
        nseen = 0

        for _code, eid, seg in rb.segments():
            pos = seg[active_mask[seg]].tolist()
            if not pos:
                continue
            st = states.get(eid)
            if st is None or st.last is None:
                last_t = None
                stopped = False
                ref_h = None
                ref_s = None
            else:
                last_t = st.last.t
                stopped = st.stopped
                ref_h = st.prev_heading
                ref_s = st.ref_speed
            ks = self._last_kept.get(eid)
            if ks is None:
                anchor_t = None
                ax = ay = az = bx = by = bz = c = 0.0
                have_kin = False
            else:
                anchor_t = ks.report.t
                ax, ay, az, have_kin, bx, by, bz, c = _anchor_basis(
                    ks.report.lon, ks.report.lat, ks.speed, ks.heading, radius
                )
            pend = -1
            for p in pos:
                t = t_l[p]
                spd = spd_l[p]
                hdg = hdg_l[p]
                # Conservative superset of every detector fire / state write
                # (`spd != spd` is the NaN ↔ scalar None-derivation guard).
                if last_t is None:
                    interesting = True
                else:
                    dt = t - last_t
                    if dt > gap_th or spd != spd:
                        interesting = True
                    elif (spd >= stop_sp) if stopped else (spd < stop_sp):
                        interesting = True
                    elif hdg != hdg or ref_h is None:
                        interesting = True
                    elif (not stopped) and heading_difference_deg(hdg, ref_h) >= turn_th:
                        interesting = True
                    elif ref_s is None:
                        interesting = True
                    elif ref_s > stop_sp and abs(spd - ref_s) / ref_s >= sc_ratio:
                        interesting = True
                    else:
                        interesting = False
                decide_scalar = interesting
                keep = False
                if not interesting:
                    if anchor_t is None:
                        keep = True
                    else:
                        dta = t - anchor_t
                        if dta >= max_sil:
                            keep = True
                        elif not use_chord:
                            decide_scalar = True
                        else:
                            if have_kin:
                                th_ = c * dta
                                cth = math.cos(th_)
                                sth = math.sin(th_)
                                px = ax * cth + bx * sth
                                py = ay * cth + by * sth
                                pz = az * cth + bz * sth
                            else:
                                px = ax
                                py = ay
                                pz = az
                            dx = px - x_l[p]
                            dy = py - y_l[p]
                            dz = pz - z_l[p]
                            ch2 = dx * dx + dy * dy + dz * dz
                            if ch2 > hi:
                                keep = True
                            elif ch2 >= lo:
                                decide_scalar = True
                if decide_scalar:
                    if pend >= 0:
                        r_prev = reports[pend]
                        st.last = r_prev
                        self._last_seen[eid] = r_prev
                        pend = -1
                    annotated, keep = self.process(reports[p])
                    out[p] = (annotated, keep)
                    st = states[eid]
                    last_t = t
                    stopped = st.stopped
                    ref_h = st.prev_heading
                    ref_s = st.ref_speed
                    if keep:
                        ks = self._last_kept[eid]
                        anchor_t = t
                        ax, ay, az, have_kin, bx, by, bz, c = _anchor_basis(
                            lon_l[p], lat_l[p], ks.speed, ks.heading, radius
                        )
                    continue
                nseen += 1
                r = reports[p]
                if keep:
                    self.kept += 1
                    self._last_kept[eid] = _KeptState(
                        report=r, speed=r.speed, heading=r.heading
                    )
                    out[p] = (AnnotatedReport(report=r), True)
                    anchor_t = t
                    ax, ay, az, have_kin, bx, by, bz, c = _anchor_basis(
                        lon_l[p], lat_l[p], r.speed, r.heading, radius
                    )
                else:
                    out[p] = (None, False)
                last_t = t
                pend = p
            if pend >= 0:
                r_prev = reports[pend]
                st.last = r_prev
                self._last_seen[eid] = r_prev
        self.seen += nseen
        return out

    def publish_metrics(self) -> None:
        """Top the registry up to the current seen/kept totals.

        Counters only move by the delta since the last publish, so calling
        this at every flush point (stream finish, pipeline finalize,
        checkpoint) never double-counts.
        """
        if not self.metrics.enabled:
            return
        self.metrics.counter("insitu.synopses.seen").inc(self.seen - self._published_seen)
        self.metrics.counter("insitu.synopses.kept").inc(self.kept - self._published_kept)
        self._published_seen = self.seen
        self._published_kept = self.kept
        self.metrics.gauge("insitu.synopses.compression_ratio").set(
            self.compression_ratio
        )

    def finish(self, entity_id: str) -> PositionReport | None:
        """Close an entity's track at end of stream.

        Returns the entity's last seen report when it was dropped by the
        online rule — the synopsis must include the track's final position
        or reconstruction error past the last kept point is unbounded.
        Counts the late keep toward the compression statistics.
        """
        last_seen = self._last_seen.get(entity_id)
        if last_seen is None:
            return None
        last_kept = self._last_kept.get(entity_id)
        if last_kept is not None and last_kept.report.t >= last_seen.t:
            return None
        self.kept += 1
        self._last_kept[entity_id] = _KeptState(
            report=last_seen, speed=last_seen.speed, heading=last_seen.heading
        )
        return last_seen

    def finish_all(self) -> list[PositionReport]:
        """Close every entity's track; returns the late-kept reports."""
        out = []
        for entity_id in list(self._last_seen):
            report = self.finish(entity_id)
            if report is not None:
                out.append(report)
        self.publish_metrics()
        return out

    def _decide(self, annotated: AnnotatedReport) -> bool:
        if annotated.is_critical:
            return True
        report = annotated.report
        kept = self._last_kept.get(report.entity_id)
        if kept is None:
            return True
        dt = report.t - kept.report.t
        if dt >= self.config.max_silence_s:
            return True
        predicted = self._dead_reckon(kept, dt)
        if predicted is None:
            # No kinematic state to predict with: fall back to displacement.
            error = haversine_m(kept.report.lon, kept.report.lat, report.lon, report.lat)
        else:
            error = haversine_m(predicted[0], predicted[1], report.lon, report.lat)
        return error > self.config.dr_error_threshold_m

    @staticmethod
    def _dead_reckon(kept: _KeptState, dt: float) -> tuple[float, float] | None:
        if kept.speed is None or kept.heading is None:
            return None
        return destination_point(
            kept.report.lon, kept.report.lat, kept.heading, kept.speed * dt
        )

    def reset(self) -> None:
        """Forget all state and counters."""
        self._detector.reset()
        self._last_kept.clear()
        self._last_seen.clear()
        self.seen = 0
        self.kept = 0
        self._published_seen = 0
        self._published_kept = 0

    def snapshot(self) -> dict:
        """Capture generator + detector state for a checkpoint."""
        return {
            "detector": self._detector.snapshot(),
            "last_kept": copy.deepcopy(self._last_kept),
            "last_seen": copy.deepcopy(self._last_seen),
            "seen": self.seen,
            "kept": self.kept,
            "published_seen": self._published_seen,
            "published_kept": self._published_kept,
        }

    def restore(self, state: dict) -> None:
        """Reinstate state captured by :meth:`snapshot`."""
        self._detector.restore(state["detector"])
        self._last_kept = copy.deepcopy(state["last_kept"])
        self._last_seen = copy.deepcopy(state["last_seen"])
        self.seen = state["seen"]
        self.kept = state["kept"]
        self._published_seen = state.get("published_seen", 0)
        self._published_kept = state.get("published_kept", 0)


class SynopsesOperator(KeyedProcessOperator):
    """Streaming wrapper: emits only kept (annotated) reports.

    Keyed by entity id; the value type changes from :class:`PositionReport`
    to :class:`AnnotatedReport` downstream.
    """

    def __init__(
        self,
        config: SynopsesConfig | None = None,
        name: str = "synopses",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(key_fn=lambda r: r.entity_id, name=name)
        self.generator = SynopsesGenerator(config, metrics=metrics)

    def process_keyed(self, record: Record, state: dict[str, Any]) -> Iterable[Record]:
        annotated, keep = self.generator.process(record.value)
        if keep:
            return (record.with_value(annotated),)
        return ()

    def flush_key(self, key: Any, state: dict[str, Any]) -> Iterable[Record]:
        report = self.generator.finish(key)
        if report is None:
            return ()
        return (
            Record(
                event_time=report.t,
                value=AnnotatedReport(report=report, critical=()),
                key=key,
            ),
        )

    def snapshot(self) -> Any:
        return {"keyed": super().snapshot(), "generator": self.generator.snapshot()}

    def restore(self, state: Any) -> None:
        super().restore(state["keyed"])
        self.generator.restore(state["generator"])


def compress_trajectory(
    trajectory: Trajectory,
    config: SynopsesConfig | None = None,
    reports: list[PositionReport] | None = None,
) -> tuple[Trajectory, float]:
    """Batch helper: compress a trajectory through the synopses generator.

    Args:
        trajectory: The (dense) input trajectory.
        config: Synopses configuration.
        reports: When given, these reports are compressed instead of
            synthesizing reports from the trajectory samples (used when the
            caller has the original measured stream).

    Returns:
        ``(compressed trajectory, compression ratio)`` where the ratio is
        the fraction of samples dropped.
    """
    generator = SynopsesGenerator(config)
    if reports is None:
        reports = _reports_from_trajectory(trajectory)
    kept_points = []
    for report in reports:
        annotated, keep = generator.process(report)
        if keep:
            kept_points.append(report.point())
    final = generator.finish(trajectory.entity_id)
    if final is not None:
        kept_points.append(final.point())
    compressed = Trajectory.from_points(
        trajectory.entity_id, kept_points, domain=trajectory.domain
    )
    return (compressed, generator.compression_ratio)


def _reports_from_trajectory(trajectory: Trajectory) -> list[PositionReport]:
    """Synthesize reports (with derived speed/heading) from samples."""
    from repro.geo.geodesy import initial_bearing_deg

    reports: list[PositionReport] = []
    n = len(trajectory)
    for i in range(n):
        point = trajectory[i]
        speed = heading = None
        if i + 1 < n:
            nxt = trajectory[i + 1]
            dt = nxt.t - point.t
            dist = haversine_m(point.lon, point.lat, nxt.lon, nxt.lat)
            if dt > 0:
                speed = dist / dt
            if dist > 1.0:
                heading = initial_bearing_deg(point.lon, point.lat, nxt.lon, nxt.lat)
        reports.append(
            PositionReport(
                entity_id=trajectory.entity_id,
                t=point.t,
                lon=point.lon,
                lat=point.lat,
                alt=point.alt,
                speed=speed,
                heading=heading,
                domain=trajectory.domain,
            )
        )
    return reports

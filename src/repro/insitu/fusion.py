"""Cross-source fusion: one entity, many providers, one stream.

The paper's premise is "more and more frequent data from many different
sources ... for each of these entities". When the same vessel is seen by
terrestrial AIS, satellite AIS and radar, the in-situ layer must merge
the feeds into a single coherent per-entity stream:

1. merge the per-source streams by event time;
2. drop *cross-source near-duplicates* — a report that adds no
   information because another provider already reported (almost) the
   same position at (almost) the same time;
3. prefer the more precise provider when near-duplicates collide.

Source precision is ranked (radar < satellite AIS < terrestrial AIS by
default); a kept report suppresses near-duplicates from any source of
equal or lower rank within the suppression window.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.geo.geodesy import haversine_m
from repro.model.reports import PositionReport, ReportSource

#: Higher rank = more precise provider (wins ties).
DEFAULT_SOURCE_RANK: dict[ReportSource, int] = {
    ReportSource.RADAR: 0,
    ReportSource.AIS_SATELLITE: 1,
    ReportSource.ARCHIVE: 1,
    ReportSource.SYNTHETIC: 1,
    ReportSource.ADSB: 2,
    ReportSource.AIS_TERRESTRIAL: 2,
}


def merge_streams(
    streams: Sequence[Iterable[PositionReport]],
) -> Iterator[PositionReport]:
    """Heap-merge several event-time-ordered report streams into one.

    Each input must be individually ordered by event time; the output is
    globally ordered. Ties break deterministically by (entity, source).
    """
    def keyed(stream_idx: int, stream: Iterable[PositionReport]):
        for seq, report in enumerate(stream):
            yield (report.t, report.entity_id, report.source.value, stream_idx, seq, report)

    merged = heapq.merge(*(keyed(i, s) for i, s in enumerate(streams)))
    previous_t: dict[int, float] = {}
    for t, __e, __s, stream_idx, __seq, report in merged:
        last = previous_t.get(stream_idx)
        if last is not None and t < last:
            raise ValueError(f"input stream {stream_idx} is not time-ordered")
        previous_t[stream_idx] = t
        yield report


@dataclass
class FusionConfig:
    """Near-duplicate suppression thresholds.

    Attributes:
        window_s: Two reports closer in time than this are duplicate
            candidates.
        radius_m: ... and closer in space than this are duplicates.
        source_rank: Provider precision ranking; higher wins.
    """

    window_s: float = 5.0
    radius_m: float = 100.0
    source_rank: dict[ReportSource, int] = field(
        default_factory=lambda: dict(DEFAULT_SOURCE_RANK)
    )

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.radius_m <= 0:
            raise ValueError("fusion thresholds must be positive")


class CrossSourceFuser:
    """Streaming cross-source near-duplicate suppression.

    Call :meth:`accept` per report (event-time order). A report is
    dropped when the same entity already has an accepted report within
    ``window_s`` seconds and ``radius_m`` metres from a source of equal
    or higher rank. A *higher*-ranked report is always accepted (the
    coarse one it shadows was already delivered — downstream layers are
    duplicate-tolerant; what fusion guarantees is that low-precision
    chatter never multiplies the stream).
    """

    def __init__(self, config: FusionConfig | None = None) -> None:
        self.config = config or FusionConfig()
        self._last_accepted: dict[str, PositionReport] = {}
        self.accepted = 0
        self.suppressed = 0

    def _rank(self, source: ReportSource) -> int:
        return self.config.source_rank.get(source, 1)

    def accept(self, report: PositionReport) -> bool:
        """Decide one report; accepted reports update per-entity state."""
        last = self._last_accepted.get(report.entity_id)
        if last is not None and report.t - last.t <= self.config.window_s:
            close = (
                haversine_m(last.lon, last.lat, report.lon, report.lat)
                <= self.config.radius_m
            )
            if close and self._rank(report.source) <= self._rank(last.source):
                self.suppressed += 1
                return False
        self._last_accepted[report.entity_id] = report
        self.accepted += 1
        return True

    def fuse(self, reports: Iterable[PositionReport]) -> list[PositionReport]:
        """Batch helper: filter an event-time-ordered merged stream."""
        return [r for r in reports if self.accept(r)]


def fuse_streams(
    streams: Sequence[Iterable[PositionReport]],
    config: FusionConfig | None = None,
) -> tuple[list[PositionReport], CrossSourceFuser]:
    """Merge + dedupe several provider streams; returns the fused stream
    and the fuser (for its counters)."""
    fuser = CrossSourceFuser(config)
    fused = fuser.fuse(merge_streams(streams))
    return (fused, fuser)

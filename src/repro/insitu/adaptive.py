"""Adaptive synopses: load shedding toward a target compression ratio.

The paper's in-situ layer must keep up "at extremely high rates". A
fixed dead-reckoning threshold yields whatever compression the traffic
allows; under load spikes an operator instead wants to *fix the budget*
(keep at most X% of records) and let the error threshold float. The
adaptive generator closes that loop with a multiplicative controller:
every ``adjust_every`` records it compares the achieved keep rate inside
the window against the target and scales the threshold accordingly
(clamped to configured bounds).

This is the load-shedding extension the datAcron in-situ work points at;
benchmark E9 exercises the fixed version, and the adaptive variant is
covered by unit tests and the ablation example.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.insitu.critical import AnnotatedReport
from repro.insitu.synopses import SynopsesConfig, SynopsesGenerator
from repro.model.reports import PositionReport
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True, slots=True)
class AdaptiveConfig:
    """Controller settings for :class:`AdaptiveSynopsesGenerator`.

    Attributes:
        target_keep_rate: Desired fraction of records kept (e.g. 0.05).
        adjust_every: Controller period, in records.
        min_threshold_m / max_threshold_m: Threshold clamp range.
        gain: Multiplicative step aggressiveness (0.5 = gentle, 2 = fast).
        max_step: Per-period threshold change is clamped to
            ``[1/max_step, max_step]`` — the keep rate is a steep function
            of the threshold near the noise scale, so unclamped steps
            oscillate.
    """

    target_keep_rate: float = 0.05
    adjust_every: int = 200
    min_threshold_m: float = 10.0
    max_threshold_m: float = 5_000.0
    gain: float = 0.5
    max_step: float = 1.4

    def __post_init__(self) -> None:
        if not (0.0 < self.target_keep_rate < 1.0):
            raise ValueError("target_keep_rate must be in (0, 1)")
        if self.adjust_every <= 0:
            raise ValueError("adjust_every must be positive")
        if self.min_threshold_m <= 0 or self.max_threshold_m <= self.min_threshold_m:
            raise ValueError("invalid threshold bounds")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if self.max_step <= 1.0:
            raise ValueError("max_step must exceed 1")


class AdaptiveSynopsesGenerator:
    """A synopses generator whose error threshold tracks a keep-rate target.

    Exposes the same ``process``/``finish``/``compression_ratio`` surface
    as :class:`SynopsesGenerator`; critical-point keeps are unaffected —
    only the dead-reckoning threshold floats.
    """

    def __init__(
        self,
        base: SynopsesConfig | None = None,
        adaptive: AdaptiveConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.base_config = base or SynopsesConfig()
        self.adaptive = adaptive or AdaptiveConfig()
        self._generator = SynopsesGenerator(self.base_config, metrics=metrics)
        self._window_seen = 0
        self._window_kept = 0
        self.threshold_history: list[float] = [self.base_config.dr_error_threshold_m]

    @property
    def current_threshold_m(self) -> float:
        """The controller's current dead-reckoning threshold."""
        return self._generator.config.dr_error_threshold_m

    @property
    def seen(self) -> int:
        return self._generator.seen

    @property
    def kept(self) -> int:
        return self._generator.kept

    @property
    def compression_ratio(self) -> float:
        return self._generator.compression_ratio

    def process(self, report: PositionReport) -> tuple[AnnotatedReport, bool]:
        """Decide one report, adjusting the threshold on period boundaries."""
        annotated, keep = self._generator.process(report)
        self._window_seen += 1
        if keep:
            self._window_kept += 1
        if self._window_seen >= self.adaptive.adjust_every:
            self._adjust()
        return (annotated, keep)

    def process_batch(
        self, reports: Sequence[PositionReport]
    ) -> list[tuple[AnnotatedReport, bool]]:
        """Decide a batch, in order (see :meth:`SynopsesGenerator.process_batch`)."""
        return [self.process(report) for report in reports]

    def finish_all(self) -> list[PositionReport]:
        """Close all tracks (see :meth:`SynopsesGenerator.finish_all`)."""
        return self._generator.finish_all()

    def publish_metrics(self) -> None:
        """Flush deferred counters (see :meth:`SynopsesGenerator.publish_metrics`)."""
        self._generator.publish_metrics()

    def _adjust(self) -> None:
        achieved = self._window_kept / self._window_seen
        target = self.adaptive.target_keep_rate
        self._window_seen = 0
        self._window_kept = 0
        if achieved <= 0:
            ratio = 0.5  # keeping nothing: loosen cautiously toward target
        else:
            ratio = achieved / target
        # Keeping too much (ratio > 1) → raise the threshold; too little →
        # lower it. The exponent softens the response and the step clamp
        # prevents limit-cycle oscillation around the noise scale.
        factor = ratio ** self.adaptive.gain
        factor = min(max(factor, 1.0 / self.adaptive.max_step), self.adaptive.max_step)
        new_threshold = self.current_threshold_m * factor
        new_threshold = min(
            max(new_threshold, self.adaptive.min_threshold_m),
            self.adaptive.max_threshold_m,
        )
        self._swap_threshold(new_threshold)
        self.threshold_history.append(new_threshold)

    def _swap_threshold(self, threshold_m: float) -> None:
        """Replace the inner generator's config, preserving its state."""
        new_config = replace(self._generator.config, dr_error_threshold_m=threshold_m)
        # The generator reads the threshold from its config on every
        # decision; swapping the config object preserves per-entity state.
        self._generator.config = new_config

    def snapshot(self) -> dict:
        """Capture inner generator state plus the adaptation state."""
        return {
            "generator": self._generator.snapshot(),
            "threshold_m": self.current_threshold_m,
            "window_seen": self._window_seen,
            "window_kept": self._window_kept,
            "threshold_history": list(self.threshold_history),
        }

    def restore(self, state: dict) -> None:
        """Reinstate state captured by :meth:`snapshot`."""
        self._generator.restore(state["generator"])
        self._swap_threshold(state["threshold_m"])
        self._window_seen = state["window_seen"]
        self._window_kept = state["window_kept"]
        self.threshold_history = list(state["threshold_history"])

"""Offline Douglas-Peucker trajectory simplification (batch baseline).

The synopses generator is online; Douglas-Peucker sees the whole
trajectory and is therefore the natural upper bound on compression at a
given spatial tolerance — the E1 benchmark reports both.
"""

from __future__ import annotations

from repro.geo.geodesy import cross_track_distance_m
from repro.model.trajectory import Trajectory


def douglas_peucker(trajectory: Trajectory, tolerance_m: float) -> Trajectory:
    """Simplify a trajectory to within ``tolerance_m`` of the original.

    Classic recursive split on the point of maximum deviation from the
    chord, using great-circle cross-track distance. Endpoints are always
    kept. Runs iteratively (explicit stack) to avoid recursion limits on
    long tracks.
    """
    if tolerance_m < 0:
        raise ValueError("tolerance_m must be >= 0")
    n = len(trajectory)
    if n <= 2:
        return trajectory

    lon = trajectory.lon
    lat = trajectory.lat
    keep = [False] * n
    keep[0] = keep[n - 1] = True

    stack = [(0, n - 1)]
    while stack:
        first, last = stack.pop()
        if last - first < 2:
            continue
        max_dist = -1.0
        max_idx = -1
        for i in range(first + 1, last):
            dist = cross_track_distance_m(
                float(lon[i]), float(lat[i]),
                float(lon[first]), float(lat[first]),
                float(lon[last]), float(lat[last]),
            )
            if dist > max_dist:
                max_dist = dist
                max_idx = i
        if max_dist > tolerance_m:
            keep[max_idx] = True
            stack.append((first, max_idx))
            stack.append((max_idx, last))

    import numpy as np

    mask = np.asarray(keep)
    alt = None if trajectory.alt is None else trajectory.alt[mask]
    return Trajectory(
        trajectory.entity_id,
        trajectory.t[mask],
        lon[mask],
        lat[mask],
        alt,
        domain=trajectory.domain,
    )

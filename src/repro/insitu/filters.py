"""Primitive cleaning operators applied directly on the report stream.

These are the first "primitive operators ... applied directly on the data
streams": stateless or per-entity-stateful record filters that remove
records no downstream component should ever see.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.geo.geodesy import haversine_m, haversine_m_arrays
from repro.model.entities import EntityRegistry
from repro.model.reports import PositionReport
from repro.streams.checkpoint import StatefulMixin

if TYPE_CHECKING:
    from repro.core.recordbatch import RecordBatch

#: Entity groups smaller than this go through the scalar path — the numpy
#: round-trip costs more than three haversine calls.
_CHAIN_MIN_GROUP = 4

#: Relative half-width of the decision boundary band inside which the
#: vectorised implied speed is *not* trusted. The numpy haversine kernel
#: can differ from the scalar one by a few ulp (SIMD transcendentals vs
#: libm, ~1e-15 relative); any implied speed within 1e-9 relative of the
#: ceiling is recomputed with the scalar kernel, so the batch decision is
#: bit-identical to the per-record decision by construction.
_BOUNDARY_MARGIN = 1e-9


class PlausibilityFilter(StatefulMixin):
    """Rejects physically impossible reports.

    A report is rejected when the implied speed from the entity's previous
    accepted report exceeds the entity's physical ceiling (with a tolerance
    factor), or when its own speed field exceeds the ceiling. Reports that
    go backwards in time relative to the entity's last accepted report are
    rejected too (the stream layer handles bounded lateness; an entity's
    *own* history must stay ordered for kinematic checks to make sense).
    """

    _STATE_FIELDS = ("_last", "rejected")

    def __init__(
        self,
        registry: EntityRegistry | None = None,
        default_max_speed_mps: float = 350.0,
        tolerance: float = 1.5,
    ) -> None:
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1")
        self._registry = registry
        self._default_max = default_max_speed_mps
        self._tolerance = tolerance
        self._last: dict[str, PositionReport] = {}
        self.rejected = 0

    def _ceiling(self, entity_id: str) -> float:
        if self._registry is not None:
            entity = self._registry.get_or_none(entity_id)
            if entity is not None:
                return entity.max_speed_mps * self._tolerance
        return self._default_max * self._tolerance

    def accept(self, report: PositionReport) -> bool:
        """Decide one report; accepted reports update the per-entity state."""
        ceiling = self._ceiling(report.entity_id)
        if report.speed is not None and report.speed > ceiling:
            self.rejected += 1
            return False
        last = self._last.get(report.entity_id)
        if last is not None:
            dt = report.t - last.t
            if dt <= 0:
                self.rejected += 1
                return False
            implied = haversine_m(last.lon, last.lat, report.lon, report.lat) / dt
            if implied > ceiling:
                self.rejected += 1
                return False
        self._last[report.entity_id] = report
        return True

    def accept_batch(self, reports: Sequence[PositionReport]) -> list[bool]:
        """Decide a whole batch; bit-identical to :meth:`accept` in a loop.

        Reports are grouped per entity (order preserved) and each group's
        consecutive-point distances are computed in one vectorised
        haversine call. The sequential accept/reject recurrence is then
        replayed over the precomputed chain: whenever the previous
        *accepted* report is the immediate batch predecessor, the chain
        distance is used; otherwise (group head, or predecessor rejected)
        the scalar kernel runs as before. A vectorised implied speed
        within ``_BOUNDARY_MARGIN`` of the ceiling is recomputed with the
        scalar kernel, which makes every decision — and therefore every
        state update and the ``rejected`` counter — identical to the
        per-record path.
        """
        out = [False] * len(reports)
        groups: dict[str, list[int]] = {}
        for i, report in enumerate(reports):
            groups.setdefault(report.entity_id, []).append(i)
        for entity_id, idxs in groups.items():
            if len(idxs) < _CHAIN_MIN_GROUP:
                for i in idxs:
                    out[i] = self.accept(reports[i])
                continue
            ceiling = self._ceiling(entity_id)
            n = len(idxs)
            lons = np.fromiter((reports[i].lon for i in idxs), dtype=np.float64, count=n)
            lats = np.fromiter((reports[i].lat for i in idxs), dtype=np.float64, count=n)
            chain = haversine_m_arrays(lons[:-1], lats[:-1], lons[1:], lats[1:])
            last = self._last.get(entity_id)
            last_accepted_k = -2  # index into idxs of the last accepted report
            for k, i in enumerate(idxs):
                report = reports[i]
                if report.speed is not None and report.speed > ceiling:
                    self.rejected += 1
                    continue
                if last is not None:
                    dt = report.t - last.t
                    if dt <= 0:
                        self.rejected += 1
                        continue
                    if last_accepted_k == k - 1:
                        implied = chain[k - 1] / dt
                        if implied > ceiling * (1.0 + _BOUNDARY_MARGIN):
                            self.rejected += 1
                            continue
                        if implied >= ceiling * (1.0 - _BOUNDARY_MARGIN):
                            implied = (
                                haversine_m(last.lon, last.lat, report.lon, report.lat)
                                / dt
                            )
                            if implied > ceiling:
                                self.rejected += 1
                                continue
                    else:
                        implied = (
                            haversine_m(last.lon, last.lat, report.lon, report.lat) / dt
                        )
                        if implied > ceiling:
                            self.rejected += 1
                            continue
                last = report
                last_accepted_k = k
                self._last[entity_id] = report
                out[i] = True
        return out

    def accept_recordbatch(self, rb: "RecordBatch", mask: np.ndarray) -> np.ndarray:
        """Columnar :meth:`accept` over the batch positions where ``mask``.

        The whole accepted-chain recurrence collapses to vector checks
        computed over *all* entity segments at once: no speed field above
        the per-entity ceiling (NaN compares False, matching the scalar
        ``is None`` guard), strictly increasing timestamps, and every
        implied speed below ``ceiling * (1 - _BOUNDARY_MARGIN)``, with
        segment-boundary pairs masked out of the chain; the single link
        to each entity's pre-batch state is decided with the scalar
        kernel directly, so it needs no band. Any segment that fails a
        check — or lands inside the ulp boundary band — replays through
        the scalar :meth:`accept`, so decisions, the ``rejected`` counter
        and per-entity state stay bit-identical to the per-record path.
        """
        out = np.zeros(len(rb), dtype=bool)
        reports = rb.reports
        ordered = rb.order
        act = ordered[mask[ordered]]
        if act.size == 0:
            return out
        codes_act = rb.entity_codes[act]
        vocab = rb.vocabulary
        n_codes = len(vocab)
        ceil_by_code = np.fromiter(
            (self._ceiling(eid) for eid in vocab), np.float64, count=n_codes
        )
        # ok[c] stays True only while the all-accept proof holds for
        # segment c; anything else replays that segment scalar.
        ok = np.ones(n_codes, dtype=bool)
        spd_viol = rb.speed[act] > ceil_by_code[codes_act]
        if spd_viol.any():
            ok[codes_act[spd_viol]] = False
        t_act = rb.t[act]
        lon_act = rb.lon[act]
        lat_act = rb.lat[act]
        boundary = codes_act[1:] != codes_act[:-1]
        dts = np.diff(t_act)
        chain = ~boundary
        bad_dt = (dts <= 0) & chain
        if bad_dt.any():
            ok[codes_act[1:][bad_dt]] = False
        with np.errstate(divide="ignore", invalid="ignore"):
            implied = (
                haversine_m_arrays(lon_act[:-1], lat_act[:-1], lon_act[1:], lat_act[1:])
                / dts
            )
        banded = (implied >= ceil_by_code[codes_act[1:]] * (1.0 - _BOUNDARY_MARGIN)) & chain
        if banded.any():
            ok[codes_act[1:][banded]] = False
        # Segment bounds within `act` (codes_act is sorted by code).
        seg_bounds = np.searchsorted(codes_act, np.arange(n_codes + 1))
        heads = seg_bounds[:-1]
        tails = seg_bounds[1:]
        sizes = tails - heads
        ok &= sizes >= _CHAIN_MIN_GROUP
        act_l = act.tolist()
        for c in range(n_codes):
            size = sizes[c]
            if size == 0:
                continue
            lo, hi = heads[c], tails[c]
            accept_all = bool(ok[c])
            if accept_all:
                last = self._last.get(vocab[c])
                if last is not None:
                    # The link to the pre-batch state, decided with the
                    # scalar kernel directly (exact — no boundary band).
                    head = reports[act_l[lo]]
                    dt0 = head.t - last.t
                    accept_all = (
                        dt0 > 0
                        and haversine_m(last.lon, last.lat, head.lon, head.lat) / dt0
                        <= ceil_by_code[c]
                    )
            if accept_all:
                seg = act[lo:hi]
                out[seg] = True
                self._last[vocab[c]] = reports[seg[-1]]
            else:
                for p in act_l[lo:hi]:
                    out[p] = self.accept(reports[p])
        return out

    def __call__(self, report: PositionReport) -> bool:
        return self.accept(report)


class DeduplicateFilter(StatefulMixin):
    """Drops exact duplicates: same entity, timestamp and position.

    Keeps a bounded per-entity memory of recent (t, lon, lat) keys.
    """

    _STATE_FIELDS = ("_seen", "dropped")

    def __init__(self, memory: int = 64) -> None:
        if memory <= 0:
            raise ValueError("memory must be positive")
        self._memory = memory
        self._seen: dict[str, list[tuple[float, float, float]]] = {}
        self.dropped = 0

    def accept(self, report: PositionReport) -> bool:
        """Decide one report; new reports are remembered."""
        key = (report.t, report.lon, report.lat)
        recent = self._seen.setdefault(report.entity_id, [])
        if key in recent:
            self.dropped += 1
            return False
        recent.append(key)
        if len(recent) > self._memory:
            del recent[: len(recent) - self._memory]
        return True

    def accept_recordbatch(self, rb: "RecordBatch") -> np.ndarray:
        """Columnar :meth:`accept` over a whole batch.

        A key can only repeat if its timestamp repeats, so one freshness
        check per entity segment — no timestamp shared with the entity's
        recent-key memory and no timestamp repeated inside the segment —
        proves every record is fresh. Timestamps are compared through a
        Python set (timestamps are validated finite, so set equality is
        float equality, the same comparison :meth:`accept`'s key tuples
        use). Suspicious segments (a timestamp collision, which may still
        differ in lon/lat) replay through the scalar :meth:`accept`;
        clean segments bulk-append their keys with a single end trim,
        which leaves the same final memory as the per-record trims.
        """
        out = np.zeros(len(rb), dtype=bool)
        reports = rb.reports
        for _code, entity_id, pos in rb.segments():
            if pos.size == 0:
                continue
            t_list = rb.t[pos].tolist()
            recent = self._seen.setdefault(entity_id, [])
            t_set = set(t_list)
            suspicious = len(t_set) < len(t_list)
            if not suspicious and recent:
                suspicious = any(key[0] in t_set for key in recent)
            if suspicious:
                for p in pos.tolist():
                    out[p] = self.accept(reports[p])
                continue
            out[pos] = True
            recent.extend(zip(t_list, rb.lon[pos].tolist(), rb.lat[pos].tolist()))
            if len(recent) > self._memory:
                del recent[: len(recent) - self._memory]
        return out

    def __call__(self, report: PositionReport) -> bool:
        return self.accept(report)


def clean_reports(
    reports: Iterable[PositionReport],
    registry: EntityRegistry | None = None,
) -> list[PositionReport]:
    """Batch helper: dedupe + plausibility-filter a report sequence."""
    dedup = DeduplicateFilter()
    plausible = PlausibilityFilter(registry=registry)
    return [r for r in reports if dedup.accept(r) and plausible.accept(r)]

"""Online critical-point detection.

A *critical point* is a report at which the entity's movement changes
character: it stops or resumes, turns, changes speed, or its communication
gaps begin/end. Keeping exactly these points (plus an error-bound check) is
what lets the synopses achieve high compression "without affecting the
quality of analytics" — between critical points movement is near-linear.

The detector is purely online: it sees one report at a time per entity and
never looks ahead.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Any

from repro.geo.geodesy import haversine_m, heading_difference_deg, initial_bearing_deg
from repro.model.reports import PositionReport


class CriticalPointType(enum.Enum):
    """Kinds of critical points annotated on reports."""

    TRACK_START = "track_start"
    STOP_START = "stop_start"
    STOP_END = "stop_end"
    TURN = "turn"
    SPEED_CHANGE = "speed_change"
    GAP_START = "gap_start"
    GAP_END = "gap_end"


@dataclass(frozen=True, slots=True)
class AnnotatedReport:
    """A report plus the critical-point annotations it triggered."""

    report: PositionReport
    critical: tuple[CriticalPointType, ...] = ()

    @property
    def is_critical(self) -> bool:
        """Whether any detector fired on this report."""
        return bool(self.critical)


@dataclass
class _EntityState:
    last: PositionReport | None = None
    prev_heading: float | None = None
    ref_speed: float | None = None
    stopped: bool = False
    in_gap: bool = False


class CriticalPointDetector:
    """Stateful per-entity critical point detection.

    Args:
        stop_speed_mps: Below this speed the entity counts as stopped.
        turn_threshold_deg: Heading change (vs the heading at the last
            critical/kept point) that constitutes a turn.
        speed_change_ratio: Relative speed change (vs the reference speed
            at the last speed event) that constitutes a speed change.
        gap_threshold_s: A report this long after the previous one closes a
            communication gap (and the previous report is retroactively a
            gap start — online, the *current* report is annotated GAP_END).
        enabled: Subset of detectors to run (ablation hook, experiment E9).
    """

    def __init__(
        self,
        stop_speed_mps: float = 0.8,
        turn_threshold_deg: float = 12.0,
        speed_change_ratio: float = 0.25,
        gap_threshold_s: float = 300.0,
        enabled: frozenset[CriticalPointType] | None = None,
    ) -> None:
        if stop_speed_mps < 0 or turn_threshold_deg <= 0:
            raise ValueError("invalid detector thresholds")
        if not (0 < speed_change_ratio < 1):
            raise ValueError("speed_change_ratio must be in (0, 1)")
        if gap_threshold_s <= 0:
            raise ValueError("gap_threshold_s must be positive")
        self.stop_speed_mps = stop_speed_mps
        self.turn_threshold_deg = turn_threshold_deg
        self.speed_change_ratio = speed_change_ratio
        self.gap_threshold_s = gap_threshold_s
        self.enabled = enabled if enabled is not None else frozenset(CriticalPointType)
        self._states: dict[str, _EntityState] = {}

    def _on(self, kind: CriticalPointType) -> bool:
        return kind in self.enabled

    def process(self, report: PositionReport) -> AnnotatedReport:
        """Annotate one report; updates the entity's state."""
        state = self._states.setdefault(report.entity_id, _EntityState())
        critical: list[CriticalPointType] = []

        if state.last is None:
            critical.append(CriticalPointType.TRACK_START)
            state.last = report
            state.ref_speed = report.speed
            state.prev_heading = report.heading
            return AnnotatedReport(report=report, critical=tuple(critical))

        dt = report.t - state.last.t

        # Communication gaps.
        if self._on(CriticalPointType.GAP_END) and dt > self.gap_threshold_s:
            critical.append(CriticalPointType.GAP_END)
            state.in_gap = False

        speed = report.speed
        if speed is None and dt > 0:
            speed = haversine_m(state.last.lon, state.last.lat, report.lon, report.lat) / dt

        # Stop start / end.
        if speed is not None:
            if self._on(CriticalPointType.STOP_START) and not state.stopped and speed < self.stop_speed_mps:
                critical.append(CriticalPointType.STOP_START)
                state.stopped = True
            elif self._on(CriticalPointType.STOP_END) and state.stopped and speed >= self.stop_speed_mps:
                critical.append(CriticalPointType.STOP_END)
                state.stopped = False

        # Turn detection (only meaningful when moving).
        heading = report.heading
        if heading is None:
            dist = haversine_m(state.last.lon, state.last.lat, report.lon, report.lat)
            if dist > 5.0:
                heading = initial_bearing_deg(state.last.lon, state.last.lat, report.lon, report.lat)
        if (
            self._on(CriticalPointType.TURN)
            and heading is not None
            and state.prev_heading is not None
            and not state.stopped
            and heading_difference_deg(heading, state.prev_heading) >= self.turn_threshold_deg
        ):
            critical.append(CriticalPointType.TURN)
            state.prev_heading = heading
        elif heading is not None and state.prev_heading is None:
            state.prev_heading = heading

        # Speed change relative to the reference speed.
        if (
            self._on(CriticalPointType.SPEED_CHANGE)
            and speed is not None
            and state.ref_speed is not None
            and state.ref_speed > self.stop_speed_mps
        ):
            rel = abs(speed - state.ref_speed) / state.ref_speed
            if rel >= self.speed_change_ratio:
                critical.append(CriticalPointType.SPEED_CHANGE)
                state.ref_speed = speed
        elif speed is not None and state.ref_speed is None:
            state.ref_speed = speed

        state.last = report
        return AnnotatedReport(report=report, critical=tuple(critical))

    def snapshot(self) -> dict:
        """Capture per-entity detector state for a checkpoint."""
        return copy.deepcopy(self._states)

    def restore(self, state: dict) -> None:
        """Reinstate state captured by :meth:`snapshot`."""
        self._states = copy.deepcopy(state)

    def reset(self) -> None:
        """Forget all per-entity state."""
        self._states.clear()

"""In-situ stream processing: compression "without affecting analytics".

The paper's in-situ components "compress and integrate data at high rates
of data compression without affecting the quality of analytics,
capitalizing on primitive operators that are applied directly on the data
streams". This package implements that layer:

- :mod:`repro.insitu.filters` — primitive cleaning operators (invalid
  positions, physics-violating jumps, duplicates).
- :mod:`repro.insitu.critical` — online critical-point detection (stops,
  turns, speed changes, communication gaps).
- :mod:`repro.insitu.synopses` — the synopses generator: keep a report iff
  it is critical or the dead-reckoning error since the last kept report
  exceeds a threshold.
- :mod:`repro.insitu.douglas_peucker` — the offline batch-compression
  baseline for comparison.
- :mod:`repro.insitu.quality` — compression-quality metrics (reconstruction
  RMSE, speed/heading fidelity) for experiment E1.
"""

from repro.insitu.filters import (
    PlausibilityFilter,
    DeduplicateFilter,
    clean_reports,
)
from repro.insitu.critical import CriticalPointType, CriticalPointDetector, AnnotatedReport
from repro.insitu.synopses import SynopsesConfig, SynopsesGenerator, SynopsesOperator, compress_trajectory
from repro.insitu.douglas_peucker import douglas_peucker
from repro.insitu.quality import (
    reconstruction_errors_m,
    CompressionQuality,
    evaluate_compression,
)
from repro.insitu.adaptive import AdaptiveConfig, AdaptiveSynopsesGenerator
from repro.insitu.fusion import (
    CrossSourceFuser,
    FusionConfig,
    fuse_streams,
    merge_streams,
)

__all__ = [
    "PlausibilityFilter",
    "DeduplicateFilter",
    "clean_reports",
    "CriticalPointType",
    "CriticalPointDetector",
    "AnnotatedReport",
    "SynopsesConfig",
    "SynopsesGenerator",
    "SynopsesOperator",
    "compress_trajectory",
    "douglas_peucker",
    "reconstruction_errors_m",
    "CompressionQuality",
    "evaluate_compression",
    "AdaptiveConfig",
    "AdaptiveSynopsesGenerator",
    "CrossSourceFuser",
    "FusionConfig",
    "fuse_streams",
    "merge_streams",
]

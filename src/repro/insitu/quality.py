"""Compression-quality metrics: does the synopsis preserve the analytics?

The paper claims "high rates of data compression without affecting the
quality of analytics". These metrics quantify both halves: the compression
ratio on one side, and on the other (a) pointwise reconstruction error and
(b) fidelity of derived quantities (travelled distance, speed profile)
that downstream analytics consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geodesy import haversine_m
from repro.model.trajectory import Trajectory


def reconstruction_errors_m(original: Trajectory, compressed: Trajectory) -> np.ndarray:
    """Distance from each original sample to the compressed reconstruction.

    The compressed trajectory is linearly interpolated at every original
    timestamp; the result is the per-sample horizontal error in metres.
    """
    if len(compressed) == 0:
        raise ValueError("compressed trajectory is empty")
    errors = np.empty(len(original))
    for i in range(len(original)):
        point = original[i]
        approx = compressed.at_time(point.t)
        errors[i] = haversine_m(point.lon, point.lat, approx.lon, approx.lat)
    return errors


@dataclass(frozen=True, slots=True)
class CompressionQuality:
    """Summary of one compression run.

    Attributes:
        compression_ratio: Fraction of points dropped, in [0, 1].
        rmse_m: Root-mean-square reconstruction error.
        max_error_m: Worst-case reconstruction error.
        mean_error_m: Mean reconstruction error.
        length_error_ratio: ``|len(compressed) - len(original)| /
            len(original)`` of travelled distances — analytics like
            distance-sailed must survive compression.
        speed_rmse_mps: RMSE between original and reconstructed speed
            profiles sampled on a common 30 s lattice.
        heading_rmse_deg: RMSE between original and reconstructed heading
            profiles on the same lattice (wrap-aware; 0 for static or
            too-short tracks).
    """

    compression_ratio: float
    rmse_m: float
    max_error_m: float
    mean_error_m: float
    length_error_ratio: float
    speed_rmse_mps: float
    heading_rmse_deg: float = 0.0


def evaluate_compression(original: Trajectory, compressed: Trajectory) -> CompressionQuality:
    """Compute the full quality summary for one (original, synopsis) pair."""
    errors = reconstruction_errors_m(original, compressed)
    ratio = 1.0 - (len(compressed) / len(original)) if len(original) else 0.0

    orig_len = original.length_m()
    comp_len = compressed.length_m()
    length_error = abs(comp_len - orig_len) / orig_len if orig_len > 0 else 0.0

    speed_rmse = _speed_profile_rmse(original, compressed, period_s=30.0)
    heading_rmse = _heading_profile_rmse(original, compressed, period_s=30.0)

    return CompressionQuality(
        compression_ratio=ratio,
        rmse_m=float(np.sqrt(np.mean(errors**2))),
        max_error_m=float(errors.max()),
        mean_error_m=float(errors.mean()),
        length_error_ratio=length_error,
        speed_rmse_mps=speed_rmse,
        heading_rmse_deg=heading_rmse,
    )


def _speed_profile_rmse(
    original: Trajectory, compressed: Trajectory, period_s: float
) -> float:
    """RMSE between speed profiles resampled on a shared lattice."""
    if original.duration <= period_s or len(compressed) < 2:
        return 0.0
    orig = original.resample(period_s)
    comp = compressed.resample(period_s)
    n = min(len(orig) - 1, len(comp) - 1)
    if n <= 0:
        return 0.0
    vo = orig.speeds_mps()[:n]
    vc = comp.speeds_mps()[:n]
    return float(np.sqrt(np.mean((vo - vc) ** 2)))


def _heading_profile_rmse(
    original: Trajectory, compressed: Trajectory, period_s: float
) -> float:
    """Wrap-aware heading RMSE on a shared lattice (degrees)."""
    if original.duration <= period_s or len(compressed) < 2:
        return 0.0
    orig = original.resample(period_s)
    comp = compressed.resample(period_s)
    n = min(len(orig) - 1, len(comp) - 1)
    if n <= 0:
        return 0.0
    ho = orig.headings_deg()[:n]
    hc = comp.headings_deg()[:n]
    diff = (ho - hc + 180.0) % 360.0 - 180.0
    return float(np.sqrt(np.mean(diff**2)))

"""Setup shim enabling legacy editable installs (`pip install -e .`).

The offline environment lacks the `wheel` package needed by PEP 660
editable builds, so this file keeps `pip install -e . --no-use-pep517
--no-build-isolation` (and plain `python setup.py develop`) working.
"""

from setuptools import setup

setup()

"""Future-location predictors."""

import numpy as np
import pytest

from repro.geo.geodesy import haversine_m
from repro.geo.grid import GeoGrid
from repro.forecasting.base import Predictor
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.forecasting.kalman import KalmanPredictor
from repro.forecasting.markov import GridMarkovPredictor
from repro.forecasting.route_based import RouteBasedPredictor
from repro.model.errors import EmptyTrajectoryError
from repro.model.trajectory import Trajectory
from repro.sources.kinematics import simulate_route
from repro.sources.world import RouteSpec


def eastbound(n=60, dt=10.0, speed_deg=0.001, entity="V1"):
    """~8.9 m/s eastbound straight track."""
    return Trajectory(
        entity,
        [dt * i for i in range(n)],
        [24.0 + speed_deg * i for i in range(n)],
        [37.0] * n,
    )


class TestDeadReckoning:
    def test_straight_track_extrapolated(self):
        history = eastbound()
        outcome = DeadReckoningPredictor().predict(history, 300.0)
        truth = eastbound(n=120).at_time(history.end_time + 300.0)
        error = haversine_m(outcome.point.lon, outcome.point.lat, truth.lon, truth.lat)
        assert error < 100.0

    def test_zero_horizon_is_last_position(self):
        history = eastbound()
        outcome = DeadReckoningPredictor().predict(history, 0.0)
        last = history[len(history) - 1]
        assert outcome.point.lon == pytest.approx(last.lon)
        assert outcome.point.t == last.t

    def test_single_sample_history_stays_put(self):
        dot = Trajectory("V1", [0.0], [24.0], [37.0])
        outcome = DeadReckoningPredictor().predict(dot, 600.0)
        assert outcome.point.lon == pytest.approx(24.0)
        assert outcome.point.t == 600.0

    def test_empty_history_raises(self):
        empty = Trajectory("V1", [], [], [])
        with pytest.raises(EmptyTrajectoryError):
            DeadReckoningPredictor().predict(empty, 60.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            DeadReckoningPredictor().predict(eastbound(), -1.0)

    def test_altitude_extrapolated(self):
        n = 20
        climb = Trajectory(
            "F1",
            [10.0 * i for i in range(n)],
            [24.0 + 0.001 * i for i in range(n)],
            [37.0] * n,
            [1000.0 + 20.0 * i for i in range(n)],  # 2 m/s climb
        )
        outcome = DeadReckoningPredictor().predict(climb, 100.0)
        assert outcome.point.alt == pytest.approx(1380.0 + 200.0, rel=0.05)


class TestKalman:
    def test_tracks_straight_motion(self):
        history = eastbound()
        outcome = KalmanPredictor().predict(history, 300.0)
        truth = eastbound(n=120).at_time(history.end_time + 300.0)
        error = haversine_m(outcome.point.lon, outcome.point.lat, truth.lon, truth.lat)
        assert error < 150.0

    def test_beats_dead_reckoning_under_noise(self):
        rng = np.random.default_rng(11)
        clean = eastbound(n=120)
        noisy = Trajectory(
            "V1",
            clean.t,
            clean.lon + rng.normal(0, 0.0004, len(clean)),
            clean.lat + rng.normal(0, 0.0004, len(clean)),
        )
        horizon = 300.0
        truth = eastbound(n=240).at_time(noisy.end_time + horizon)

        def error(predictor):
            outcome = predictor.predict(noisy, horizon)
            return haversine_m(outcome.point.lon, outcome.point.lat, truth.lon, truth.lat)

        # DR reads only the last minute of a very noisy track; the Kalman
        # filter averages over the whole history.
        assert error(KalmanPredictor(measurement_noise_m=40.0)) < error(
            DeadReckoningPredictor(window_s=60.0)
        )

    def test_confidence_decays_with_horizon(self):
        history = eastbound()
        near = KalmanPredictor().predict(history, 60.0)
        far = KalmanPredictor().predict(history, 3600.0)
        assert far.confidence < near.confidence

    def test_altitude_rate_fit(self):
        n = 30
        climb = Trajectory(
            "F1",
            [10.0 * i for i in range(n)],
            [24.0 + 0.001 * i for i in range(n)],
            [37.0] * n,
            [5000.0 + 30.0 * i for i in range(n)],  # 3 m/s
        )
        outcome = KalmanPredictor().predict(climb, 100.0)
        expected = 5000.0 + 30.0 * (n - 1) + 3.0 * 100.0
        assert outcome.point.alt == pytest.approx(expected, rel=0.05)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KalmanPredictor(process_noise=0.0)


class TestGridMarkov:
    @pytest.fixture()
    def corridor_history(self):
        """Many entities following the same L-shaped route."""
        route = RouteSpec(
            "L", ((24.0, 37.0), (24.4, 37.0), (24.4, 37.4)), speed_mps=10.0
        )
        return [
            simulate_route(f"H{i}", route, dt_s=10.0, start_time=float(i))
            for i in range(6)
        ]

    def test_learns_transitions(self, corridor_history):
        from repro.geo.bbox import BBox

        grid = GeoGrid(bbox=BBox(23.8, 36.8, 24.8, 37.8), nx=20, ny=20)
        model = GridMarkovPredictor(grid, corridor_history)
        assert model.n_states > 3

    def test_follows_the_turn(self, corridor_history):
        from repro.geo.bbox import BBox

        grid = GeoGrid(bbox=BBox(23.8, 36.8, 24.8, 37.8), nx=20, ny=20)
        model = GridMarkovPredictor(grid, corridor_history)
        test_track = corridor_history[0]
        # Cut shortly before the corner; predict past it.
        corner_time = test_track.duration * 0.45
        history = test_track.slice_time(0.0, corner_time)
        horizon = 900.0
        outcome = model.predict(history, horizon)
        truth = test_track.at_time(history.end_time + horizon)
        markov_error = haversine_m(outcome.point.lon, outcome.point.lat, truth.lon, truth.lat)
        dr = DeadReckoningPredictor().predict(history, horizon)
        dr_error = haversine_m(dr.point.lon, dr.point.lat, truth.lon, truth.lat)
        assert markov_error < dr_error

    def test_short_horizon_falls_back_to_dr(self, corridor_history):
        from repro.geo.bbox import BBox

        grid = GeoGrid(bbox=BBox(23.8, 36.8, 24.8, 37.8), nx=20, ny=20)
        model = GridMarkovPredictor(grid, corridor_history)
        history = corridor_history[0].slice_time(0.0, 600.0)
        outcome = model.predict(history, 10.0)
        dr = DeadReckoningPredictor().predict(history, 10.0)
        assert haversine_m(
            outcome.point.lon, outcome.point.lat, dr.point.lon, dr.point.lat
        ) < 1.0

    def test_unseen_region_falls_back(self, corridor_history):
        from repro.geo.bbox import BBox

        grid = GeoGrid(bbox=BBox(23.8, 36.8, 24.8, 37.8), nx=20, ny=20)
        model = GridMarkovPredictor(grid, corridor_history)
        elsewhere = Trajectory("X", [0, 10], [23.85, 23.86], [37.7, 37.7])
        outcome = model.predict(elsewhere, 600.0)
        assert outcome.point is not None  # fallback, no crash


class TestRouteBased:
    @pytest.fixture()
    def fleet_history(self):
        routes = [
            RouteSpec("R1", ((24.0, 37.0), (24.5, 37.0), (24.5, 37.5)), 10.0),
            RouteSpec("R2", ((24.0, 37.5), (24.5, 37.5), (24.5, 37.0)), 10.0),
        ]
        out = []
        for i, route in enumerate(routes * 3):
            out.append(simulate_route(f"H{i}", route, dt_s=10.0))
        return out

    def test_long_horizon_beats_dead_reckoning(self, fleet_history):
        model = RouteBasedPredictor(fleet_history, n_routes=4)
        target = fleet_history[0]
        history = target.slice_time(0.0, target.duration * 0.4)
        horizon = 1500.0
        truth = target.at_time(history.end_time + horizon)
        route_outcome = model.predict(history, horizon)
        dr_outcome = DeadReckoningPredictor().predict(history, horizon)
        route_error = haversine_m(
            route_outcome.point.lon, route_outcome.point.lat, truth.lon, truth.lat
        )
        dr_error = haversine_m(
            dr_outcome.point.lon, dr_outcome.point.lat, truth.lon, truth.lat
        )
        assert route_error < dr_error

    def test_off_route_falls_back(self, fleet_history):
        model = RouteBasedPredictor(fleet_history, max_match_distance_m=2000.0)
        stray = Trajectory(
            "S", [0, 60, 120], [26.0, 26.01, 26.02], [39.0, 39.0, 39.0]
        )
        outcome = model.predict(stray, 300.0)
        assert outcome.confidence <= 0.5  # fallback marker

    def test_requires_history(self):
        with pytest.raises(ValueError):
            RouteBasedPredictor([], n_routes=2)

    def test_name_attribute(self, fleet_history):
        assert RouteBasedPredictor(fleet_history).name == "route_based"
        assert isinstance(RouteBasedPredictor(fleet_history), Predictor)

"""Forecasting evaluation harness."""

import pytest

from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.forecasting.evaluation import HorizonErrors, evaluate_predictor, horizon_sweep
from repro.model.trajectory import Trajectory


def long_track(entity="V1", n=400, dt=10.0):
    return Trajectory(
        entity,
        [dt * i for i in range(n)],
        [24.0 + 0.0005 * i for i in range(n)],
        [37.0] * n,
    )


class TestHorizonErrors:
    def test_statistics(self):
        errors = HorizonErrors(model="m", horizon_s=60.0, horizontal_m=[10, 20, 30])
        assert errors.n == 3
        assert errors.mean_horizontal_m() == pytest.approx(20.0)
        assert errors.median_horizontal_m() == pytest.approx(20.0)
        assert errors.p90_horizontal_m() == pytest.approx(28.0)

    def test_empty_is_nan(self):
        import math

        errors = HorizonErrors(model="m", horizon_s=60.0)
        assert math.isnan(errors.mean_horizontal_m())
        assert math.isnan(errors.mean_vertical_m())


class TestEvaluatePredictor:
    def test_straight_line_near_zero_error(self):
        results = evaluate_predictor(
            DeadReckoningPredictor(),
            [long_track()],
            horizons_s=[60.0, 300.0],
            min_history_s=300.0,
        )
        assert [r.horizon_s for r in results] == [60.0, 300.0]
        for r in results:
            assert r.n > 0
            assert r.mean_horizontal_m() < 50.0

    def test_too_short_trajectory_skipped(self):
        short = long_track(n=5)
        results = evaluate_predictor(
            DeadReckoningPredictor(), [short], horizons_s=[60.0], min_history_s=600.0
        )
        assert results[0].n == 0

    def test_horizon_beyond_end_skipped_per_horizon(self):
        track = long_track(n=100)  # 990 s
        results = evaluate_predictor(
            DeadReckoningPredictor(),
            [track],
            horizons_s=[30.0, 10_000.0],
            min_history_s=300.0,
        )
        assert results[0].n > 0
        assert results[1].n == 0

    def test_vertical_errors_for_3d(self):
        n = 300
        track = Trajectory(
            "F1",
            [10.0 * i for i in range(n)],
            [24.0 + 0.0005 * i for i in range(n)],
            [37.0] * n,
            [5000.0] * n,
        )
        results = evaluate_predictor(
            DeadReckoningPredictor(), [track], horizons_s=[60.0], min_history_s=300.0
        )
        assert len(results[0].vertical_m) == results[0].n
        assert results[0].mean_vertical_m() < 10.0

    def test_requires_horizons(self):
        with pytest.raises(ValueError):
            evaluate_predictor(DeadReckoningPredictor(), [long_track()], horizons_s=[])


class TestHorizonSweep:
    def test_keyed_by_model(self):
        sweep = horizon_sweep(
            [DeadReckoningPredictor()],
            [long_track()],
            horizons_s=[60.0],
            min_history_s=300.0,
        )
        assert set(sweep) == {"dead_reckoning"}

"""Horizon-aware ensemble predictor."""

import pytest

from repro.geo.geodesy import haversine_m
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.forecasting.ensemble import EnsemblePredictor
from repro.forecasting.route_based import RouteBasedPredictor
from repro.forecasting.base import PredictionOutcome, Predictor
from repro.model.points import STPoint
from repro.model.trajectory import Trajectory
from repro.sources.kinematics import simulate_route
from repro.sources.world import RouteSpec


class _FixedPredictor(Predictor):
    """Test double: always predicts the same point with set confidence."""

    def __init__(self, name, lon, lat, confidence=1.0):
        self.name = name
        self._lon = lon
        self._lat = lat
        self._confidence = confidence

    def predict(self, history, horizon_s):
        last = history[len(history) - 1]
        return PredictionOutcome(
            point=STPoint(t=last.t + horizon_s, lon=self._lon, lat=self._lat),
            horizon_s=horizon_s,
            model=self.name,
            confidence=self._confidence,
        )


@pytest.fixture()
def history():
    return Trajectory(
        "V1", [10.0 * i for i in range(20)],
        [24.0 + 0.001 * i for i in range(20)], [37.0] * 20,
    )


class TestBlending:
    def test_short_horizon_tracks_short_model(self, history):
        ensemble = EnsemblePredictor(
            _FixedPredictor("short", 24.0, 37.0),
            _FixedPredictor("long", 25.0, 38.0),
            crossover_s=600.0,
            softness_s=100.0,
        )
        outcome = ensemble.predict(history, 30.0)
        assert haversine_m(outcome.point.lon, outcome.point.lat, 24.0, 37.0) < 2_000.0

    def test_long_horizon_tracks_long_model(self, history):
        ensemble = EnsemblePredictor(
            _FixedPredictor("short", 24.0, 37.0),
            _FixedPredictor("long", 25.0, 38.0),
            crossover_s=600.0,
            softness_s=100.0,
        )
        outcome = ensemble.predict(history, 3600.0)
        assert haversine_m(outcome.point.lon, outcome.point.lat, 25.0, 38.0) < 2_000.0

    def test_crossover_midpoint(self, history):
        ensemble = EnsemblePredictor(
            _FixedPredictor("short", 24.0, 37.0),
            _FixedPredictor("long", 24.2, 37.0),
            crossover_s=600.0,
            softness_s=100.0,
        )
        outcome = ensemble.predict(history, 600.0)
        to_short = haversine_m(outcome.point.lon, outcome.point.lat, 24.0, 37.0)
        to_long = haversine_m(outcome.point.lon, outcome.point.lat, 24.2, 37.0)
        assert to_short == pytest.approx(to_long, rel=0.1)

    def test_low_long_confidence_suppresses_long_model(self, history):
        ensemble = EnsemblePredictor(
            _FixedPredictor("short", 24.0, 37.0),
            _FixedPredictor("long", 25.0, 38.0, confidence=0.05),
            crossover_s=600.0,
            softness_s=100.0,
        )
        outcome = ensemble.predict(history, 3600.0)
        # With an untrusted long model, stay near the kinematic answer.
        assert haversine_m(outcome.point.lon, outcome.point.lat, 24.0, 37.0) < 15_000.0


class TestRealModels:
    def test_ensemble_never_much_worse_than_either(self):
        route = RouteSpec(
            "L", ((24.0, 37.0), (24.4, 37.0), (24.4, 37.4)), speed_mps=10.0
        )
        history_tracks = [
            simulate_route(f"H{i}", route, dt_s=10.0) for i in range(4)
        ]
        target = history_tracks[0]
        cut = target.duration * 0.4
        history = target.slice_time(0.0, cut)
        horizon = 1200.0
        truth = target.at_time(history.end_time + horizon)

        short = DeadReckoningPredictor()
        long = RouteBasedPredictor(history_tracks, n_routes=2)
        ensemble = EnsemblePredictor(short, long)

        def error(predictor):
            outcome = predictor.predict(history, horizon)
            return haversine_m(outcome.point.lon, outcome.point.lat, truth.lon, truth.lat)

        worst = max(error(short), error(long))
        assert error(ensemble) <= worst * 1.05

    def test_validation(self, history):
        with pytest.raises(ValueError):
            EnsemblePredictor(
                _FixedPredictor("a", 24.0, 37.0),
                _FixedPredictor("b", 24.0, 37.0),
                crossover_s=0.0,
            )

    def test_altitude_blended(self, history):
        short = _FixedPredictor("short", 24.0, 37.0)
        long = _FixedPredictor("long", 24.0, 37.0)
        # Attach altitudes via a thin wrapper.
        def with_alt(predictor, alt):
            original = predictor.predict

            def patched(history, horizon_s):
                outcome = original(history, horizon_s)
                point = STPoint(
                    t=outcome.point.t, lon=outcome.point.lon,
                    lat=outcome.point.lat, alt=alt,
                )
                return PredictionOutcome(
                    point=point, horizon_s=horizon_s, model=outcome.model,
                    confidence=outcome.confidence,
                )

            predictor.predict = patched
            return predictor

        ensemble = EnsemblePredictor(
            with_alt(short, 1000.0), with_alt(long, 3000.0),
            crossover_s=600.0, softness_s=100.0,
        )
        outcome = ensemble.predict(history, 600.0)
        assert 1000.0 < outcome.point.alt < 3000.0

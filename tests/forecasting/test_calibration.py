"""Calibrated prediction intervals."""

import pytest

from repro.forecasting.calibration import CalibratedPredictor
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.sources.generators import MaritimeTrafficGenerator


@pytest.fixture(scope="module")
def fleets():
    validation = MaritimeTrafficGenerator(seed=71).generate(
        n_vessels=6, max_duration_s=5400.0
    )
    test = MaritimeTrafficGenerator(seed=72).generate(
        n_vessels=4, max_duration_s=5400.0
    )
    return (list(validation.truth.values()), list(test.truth.values()))


@pytest.fixture(scope="module")
def calibrated(fleets):
    validation, __ = fleets
    return CalibratedPredictor(
        DeadReckoningPredictor(),
        validation,
        horizons_s=(60.0, 300.0, 900.0),
        coverage=0.9,
    )


class TestCalibration:
    def test_radius_grows_with_horizon(self, calibrated):
        r60 = calibrated.radius_for_horizon(60.0)
        r900 = calibrated.radius_for_horizon(900.0)
        assert 0.0 < r60 < r900

    def test_interpolation_between_horizons(self, calibrated):
        r300 = calibrated.radius_for_horizon(300.0)
        r600 = calibrated.radius_for_horizon(600.0)
        r900 = calibrated.radius_for_horizon(900.0)
        assert r300 <= r600 <= r900

    def test_clamped_outside_range(self, calibrated):
        assert calibrated.radius_for_horizon(10.0) == calibrated.radius_for_horizon(60.0)
        assert calibrated.radius_for_horizon(9_999.0) == calibrated.radius_for_horizon(900.0)

    def test_prediction_carries_radius(self, calibrated, fleets):
        __, test = fleets
        history = test[0].slice_time(test[0].start_time, test[0].start_time + 1200.0)
        result = calibrated.predict(history, 300.0)
        assert result.radius_m == calibrated.radius_for_horizon(300.0)
        assert result.coverage == 0.9
        assert result.outcome.model == "dead_reckoning"
        assert calibrated.name == "dead_reckoning+cal"

    def test_empirical_coverage_near_nominal(self, calibrated, fleets):
        __, test = fleets
        coverage = calibrated.empirical_coverage(test, 300.0)
        # Same traffic distribution: the learned quantile should cover
        # roughly its nominal fraction (wide tolerance for small n).
        assert coverage >= 0.6

    def test_validation_required(self):
        with pytest.raises(ValueError):
            CalibratedPredictor(DeadReckoningPredictor(), [], horizons_s=(60.0,))

    def test_coverage_bounds(self, fleets):
        validation, __ = fleets
        with pytest.raises(ValueError):
            CalibratedPredictor(
                DeadReckoningPredictor(), validation, coverage=1.5
            )

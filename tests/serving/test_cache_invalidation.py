"""The cache-correctness contract: a hit is indistinguishable from a miss.

Two layers of evidence:

- unit tests of :class:`ResultCache` pin each expiry regime in isolation
  (LRU order, TTL with an injected clock, versioned-tag invalidation,
  the ``max_entries=0`` kill switch) and the precision claim — ingest
  touching entity B must not evict entity A's cached state;
- a hypothesis property drives a real sharded :class:`ServingRuntime`
  through arbitrary interleavings of ingest batches, explicit
  invalidations, cache clears and reads, and after **every** read
  compares the (possibly cached) response against a cache-bypassing
  fresh execution: digests must match. That is the serving tier's core
  promise — the cache can never serve a result a fresh execution would
  not produce.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.serving import GLOBAL_TAG, CacheConfig, ResultCache, cell_tag, entity_tag

from tests.serving.conftest import build_runtime

# ---------------------------------------------------------------------------
# ResultCache unit behavior
# ---------------------------------------------------------------------------


class TestResultCacheUnit:
    def test_miss_then_hit(self):
        cache = ResultCache(CacheConfig(max_entries=4, ttl_s=None))
        assert cache.get("k", now=0.0) is None
        cache.put("k", "v", {entity_tag("A")}, now=0.0)
        assert cache.get("k", now=1.0) == "v"
        assert len(cache) == 1

    def test_lru_evicts_least_recently_read(self):
        cache = ResultCache(CacheConfig(max_entries=2, ttl_s=None))
        cache.put("a", 1, set(), now=0.0)
        cache.put("b", 2, set(), now=0.0)
        assert cache.get("a", now=0.0) == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3, set(), now=0.0)
        assert cache.get("b", now=0.0) is None
        assert cache.get("a", now=0.0) == 1
        assert cache.get("c", now=0.0) == 3

    def test_ttl_expiry_uses_injected_now(self):
        cache = ResultCache(CacheConfig(max_entries=4, ttl_s=10.0))
        cache.put("k", "v", set(), now=100.0)
        assert cache.get("k", now=109.0) == "v"
        assert cache.get("k", now=110.5) is None
        assert len(cache) == 0

    def test_tag_invalidation_retires_exactly_tagged_entries(self):
        cache = ResultCache(CacheConfig(max_entries=8, ttl_s=None))
        cache.put("a", 1, {entity_tag("A")}, now=0.0)
        cache.put("b", 2, {entity_tag("B")}, now=0.0)
        cache.put("g", 3, {GLOBAL_TAG}, now=0.0)
        cache.invalidate_entity("A")
        assert cache.get("a", now=0.0) is None
        assert cache.get("b", now=0.0) == 2
        assert cache.get("g", now=0.0) == 3
        cache.invalidate_tags({GLOBAL_TAG})
        assert cache.get("g", now=0.0) is None

    def test_put_after_invalidation_is_live_at_new_version(self):
        cache = ResultCache(CacheConfig(max_entries=8, ttl_s=None))
        cache.put("a", 1, {cell_tag(7)}, now=0.0)
        cache.invalidate_zone(7)
        cache.put("a", 2, {cell_tag(7)}, now=0.0)
        assert cache.get("a", now=0.0) == 2

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(CacheConfig(max_entries=0, ttl_s=None))
        cache.put("k", "v", set(), now=0.0)
        assert cache.get("k", now=0.0) is None
        assert len(cache) == 0

    def test_counters_account_every_outcome(self):
        registry = MetricsRegistry()
        cache = ResultCache(CacheConfig(max_entries=1, ttl_s=5.0), registry)
        cache.get("k", now=0.0)  # miss
        cache.put("k", 1, {entity_tag("A")}, now=0.0)
        cache.get("k", now=1.0)  # hit
        cache.invalidate_entity("A")
        cache.get("k", now=1.0)  # invalidated -> miss
        cache.put("k", 2, set(), now=0.0)
        cache.get("k", now=20.0)  # expired -> miss
        cache.put("k", 3, set(), now=20.0)
        cache.put("k2", 4, set(), now=20.0)  # evicts "k"
        assert registry.counter("serving.cache.hit").value == 1
        assert registry.counter("serving.cache.miss").value == 3
        assert registry.counter("serving.cache.invalidated").value == 1
        assert registry.counter("serving.cache.expired").value == 1
        assert registry.counter("serving.cache.evicted").value == 1


# ---------------------------------------------------------------------------
# Runtime-level precision: unrelated ingest must not invalidate
# ---------------------------------------------------------------------------


def test_ingest_of_other_entity_keeps_unrelated_state_cached(
    serving_spec, serving_reports
):
    runtime = build_runtime(serving_spec)
    half = len(serving_reports) // 2
    runtime.ingest(serving_reports[:half])
    ids = runtime.entity_ids()
    target, other = ids[0], ids[1]

    first = runtime.handle("state", {"entity_id": target})
    assert first.status == 200 and not first.cached
    assert runtime.handle("state", {"entity_id": target}).cached

    other_reports = [r for r in serving_reports[half:] if r.entity_id == other]
    assert other_reports, "sample must keep producing for the other entity"
    runtime.ingest(other_reports[:20])

    still = runtime.handle("state", {"entity_id": target})
    assert still.cached and still.digest == first.digest
    # The ingested entity's cached state (if any) must reflect new data.
    refreshed = runtime.handle("state", {"entity_id": other}, bypass_cache=True)
    assert refreshed.payload["t"] == max(r.t for r in other_reports[:20])


def test_ingest_invalidates_served_entity_state(serving_spec, serving_reports):
    runtime = build_runtime(serving_spec)
    half = len(serving_reports) // 2
    runtime.ingest(serving_reports[:half])
    target = runtime.entity_ids()[0]
    stale = runtime.handle("state", {"entity_id": target})
    newer = [r for r in serving_reports[half:] if r.entity_id == target]
    assert newer
    runtime.ingest(newer[:10])
    fresh = runtime.handle("state", {"entity_id": target})
    assert not fresh.cached
    assert fresh.payload["t"] > stale.payload["t"]


# ---------------------------------------------------------------------------
# The hypothesis differential: cached == fresh under any interleaving
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("ingest"), st.integers(0, 7)),
        st.tuples(st.just("read"), st.integers(0, 9)),
        st.tuples(st.just("invalidate"), st.integers(0, 7)),
        st.tuples(st.just("clear"), st.just(0)),
    ),
    min_size=4,
    max_size=25,
)


@settings(max_examples=12, deadline=None)
@given(ops=_OPS, seed=st.integers(0, 3))
def test_cached_equals_fresh_after_any_interleaving(
    serving_spec, serving_reports, ops, seed
):
    """After any ingest/invalidate/clear/read schedule, a (possibly
    cached) response is digest-identical to a cache-bypassing fresh
    execution of the same request — the cache is semantically invisible."""
    runtime = build_runtime(serving_spec, n_shards=2)
    chunk = max(1, len(serving_reports) // 8)
    chunks = [
        serving_reports[i * chunk : (i + 1) * chunk] for i in range(8)
    ]
    runtime.ingest(chunks[seed])  # warm start so entity reads can be 200s
    bbox = serving_spec.bbox

    def read_request(idx: int):
        ids = runtime.entity_ids()
        entity = ids[idx % len(ids)] if ids else "absent"
        return [
            ("state", {"entity_id": entity}),
            ("forecast", {"entity_id": entity, "horizon_s": 120.0}),
            ("trajectory", {"entity_id": entity}),
            (
                "range",
                {
                    "bbox": [bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat]
                },
            ),
            ("events", {"since": 0, "limit": 50}),
        ][idx % 5]

    for op, arg in ops:
        if op == "ingest":
            runtime.ingest(chunks[arg])
        elif op == "invalidate":
            ids = runtime.entity_ids()
            if ids:
                runtime.cache.invalidate_entity(ids[arg % len(ids)])
        elif op == "clear":
            runtime.cache.clear()
        else:
            endpoint, params = read_request(arg)
            served = runtime.handle(endpoint, params)
            fresh = runtime.handle(endpoint, params, bypass_cache=True)
            assert served.status == fresh.status
            assert served.digest == fresh.digest, (
                f"{endpoint} served a result fresh execution disowns "
                f"(cached={served.cached})"
            )

"""Socket-level tests of the stdlib HTTP gateway.

Real TCP round trips against an ephemeral-port server: routing, JSON
bodies, cache/digest headers, 404/400 mapping, ingest POSTs, the
chunked NDJSON event stream, and 429 shedding surfaced over HTTP.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.runtime.backpressure import AdmissionConfig
from repro.serving import AdmissionPolicyConfig, ServingApp, serve

from tests.serving.conftest import build_runtime


async def _http(
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """One request on its own connection; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    lines = [f"{method} {path} HTTP/1.1", "Host: test", "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    if payload:
        lines.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, __, body_bytes = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    response_headers = {}
    for line in head_lines[1:]:
        name, __, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    return status, response_headers, body_bytes


@pytest.fixture()
def served(serving_spec, serving_reports):
    """A running server over a warm runtime; yields (server, runtime)."""
    runtime = build_runtime(serving_spec)
    runtime.ingest(serving_reports[: len(serving_reports) // 2])
    app = ServingApp(runtime)

    async def start():
        return await serve(app, port=0)

    loop = asyncio.new_event_loop()
    server = loop.run_until_complete(start())
    try:
        yield loop, server, runtime
    finally:
        loop.run_until_complete(server.stop())
        loop.close()


def test_health_metrics_and_stats(served):
    loop, server, runtime = served
    status, __, body = loop.run_until_complete(
        _http(server.port, "GET", "/healthz")
    )
    assert status == 200 and json.loads(body)["ok"] is True
    status, headers, body = loop.run_until_complete(
        _http(server.port, "GET", "/metrics")
    )
    assert status == 200
    assert headers["content-type"].startswith("text/plain")
    assert b"serving_requests" in body or b"serving_ingest" in body
    status, __, body = loop.run_until_complete(
        _http(server.port, "GET", "/stats")
    )
    assert status == 200
    assert "counters" in json.loads(body) or json.loads(body)


def test_entity_reads_and_cache_headers(served):
    loop, server, runtime = served
    entity_id = runtime.entity_ids()[0]
    path = f"/v1/entities/{entity_id}/state"
    status, first_headers, body = loop.run_until_complete(
        _http(server.port, "GET", path)
    )
    assert status == 200
    assert first_headers["x-cache"] == "miss"
    first = json.loads(body)
    assert first["payload"]["entity_id"] == entity_id
    status, second_headers, body = loop.run_until_complete(
        _http(server.port, "GET", path)
    )
    assert second_headers["x-cache"] == "hit"
    assert second_headers["x-result-digest"] == first_headers["x-result-digest"]
    assert json.loads(body)["digest"] == first["digest"]
    assert second_headers["x-shards"] == first_headers["x-shards"]


def test_forecast_query_range_routes(served):
    loop, server, runtime = served
    entity_id = runtime.entity_ids()[0]
    status, __, body = loop.run_until_complete(
        _http(
            server.port,
            "GET",
            f"/v1/entities/{entity_id}/forecast?horizon_s=120",
        )
    )
    assert status == 200
    assert json.loads(body)["payload"]["horizon_s"] == 120.0
    status, __, body = loop.run_until_complete(
        _http(
            server.port,
            "POST",
            "/v1/query",
            {"query": "SELECT ?o WHERE { ?n dac:ofMovingObject ?o . }"},
        )
    )
    assert status == 200 and json.loads(body)["payload"]["n_results"] > 0
    bbox = runtime.shards[0].grid.bbox
    status, __, body = loop.run_until_complete(
        _http(
            server.port,
            "POST",
            "/v1/range",
            {"bbox": [bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat]},
        )
    )
    assert status == 200 and json.loads(body)["payload"]["n_results"] > 0


def test_error_mapping(served):
    loop, server, __ = served
    status, __h, body = loop.run_until_complete(
        _http(server.port, "GET", "/nope")
    )
    assert status == 404 and "no route" in json.loads(body)["error"]
    status, __h, __b = loop.run_until_complete(
        _http(server.port, "POST", "/v1/query", {"query": "garbage"})
    )
    assert status == 400
    status, __h, __b = loop.run_until_complete(
        _http(server.port, "POST", "/v1/query", {"wrong_key": 1})
    )
    assert status == 400
    status, __h, __b = loop.run_until_complete(
        _http(server.port, "GET", "/v1/entities/UNKNOWN/state")
    )
    assert status == 404


def test_ingest_roundtrip_refreshes_state(served):
    loop, server, runtime = served
    doc = {
        "reports": [
            {
                "entity_id": "HTTPV1",
                "t": 5000.0,
                "lon": runtime.shards[0].grid.bbox.min_lon + 0.01,
                "lat": runtime.shards[0].grid.bbox.min_lat + 0.01,
                "speed": 4.5,
            }
        ]
    }
    status, __, body = loop.run_until_complete(
        _http(server.port, "POST", "/v1/ingest", doc)
    )
    assert status == 200 and json.loads(body)["reports"] == 1
    status, __, body = loop.run_until_complete(
        _http(server.port, "GET", "/v1/entities/HTTPV1/state")
    )
    assert status == 200
    assert json.loads(body)["payload"]["t"] == 5000.0


def test_event_stream_chunked_ndjson(served):
    loop, server, runtime = served
    total = runtime.event_seq()
    assert total >= 2

    async def stream():
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(
            b"GET /v1/events/stream?since=0&count=2 HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
        writer.close()
        return raw

    raw = loop.run_until_complete(stream())
    head, __, body = raw.partition(b"\r\n\r\n")
    assert b"200 OK" in head
    assert b"application/x-ndjson" in head
    assert b"Transfer-Encoding: chunked" in head
    # De-chunk: every other CRLF-delimited token is a payload line.
    events = []
    rest = body
    while rest and not rest.startswith(b"0\r\n"):
        size_text, __, rest = rest.partition(b"\r\n")
        size = int(size_text, 16)
        chunk, rest = rest[:size], rest[size + 2 :]
        events.append(json.loads(chunk))
    assert len(events) == 2
    assert [e["seq"] for e in events] == [0, 1]


def test_http_429_shedding_under_overload(serving_spec, serving_reports):
    runtime = build_runtime(serving_spec)
    runtime.ingest(serving_reports[:200])
    app = ServingApp(
        runtime,
        admission=AdmissionPolicyConfig(
            capacity=2, controller=AdmissionConfig(window=4, seed=5)
        ),
        service_time_s=0.003,
    )
    entity_id = runtime.entity_ids()[0]

    async def flood():
        server = await serve(app, port=0)
        try:
            results = await asyncio.gather(
                *(
                    _http(
                        server.port,
                        "GET",
                        f"/v1/entities/{entity_id}/state",
                        headers={"X-Client-Id": "greedy"},
                    )
                    for __ in range(120)
                )
            )
        finally:
            await server.stop()
        return results

    results = asyncio.run(flood())
    statuses = [status for status, __, __b in results]
    assert statuses.count(429) > 0
    assert statuses.count(200) > 0
    assert (
        runtime.metrics.counter("serving.responses.429").value
        == statuses.count(429)
    )

"""Routing and admission: one shard per entity, deterministic shedding.

Routing — entity-scoped requests must land on exactly the shard the
stable CRC-32 key routing assigns (the same routing ingest used), so a
request never scans shards that cannot own the entity.

Admission — the per-client policy must shed *deterministically* under a
scripted ("seeded") overload: same config + same observation sequence →
the identical admit/shed decision sequence, with every outcome visible
on the registry. The asyncio app surfaces sheds as 429 responses.
"""

from __future__ import annotations

import asyncio

from repro.hashing import stable_shard
from repro.obs.metrics import MetricsRegistry
from repro.runtime.backpressure import AdmissionConfig
from repro.serving import (
    AdmissionPolicy,
    AdmissionPolicyConfig,
    RequestRouter,
    ServingApp,
)

from tests.serving.conftest import N_SHARDS, build_runtime

#: Aggressive controller for tests: tiny window so the admit rate decays
#: within a few observations instead of the production default 64.
FAST_DECAY = AdmissionConfig(window=4, seed=99)


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


class TestRouting:
    def test_entity_plan_is_single_stable_shard(self):
        router = RequestRouter(N_SHARDS)
        for entity_id in ("V0001", "V0002", "FLT123", "x"):
            decision = router.plan(entity_id)
            assert decision.single
            assert decision.shards == (stable_shard(entity_id, N_SHARDS),)

    def test_fanout_plan_covers_every_shard(self):
        decision = RequestRouter(N_SHARDS).plan(None)
        assert not decision.single
        assert decision.shards == tuple(range(N_SHARDS))

    def test_entity_requests_land_on_owning_shard(self, warm_runtime):
        """The response's shard set is exactly the router-assigned shard,
        and that shard (alone) holds the entity's state."""
        for entity_id in warm_runtime.entity_ids():
            expected = stable_shard(entity_id, N_SHARDS)
            for endpoint in ("state", "forecast", "trajectory"):
                response = warm_runtime.handle(
                    endpoint, {"entity_id": entity_id}, bypass_cache=True
                )
                assert response.shards == (expected,), (
                    f"{endpoint} for {entity_id} touched {response.shards}, "
                    f"router owns it to shard {expected}"
                )
            owners = [
                shard_id
                for shard_id, latest in enumerate(warm_runtime._latest)
                if entity_id in latest
            ]
            assert owners == [expected]

    def test_fanout_requests_touch_every_shard(self, warm_runtime):
        bbox = warm_runtime.shards[0].grid.bbox
        response = warm_runtime.handle(
            "range",
            {"bbox": [bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat]},
            bypass_cache=True,
        )
        assert response.shards == tuple(range(N_SHARDS))


# ---------------------------------------------------------------------------
# Admission policy determinism
# ---------------------------------------------------------------------------


def _scripted_overload(policy: AdmissionPolicy, n: int = 120) -> list[bool]:
    """Drive one client with every observation saturated; capacity=1 and
    in_flight=5 means each observation registers pressure."""
    return [policy.try_admit("greedy", in_flight=5) for __ in range(n)]


class TestAdmissionDeterminism:
    def _policy(self, registry=None) -> AdmissionPolicy:
        config = AdmissionPolicyConfig(capacity=1, controller=FAST_DECAY)
        return AdmissionPolicy(config, metrics=registry)

    def test_identical_decision_sequence_across_runs(self):
        first = _scripted_overload(self._policy())
        second = _scripted_overload(self._policy())
        assert first == second
        assert False in first, "sustained overload must shed something"
        assert True in first, "min_admit_rate keeps degraded progress"

    def test_admit_rate_decays_under_pressure_and_floors(self):
        policy = self._policy()
        _scripted_overload(policy, n=400)
        rate = policy.admit_rate("greedy")
        assert rate <= 0.1
        assert rate >= FAST_DECAY.min_admit_rate

    def test_per_client_isolation(self):
        policy = self._policy()
        _scripted_overload(policy, n=200)  # greedy client saturates
        light = [policy.try_admit("light", in_flight=0) for __ in range(50)]
        assert all(light), "an unpressured client must not inherit the shed"
        assert policy.admit_rate("light") == 1.0
        assert policy.admit_rate("greedy") < 0.2

    def test_decisions_independent_of_other_clients_interleaving(self):
        """Client A's decision stream depends only on A's observations."""
        solo = self._policy()
        solo_decisions = [solo.try_admit("a", in_flight=5) for __ in range(60)]
        mixed = self._policy()
        mixed_decisions = []
        for i in range(60):
            mixed_decisions.append(mixed.try_admit("a", in_flight=5))
            mixed.try_admit(f"noise-{i % 7}", in_flight=0)
        assert solo_decisions == mixed_decisions

    def test_registry_accounts_every_decision(self):
        registry = MetricsRegistry()
        policy = self._policy(registry)
        decisions = _scripted_overload(policy, n=150)
        admitted = registry.counter("serving.admission.admitted").value
        shed = registry.counter("serving.admission.shed").value
        assert admitted == sum(decisions)
        assert shed == len(decisions) - sum(decisions)
        assert policy.admitted_total() == admitted
        assert policy.shed_total() == shed

    def test_overflow_clients_share_one_controller(self):
        policy = AdmissionPolicy(
            AdmissionPolicyConfig(capacity=1, controller=FAST_DECAY, max_clients=2)
        )
        policy.try_admit("a", in_flight=0)
        policy.try_admit("b", in_flight=0)
        assert policy.controller("c") is policy.controller("d")
        assert policy.controller("a") is not policy.controller("b")


# ---------------------------------------------------------------------------
# App-level 429 shedding
# ---------------------------------------------------------------------------


def test_app_sheds_with_429_under_concurrent_overload(warm_runtime):
    app = ServingApp(
        warm_runtime,
        admission=AdmissionPolicyConfig(capacity=2, controller=FAST_DECAY),
        service_time_s=0.002,
    )
    entity_id = warm_runtime.entity_ids()[0]

    async def flood():
        return await asyncio.gather(
            *(
                app.request("state", {"entity_id": entity_id}, client_id="flood")
                for __ in range(150)
            )
        )

    responses = asyncio.run(flood())
    statuses = [r.status for r in responses]
    assert statuses.count(429) > 0, "sustained overload must produce 429s"
    assert statuses.count(200) > 0, "min admit rate keeps serving some"
    registry = warm_runtime.metrics
    assert (
        registry.counter("serving.responses.429").value == statuses.count(429)
    )
    shed_responses = [r for r in responses if r.status == 429]
    for response in shed_responses:
        assert response.payload["retry"] is True
        assert response.digest  # sheds are digest-stamped too
    assert app.in_flight == 0

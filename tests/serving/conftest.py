"""Shared serving-tier fixtures: a warm sharded runtime over real traffic."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import PipelineSpec
from repro.serving import ServingConfig, ServingRuntime
from repro.sources.generators import MaritimeTrafficGenerator, TrafficSample

N_SHARDS = 4


@pytest.fixture(scope="module")
def serving_sample() -> TrafficSample:
    """Deterministic maritime traffic the serving tests ingest."""
    generator = MaritimeTrafficGenerator(seed=29)
    return generator.generate(n_vessels=8, max_duration_s=1200.0)


@pytest.fixture(scope="module")
def serving_reports(serving_sample):
    return sorted(serving_sample.reports, key=lambda r: r.t)


@pytest.fixture(scope="module")
def serving_spec(serving_sample) -> PipelineSpec:
    return PipelineSpec(
        bbox=serving_sample.world.bbox,
        config=PipelineConfig(),
        registry=serving_sample.registry,
        zones=tuple(serving_sample.world.zones),
    )


def build_runtime(
    spec: PipelineSpec, n_shards: int = N_SHARDS, **config_kwargs
) -> ServingRuntime:
    """A fresh runtime (tests that mutate state build their own)."""
    return ServingRuntime(spec, ServingConfig(n_shards=n_shards, **config_kwargs))


@pytest.fixture()
def warm_runtime(serving_spec, serving_reports) -> ServingRuntime:
    """A fresh runtime with the first half of the sample ingested."""
    runtime = build_runtime(serving_spec)
    runtime.ingest(serving_reports[: len(serving_reports) // 2])
    return runtime

"""Load-harness tests: concurrency with ingest, digest equality, determinism.

The E11 bench gates on what these tests pin at small scale:

- a closed-loop run over a warm runtime with a concurrent writer arm
  finishes with **zero** cached-vs-fresh digest mismatches;
- the seeded request sequence is reproducible — two runs of the same
  config against identically-warmed runtimes issue the identical
  request multiset and get the identical status counts;
- the open-loop arm delivers its full scheduled request count.
"""

from __future__ import annotations

import asyncio

from repro.serving import (
    LoadConfig,
    RequestMix,
    ServingApp,
    Workload,
    run_load,
)

from tests.serving.conftest import build_runtime

_QUERIES = (
    "SELECT ?o WHERE { ?n dac:ofMovingObject ?o . }",
    "SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY ?t LIMIT 20",
)


def _workload(runtime, spec) -> Workload:
    bbox = spec.bbox
    return Workload(
        entity_ids=tuple(runtime.entity_ids()),
        bbox=(bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat),
        queries=_QUERIES,
    )


def _batches(reports, start, n_batches=4, size=40):
    return [
        reports[start + i * size : start + (i + 1) * size]
        for i in range(n_batches)
    ]


def test_closed_loop_with_concurrent_ingest_has_no_mismatch(
    serving_spec, serving_reports
):
    runtime = build_runtime(serving_spec)
    half = len(serving_reports) // 2
    runtime.ingest(serving_reports[:half])
    app = ServingApp(runtime, service_time_s=0.0005)
    config = LoadConfig(
        clients=40, requests_per_client=6, seed=7, verify_every=3
    )
    report = asyncio.run(
        run_load(
            app,
            _workload(runtime, serving_spec),
            config,
            writer_batches=_batches(serving_reports, half),
        )
    )
    assert report.requests == 240
    assert report.ingest_batches == 4
    assert report.verify_pairs > 0
    assert report.digest_mismatches == 0, (
        "cache served content a fresh execution disowns"
    )
    assert set(report.statuses) == {200}
    assert report.wall_s > 0 and report.requests_per_s > 0
    # Client-observed latencies landed both in the report and registry.
    assert report.latency
    summaries = runtime.metrics.histogram_summaries()
    for endpoint, summary in report.latency.items():
        assert summary["count"] >= 1
        assert summaries[f"serving.client.{endpoint}"]["count"] == summary["count"]
    # A repeated seeded mix against a cache must actually hit it.
    assert runtime.cache_hit_rate() > 0.0


def test_request_sequence_is_reproducible(serving_spec, serving_reports):
    def run_once():
        runtime = build_runtime(serving_spec, n_shards=2)
        runtime.ingest(serving_reports[: len(serving_reports) // 2])
        app = ServingApp(runtime)
        report = asyncio.run(
            run_load(
                app,
                _workload(runtime, serving_spec),
                LoadConfig(clients=20, requests_per_client=5, seed=11),
            )
        )
        counts = {
            endpoint: summary["count"]
            for endpoint, summary in report.latency.items()
        }
        return counts, report.statuses

    first = run_once()
    second = run_once()
    assert first == second


def test_open_loop_delivers_scheduled_arrivals(serving_spec, serving_reports):
    runtime = build_runtime(serving_spec, n_shards=2)
    runtime.ingest(serving_reports[: len(serving_reports) // 2])
    app = ServingApp(runtime)
    config = LoadConfig(
        clients=10,
        requests_per_client=4,
        mode="open",
        seed=3,
        arrival_rate_rps=5000.0,
        verify_every=0,
    )
    report = asyncio.run(
        run_load(app, _workload(runtime, serving_spec), config)
    )
    assert report.mode == "open"
    assert report.requests == 40
    assert set(report.statuses) == {200}


def test_mix_weights_respected_in_aggregate(serving_spec, serving_reports):
    """A state-only mix issues only state requests (weight 0 endpoints
    never fire)."""
    runtime = build_runtime(serving_spec, n_shards=2)
    runtime.ingest(serving_reports[:200])
    app = ServingApp(runtime)
    mix = RequestMix(
        state=1.0, forecast=0.0, trajectory=0.0, range=0.0, query=0.0, events=0.0
    )
    report = asyncio.run(
        run_load(
            app,
            _workload(runtime, serving_spec),
            LoadConfig(clients=8, requests_per_client=5, seed=1, mix=mix),
        )
    )
    assert list(report.latency) == ["state"]

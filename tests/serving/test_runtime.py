"""ServingRuntime behavior: endpoints, the event log, shard transparency.

The strongest check here is *shard transparency*: a 4-shard runtime and
a 1-shard runtime fed the same reports must serve digest-comparable
results for every fan-out read (range, textual query with ORDER BY /
DISTINCT / LIMIT) — sharding is a throughput decision, never a
semantics decision.
"""

from __future__ import annotations

import pytest

from repro.core.results import digest_of
from repro.serving import ENDPOINTS, ServingConfig, ServingRuntime

from tests.serving.conftest import build_runtime


# ---------------------------------------------------------------------------
# Ingest and the event log
# ---------------------------------------------------------------------------


def test_ingest_summary_and_event_log(serving_spec, serving_reports):
    runtime = build_runtime(serving_spec)
    half = len(serving_reports) // 2
    first = runtime.ingest(serving_reports[:half])
    assert first["reports"] == half
    assert first["event_seq"] == first["new_events"]
    assert first["invalidated_tags"] > 0
    second = runtime.ingest(serving_reports[half:])
    assert second["event_seq"] == first["new_events"] + second["new_events"]
    assert runtime.event_seq() == second["event_seq"]

    log = runtime.handle("events", {"since": 0, "limit": 100_000})
    events = log.payload["events"]
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert all(e["kind"] in ("simple", "complex") for e in events)


def test_events_cursor_pagination(warm_runtime):
    total = warm_runtime.event_seq()
    assert total > 0, "the warm sample must produce events"
    first = warm_runtime.handle("events", {"since": 0, "limit": 1})
    assert first.payload["n_results"] == 1
    cursor = first.payload["next_seq"]
    rest = warm_runtime.handle("events", {"since": cursor, "limit": 100_000})
    assert rest.payload["n_results"] == total - 1
    done = warm_runtime.handle("events", {"since": total, "limit": 10})
    assert done.payload["events"] == []
    assert done.payload["next_seq"] == total


def test_empty_ingest_is_a_noop(warm_runtime):
    seq = warm_runtime.event_seq()
    summary = warm_runtime.ingest([])
    assert summary == {
        "reports": 0,
        "new_events": 0,
        "event_seq": seq,
        "invalidated_tags": 0,
    }


# ---------------------------------------------------------------------------
# Endpoint payloads and validation
# ---------------------------------------------------------------------------


def test_state_serves_latest_report(warm_runtime, serving_reports):
    entity_id = warm_runtime.entity_ids()[0]
    half = len(serving_reports) // 2
    expected = max(
        (r for r in serving_reports[:half] if r.entity_id == entity_id),
        key=lambda r: r.t,
    )
    response = warm_runtime.handle("state", {"entity_id": entity_id})
    assert response.status == 200
    assert response.payload["t"] == expected.t
    assert response.payload["lon"] == expected.lon
    assert response.digest == digest_of(response.payload)


def test_forecast_extrapolates_forward(warm_runtime):
    entity_id = warm_runtime.entity_ids()[0]
    state = warm_runtime.handle("state", {"entity_id": entity_id}).payload
    response = warm_runtime.handle(
        "forecast", {"entity_id": entity_id, "horizon_s": 300.0}
    )
    assert response.status == 200
    payload = response.payload
    assert payload["horizon_s"] == 300.0
    assert payload["point"]["t"] == pytest.approx(state["t"] + 300.0)
    assert payload["model"]
    assert 0.0 <= payload["confidence"] <= 1.0


def test_forecast_default_horizon(serving_spec, serving_reports):
    runtime = ServingRuntime(
        serving_spec, ServingConfig(n_shards=2, default_horizon_s=42.0)
    )
    runtime.ingest(serving_reports[:200])
    entity_id = runtime.entity_ids()[0]
    response = runtime.handle("forecast", {"entity_id": entity_id})
    assert response.payload["horizon_s"] == 42.0


def test_trajectory_matches_owning_shard_store(warm_runtime):
    entity_id = warm_runtime.entity_ids()[0]
    response = warm_runtime.handle("trajectory", {"entity_id": entity_id})
    assert response.status == 200
    shard_id = response.shards[0]
    stored = warm_runtime.shards[shard_id].executor.entity_trajectory(entity_id)
    assert response.payload["n_points"] == len(stored)
    assert response.payload["t"] == [float(v) for v in stored.t]


def test_unknown_entity_404s(warm_runtime):
    for endpoint in ("state", "forecast", "trajectory"):
        response = warm_runtime.handle(endpoint, {"entity_id": "NOPE"})
        assert response.status == 404
        assert "NOPE" in response.payload["error"]


def test_validation_failures_400(warm_runtime):
    assert warm_runtime.handle("nonsense", {}).status == 400
    assert warm_runtime.handle("state", {}).status == 400  # missing entity_id
    assert warm_runtime.handle("range", {"bbox": [1, 2, 3]}).status == 400
    assert (
        warm_runtime.handle("events", {"since": 0, "limit": 0}).status == 400
    )
    assert warm_runtime.handle("query", {"query": "not a query"}).status == 400


def test_every_endpoint_records_latency_histogram(warm_runtime):
    bbox = warm_runtime.shards[0].grid.bbox
    warm_runtime.handle("state", {"entity_id": warm_runtime.entity_ids()[0]})
    warm_runtime.handle(
        "forecast", {"entity_id": warm_runtime.entity_ids()[0]}
    )
    warm_runtime.handle(
        "trajectory", {"entity_id": warm_runtime.entity_ids()[0]}
    )
    warm_runtime.handle(
        "range",
        {"bbox": [bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat]},
    )
    warm_runtime.handle(
        "query", {"query": "SELECT ?o WHERE { ?n dac:ofMovingObject ?o . }"}
    )
    warm_runtime.handle("events", {"since": 0})
    summaries = warm_runtime.metrics.histogram_summaries()
    for endpoint in ENDPOINTS:
        name = f"serving.request.{endpoint}"
        assert name in summaries and summaries[name]["count"] >= 1


# ---------------------------------------------------------------------------
# Shard transparency
# ---------------------------------------------------------------------------

_QUERIES = (
    "SELECT ?o WHERE { ?n dac:ofMovingObject ?o . }",
    "SELECT DISTINCT ?o WHERE { ?n dac:ofMovingObject ?o . }",
    "SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY ?t LIMIT 25",
    "SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY DESC(?t) LIMIT 10",
)


def test_sharding_is_semantically_invisible(serving_spec, serving_reports):
    """Fan-out reads on a 4-shard runtime are digest-identical to the
    same reads on an unsharded runtime over the same ingested data."""
    sharded = build_runtime(serving_spec, n_shards=4)
    single = build_runtime(serving_spec, n_shards=1)
    sharded.ingest(serving_reports)
    single.ingest(serving_reports)
    bbox = serving_spec.bbox

    requests = [
        (
            "range",
            {"bbox": [bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat]},
        ),
        (
            "range",
            {
                "bbox": [
                    bbox.min_lon,
                    bbox.min_lat,
                    (bbox.min_lon + bbox.max_lon) / 2.0,
                    (bbox.min_lat + bbox.max_lat) / 2.0,
                ],
                "t_from": 0.0,
                "t_to": 600.0,
            },
        ),
    ] + [("query", {"query": q}) for q in _QUERIES]
    for endpoint, params in requests:
        wide = sharded.handle(endpoint, params, bypass_cache=True)
        narrow = single.handle(endpoint, params, bypass_cache=True)
        assert wide.status == narrow.status == 200
        assert wide.digest == narrow.digest, (endpoint, params)

    # Entity-scoped reads agree too (different shard, same answer).
    for entity_id in sharded.entity_ids():
        for endpoint in ("state", "trajectory"):
            wide = sharded.handle(
                endpoint, {"entity_id": entity_id}, bypass_cache=True
            )
            narrow = single.handle(
                endpoint, {"entity_id": entity_id}, bypass_cache=True
            )
            assert wide.digest == narrow.digest


def test_order_by_limit_applied_globally_not_per_shard(
    serving_spec, serving_reports
):
    """A per-shard LIMIT would under-produce: the global top-k must equal
    the unsharded top-k exactly, which only holds when modifiers run
    after the merge."""
    sharded = build_runtime(serving_spec, n_shards=4)
    single = build_runtime(serving_spec, n_shards=1)
    sharded.ingest(serving_reports)
    single.ingest(serving_reports)
    query = "SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY ?t LIMIT 5"
    wide = sharded.handle("query", {"query": query}, bypass_cache=True)
    narrow = single.handle("query", {"query": query}, bypass_cache=True)
    assert wide.payload["n_results"] == 5
    assert wide.payload["rows"] == narrow.payload["rows"]

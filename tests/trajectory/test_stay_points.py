"""Stay-point detection and voyage segmentation."""

import numpy as np
import pytest

from repro.geo.geodesy import destination_point, haversine_m
from repro.model.trajectory import Trajectory
from repro.trajectory.stay_points import detect_stay_points, split_voyages


def track_with_stop(
    transit_s=1200.0, stop_s=1800.0, speed_m_per_step=80.0, dt=10.0, seed=0
):
    """Transit east, dwell in place (small drift), transit east again."""
    rng = np.random.default_rng(seed)
    t, lon, lat = 0.0, 24.0, 37.0
    times, lons, lats = [t], [lon], [lat]
    while t < transit_s:
        t += dt
        lon, lat = destination_point(lon, lat, 90.0, speed_m_per_step)
        times.append(t)
        lons.append(lon)
        lats.append(lat)
    stop_end = t + stop_s
    while t < stop_end:
        t += dt
        lon, lat = destination_point(lon, lat, float(rng.uniform(0, 360)), 3.0)
        times.append(t)
        lons.append(lon)
        lats.append(lat)
    final = t + transit_s
    while t < final:
        t += dt
        lon, lat = destination_point(lon, lat, 90.0, speed_m_per_step)
        times.append(t)
        lons.append(lon)
        lats.append(lat)
    return Trajectory("S1", times, lons, lats)


class TestDetectStayPoints:
    def test_single_stop_found(self):
        track = track_with_stop()
        stays = detect_stay_points(track, radius_m=400.0, min_duration_s=900.0)
        assert len(stays) == 1
        stay = stays[0]
        assert 1000.0 < stay.t_start < 1500.0
        assert stay.duration > 1500.0
        assert stay.entity_id == "S1"

    def test_centroid_near_stop_location(self):
        track = track_with_stop()
        (stay,) = detect_stay_points(track, radius_m=400.0, min_duration_s=900.0)
        anchor = track.at_time(1300.0)
        assert haversine_m(stay.lon, stay.lat, anchor.lon, anchor.lat) < 500.0

    def test_moving_track_no_stays(self):
        track = Trajectory(
            "M", [10.0 * i for i in range(100)],
            [24.0 + 0.001 * i for i in range(100)], [37.0] * 100,
        )
        assert detect_stay_points(track, radius_m=400.0, min_duration_s=600.0) == []

    def test_short_dwell_ignored(self):
        track = track_with_stop(stop_s=300.0)
        assert detect_stay_points(track, radius_m=400.0, min_duration_s=900.0) == []

    def test_two_stops(self):
        a = track_with_stop()
        # Shift a second copy after the first, 1 hour later.
        offset = a.end_time + 40.0
        b = Trajectory(
            "S1", a.t + offset, a.lon + 0.5, a.lat, domain=a.domain
        )
        combined = a.append(b)
        stays = detect_stay_points(combined, radius_m=400.0, min_duration_s=900.0)
        assert len(stays) == 2
        assert stays[0].t_end < stays[1].t_start

    def test_validation(self):
        track = track_with_stop()
        with pytest.raises(ValueError):
            detect_stay_points(track, radius_m=0.0)


class TestSplitVoyages:
    def test_split_around_stop(self):
        track = track_with_stop()
        voyages = split_voyages(track, radius_m=400.0, min_duration_s=900.0)
        assert len(voyages) == 2
        assert voyages[0].end_time <= voyages[1].start_time
        # Both voyages are genuinely moving.
        for voyage in voyages:
            assert float(voyage.speeds_mps().mean()) > 3.0

    def test_no_stays_whole_track(self):
        track = Trajectory(
            "M", [10.0 * i for i in range(50)],
            [24.0 + 0.001 * i for i in range(50)], [37.0] * 50,
        )
        voyages = split_voyages(track, radius_m=400.0, min_duration_s=600.0)
        assert voyages == [track]

    def test_min_points_filter(self):
        track = track_with_stop(transit_s=30.0)  # tiny leading voyage
        voyages = split_voyages(
            track, radius_m=400.0, min_duration_s=900.0, min_voyage_points=10
        )
        assert all(len(v) >= 10 for v in voyages)

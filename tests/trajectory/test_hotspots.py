"""Hot-spot and hot-path detection."""

import numpy as np
import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.trajectory import Trajectory
from repro.trajectory.hotspots import density_grid, hot_paths, hotspot_cells


@pytest.fixture()
def grid():
    return GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=10, ny=10)


def crossing_track(entity, n=30):
    """West-to-east track through the middle of the grid."""
    return Trajectory(
        entity,
        [30.0 * i for i in range(n)],
        list(np.linspace(24.05, 24.95, n)),
        [37.55] * n,
    )


class TestDensityGrid:
    def test_shape(self, grid):
        density = density_grid([crossing_track("A")], grid)
        assert density.shape == (10, 10)

    def test_per_entity_counts_presence(self, grid):
        # One entity crossing each cell many times counts once per cell.
        track = crossing_track("A", n=100)
        density = density_grid([track], grid, per_entity=True)
        assert float(density.max()) == 1.0

    def test_dwell_mode_counts_samples(self, grid):
        track = crossing_track("A", n=100)
        density = density_grid([track], grid, per_entity=False)
        assert float(density.sum()) == 100.0

    def test_multiple_entities_accumulate(self, grid):
        tracks = [crossing_track(f"E{i}") for i in range(4)]
        density = density_grid(tracks, grid)
        assert float(density.max()) == 4.0


class TestHotspots:
    def test_corridor_detected(self, grid):
        tracks = [crossing_track(f"E{i}") for i in range(8)]
        density = density_grid(tracks, grid)
        spots = hotspot_cells(density, z_threshold=1.5)
        assert spots
        # The 3×3 neighbourhood statistic flags the corridor row and its
        # immediate neighbours, nothing farther.
        assert all(abs(iy - 5) <= 1 for __, iy, __z in spots)
        assert any(iy == 5 for __, iy, __z in spots)

    def test_sorted_by_z(self, grid):
        tracks = [crossing_track(f"E{i}") for i in range(8)]
        density = density_grid(tracks, grid)
        spots = hotspot_cells(density, z_threshold=0.5)
        zs = [z for __, __i, z in spots]
        assert zs == sorted(zs, reverse=True)

    def test_uniform_density_no_hotspots(self):
        density = np.ones((8, 8))
        assert hotspot_cells(density, z_threshold=2.0) == []


class TestHotPaths:
    def test_shared_corridor_found(self, grid):
        tracks = [crossing_track(f"E{i}") for i in range(5)]
        paths = hot_paths(tracks, grid, min_support=3)
        assert paths
        best_path, support = paths[0]
        assert support == 5
        assert len(best_path) >= 2

    def test_min_support_respected(self, grid):
        tracks = [crossing_track("only")]
        assert hot_paths(tracks, grid, min_support=2) == []

    def test_loops_by_one_entity_not_hot(self, grid):
        # The same vessel going back and forth is support 1, not 10.
        lons = list(np.linspace(24.05, 24.95, 30)) * 3
        track = Trajectory(
            "L", [10.0 * i for i in range(90)], lons, [37.55] * 90
        )
        assert hot_paths([track], grid, min_support=2) == []

    def test_subsumed_paths_removed(self, grid):
        tracks = [crossing_track(f"E{i}") for i in range(4)]
        paths = hot_paths(tracks, grid, min_support=4, max_length=5)
        # No kept path may be a contiguous subsequence of another kept
        # path with at least its support.
        for i, (path_a, support_a) in enumerate(paths):
            for j, (path_b, support_b) in enumerate(paths):
                if i == j:
                    continue
                if support_a <= support_b and len(path_a) < len(path_b):
                    as_str = ",".join(map(str, path_a))
                    in_str = ",".join(map(str, path_b))
                    assert as_str not in in_str

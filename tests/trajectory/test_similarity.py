"""Similarity measures: identities, symmetry, discrimination."""

import pytest

from repro.geo.geodesy import destination_point
from repro.model.trajectory import Trajectory
from repro.trajectory.similarity import (
    dtw_distance_m,
    edr_distance,
    euclidean_resampled_m,
    frechet_distance_m,
    hausdorff_distance_m,
    lcss_similarity,
)


def track(entity="A", lat=37.0, n=20, lon0=24.0, step=0.005, dt=60.0):
    return Trajectory(
        entity, [dt * i for i in range(n)], [lon0 + step * i for i in range(n)], [lat] * n
    )


def shifted_track(offset_m, entity="B", n=20):
    base = track(entity=entity, n=n)
    lons, lats = [], []
    for i in range(n):
        lon, lat = destination_point(float(base.lon[i]), float(base.lat[i]), 0.0, offset_m)
        lons.append(lon)
        lats.append(lat)
    return Trajectory(entity, base.t, lons, lats)


@pytest.fixture()
def a():
    return track()


@pytest.fixture()
def b():
    return shifted_track(1000.0)


class TestIdentity:
    def test_dtw_self_zero(self, a):
        assert dtw_distance_m(a, a) == pytest.approx(0.0, abs=1e-6)

    def test_frechet_self_zero(self, a):
        assert frechet_distance_m(a, a) == pytest.approx(0.0, abs=1e-6)

    def test_lcss_self_one(self, a):
        assert lcss_similarity(a, a, eps_m=10.0) == 1.0

    def test_edr_self_zero(self, a):
        assert edr_distance(a, a, eps_m=10.0) == 0.0

    def test_euclidean_self_zero(self, a):
        assert euclidean_resampled_m(a, a) == pytest.approx(0.0, abs=1e-6)


class TestSymmetry:
    def test_all_measures_symmetric(self, a, b):
        assert dtw_distance_m(a, b) == pytest.approx(dtw_distance_m(b, a), rel=1e-9)
        assert frechet_distance_m(a, b) == pytest.approx(frechet_distance_m(b, a), rel=1e-9)
        assert lcss_similarity(a, b) == pytest.approx(lcss_similarity(b, a), rel=1e-9)
        assert edr_distance(a, b) == pytest.approx(edr_distance(b, a), rel=1e-9)


class TestDiscrimination:
    def test_frechet_equals_offset_for_parallel_tracks(self, a, b):
        assert frechet_distance_m(a, b) == pytest.approx(1000.0, rel=0.02)

    def test_dtw_scales_with_offset(self, a):
        near = shifted_track(500.0)
        far = shifted_track(5000.0)
        assert dtw_distance_m(a, far) > dtw_distance_m(a, near) * 3

    def test_lcss_tolerance_behaviour(self, a, b):
        assert lcss_similarity(a, b, eps_m=2000.0) == 1.0
        assert lcss_similarity(a, b, eps_m=100.0) == 0.0

    def test_edr_between_zero_and_one(self, a):
        far = shifted_track(50_000.0)
        assert edr_distance(a, far, eps_m=500.0) == 1.0

    def test_euclidean_offset(self, a, b):
        assert euclidean_resampled_m(a, b) == pytest.approx(1000.0, rel=0.02)


class TestHausdorff:
    def test_self_zero(self, a):
        assert hausdorff_distance_m(a, a) == pytest.approx(0.0, abs=1e-6)

    def test_symmetric(self, a, b):
        assert hausdorff_distance_m(a, b) == pytest.approx(
            hausdorff_distance_m(b, a), rel=1e-9
        )

    def test_parallel_offset(self, a, b):
        assert hausdorff_distance_m(a, b) == pytest.approx(1000.0, rel=0.02)

    def test_direction_insensitive_unlike_frechet(self, a):
        reversed_track = Trajectory(
            "R", a.t, list(a.lon[::-1]), list(a.lat[::-1])
        )
        assert hausdorff_distance_m(a, reversed_track) == pytest.approx(0.0, abs=1.0)
        assert frechet_distance_m(a, reversed_track) > 1000.0

    def test_at_least_frechet_lower_bound(self, a, b):
        # Hausdorff never exceeds discrete Fréchet.
        assert hausdorff_distance_m(a, b) <= frechet_distance_m(a, b) + 1e-6


class TestLengthsAndRobustness:
    def test_different_lengths_accepted(self, a):
        short = track(n=7)
        assert dtw_distance_m(a, short) >= 0.0
        assert frechet_distance_m(a, short) >= 0.0
        assert 0.0 <= lcss_similarity(a, short) <= 1.0

    def test_lcss_robust_to_outlier(self):
        base = track(n=20)
        # One wild outlier sample in the middle.
        lons = list(base.lon)
        lats = list(base.lat)
        lats[10] = 39.0
        noisy = Trajectory("N", base.t, lons, lats)
        assert lcss_similarity(base, noisy, eps_m=500.0) >= 0.9
        # Fréchet, by contrast, is destroyed by the same outlier.
        assert frechet_distance_m(base, noisy) > 100_000.0

    def test_dtw_band_constrains(self, a):
        far = shifted_track(2000.0)
        unbanded = dtw_distance_m(a, far)
        banded = dtw_distance_m(a, far, band=3)
        assert banded >= unbanded * 0.99  # band can only restrict warping

    def test_empty_rejected(self, a):
        empty = Trajectory("E", [], [], [])
        with pytest.raises(ValueError):
            dtw_distance_m(a, empty)

    def test_euclidean_needs_two_samples(self, a):
        with pytest.raises(ValueError):
            euclidean_resampled_m(a, a, n_samples=1)

    def test_single_point_trajectory(self, a):
        dot = Trajectory("D", [0.0], [24.0], [37.0])
        assert euclidean_resampled_m(a, dot) > 0.0

"""Route clustering."""

import numpy as np
import pytest

from repro.model.trajectory import Trajectory
from repro.trajectory.clustering import KMedoids, agglomerative_clusters, distance_matrix


def track(entity, lat, n=10):
    return Trajectory(
        entity, [60.0 * i for i in range(n)], [24.0 + 0.01 * i for i in range(n)], [lat] * n
    )


@pytest.fixture()
def two_routes():
    """Six trajectories: three near lat 37, three near lat 39."""
    return [
        track("a1", 37.00), track("a2", 37.01), track("a3", 37.02),
        track("b1", 39.00), track("b2", 39.01), track("b3", 39.02),
    ]


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self, two_routes):
        matrix = distance_matrix(two_routes)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_cross_group_larger(self, two_routes):
        matrix = distance_matrix(two_routes)
        within = matrix[0, 1]
        across = matrix[0, 3]
        assert across > within * 10


class TestKMedoids:
    def test_separates_groups(self, two_routes):
        matrix = distance_matrix(two_routes)
        model = KMedoids(k=2, seed=3).fit(matrix)
        labels = model.labels
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[3]

    def test_medoids_are_members(self, two_routes):
        matrix = distance_matrix(two_routes)
        model = KMedoids(k=2, seed=3).fit(matrix)
        for cluster, medoid in enumerate(model.medoids):
            assert medoid in model.cluster_members(cluster)

    def test_inertia_decreases_with_k(self, two_routes):
        matrix = distance_matrix(two_routes)
        inertia_1 = KMedoids(k=1, seed=0).fit(matrix).inertia
        inertia_3 = KMedoids(k=3, seed=0).fit(matrix).inertia
        assert inertia_3 <= inertia_1

    def test_k_equals_n_zero_inertia(self, two_routes):
        matrix = distance_matrix(two_routes)
        model = KMedoids(k=len(two_routes), seed=0).fit(matrix)
        assert model.inertia == pytest.approx(0.0, abs=1e-9)

    def test_invalid_k(self, two_routes):
        matrix = distance_matrix(two_routes)
        with pytest.raises(ValueError):
            KMedoids(k=0).fit(matrix)
        with pytest.raises(ValueError):
            KMedoids(k=10).fit(matrix)

    def test_unfit_access_raises(self):
        with pytest.raises(RuntimeError):
            KMedoids(k=2).cluster_members(0)


class TestAgglomerative:
    def test_threshold_splits_groups(self, two_routes):
        matrix = distance_matrix(two_routes)
        labels = agglomerative_clusters(matrix, threshold=50_000.0)
        assert len(set(labels)) == 2
        assert len(set(labels[:3])) == 1

    def test_huge_threshold_single_cluster(self, two_routes):
        matrix = distance_matrix(two_routes)
        labels = agglomerative_clusters(matrix, threshold=1e9)
        assert len(set(labels)) == 1

    def test_tiny_threshold_all_singletons(self, two_routes):
        matrix = distance_matrix(two_routes)
        labels = agglomerative_clusters(matrix, threshold=0.001)
        assert len(set(labels)) == len(two_routes)

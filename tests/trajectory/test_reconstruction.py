"""Trajectory reconstruction from noisy/unordered report streams."""

import numpy as np
import pytest

from repro.model.reports import PositionReport
from repro.streams.records import Record
from repro.trajectory.reconstruction import (
    ReconstructionConfig,
    TrajectoryReconstructor,
    reconstruct_all,
)


def report(entity="V1", t=0.0, lon=24.0, lat=37.0):
    return PositionReport(entity_id=entity, t=t, lon=lon, lat=lat)


def walk(entity="V1", n=20, t0=0.0, dt=10.0, lon0=24.0, step=0.001):
    return [report(entity, t0 + i * dt, lon0 + i * step) for i in range(n)]


class TestBatchReconstruction:
    def test_orders_out_of_order_input(self):
        reports = walk()
        shuffled = [reports[i] for i in (3, 0, 5, 1, 4, 2)] + reports[6:]
        (trajectory,) = TrajectoryReconstructor().reconstruct(shuffled)
        assert list(trajectory.t) == sorted(trajectory.t)
        assert len(trajectory) == len(reports)

    def test_duplicate_timestamps_dropped(self):
        reports = walk(n=5)
        doubled = reports + [reports[2]]
        (trajectory,) = TrajectoryReconstructor().reconstruct(doubled)
        assert len(trajectory) == 5

    def test_teleport_rejected(self):
        reports = walk(n=10)
        reports.insert(5, report(t=45.0, lon=28.0))  # impossible jump
        config = ReconstructionConfig(max_speed_mps=50.0)
        (trajectory,) = TrajectoryReconstructor(config).reconstruct(reports)
        assert len(trajectory) == 10
        assert float(trajectory.lon.max()) < 25.0

    def test_gap_splits_segments(self):
        early = walk(n=5)
        late = walk(n=5, t0=10_000.0, lon0=24.5)
        segments = TrajectoryReconstructor(
            ReconstructionConfig(max_gap_s=600.0)
        ).reconstruct(early + late)
        assert len(segments) == 2
        assert segments[0].end_time < segments[1].start_time

    def test_short_segments_discarded(self):
        lonely = [report(t=0.0)] + walk(n=5, t0=10_000.0)
        segments = TrajectoryReconstructor(
            ReconstructionConfig(max_gap_s=600.0, min_segment_points=2)
        ).reconstruct(lonely)
        assert len(segments) == 1
        assert len(segments[0]) == 5

    def test_mixed_entities_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryReconstructor().reconstruct([report("A"), report("B", t=1.0)])

    def test_empty_input(self):
        assert TrajectoryReconstructor().reconstruct([]) == []

    def test_smoothing_reduces_noise(self):
        rng = np.random.default_rng(4)
        noisy = [
            report(t=10.0 * i, lon=24.0 + 0.001 * i, lat=37.0 + float(rng.normal(0, 0.0002)))
            for i in range(60)
        ]
        rough = TrajectoryReconstructor().reconstruct(noisy)[0]
        smooth = TrajectoryReconstructor(
            ReconstructionConfig(smooth_window=3)
        ).reconstruct(noisy)[0]
        assert float(np.std(np.diff(smooth.lat))) < float(np.std(np.diff(rough.lat)))

    def test_3d_preserved(self):
        reports = [
            PositionReport(entity_id="F1", t=10.0 * i, lon=24.0 + 0.001 * i,
                           lat=37.0, alt=1000.0 + 50.0 * i)
            for i in range(10)
        ]
        (trajectory,) = TrajectoryReconstructor().reconstruct(reports)
        assert trajectory.is_3d
        assert float(trajectory.alt[-1]) == pytest.approx(1450.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReconstructionConfig(max_gap_s=0.0)
        with pytest.raises(ValueError):
            ReconstructionConfig(min_segment_points=0)


class TestReconstructAll:
    def test_groups_by_entity(self, maritime_sample):
        result = reconstruct_all(maritime_sample.reports)
        assert set(result) == set(maritime_sample.truth)
        for segments in result.values():
            assert len(segments) >= 1

    def test_reconstruction_close_to_truth(self, maritime_sample):
        from repro.geo.geodesy import haversine_m

        result = reconstruct_all(maritime_sample.reports)
        for entity_id, segments in result.items():
            truth = maritime_sample.truth[entity_id]
            rebuilt = segments[0]
            mid_t = (rebuilt.start_time + rebuilt.end_time) / 2.0
            a = rebuilt.at_time(mid_t)
            b = truth.at_time(mid_t)
            assert haversine_m(a.lon, a.lat, b.lon, b.lat) < 200.0


class TestStreamingOperator:
    def test_segments_emitted_on_gap_and_flush(self):
        operator = TrajectoryReconstructor(
            ReconstructionConfig(max_gap_s=300.0)
        ).operator()
        emitted = []
        for r in walk(n=5) + walk(n=5, t0=5_000.0, lon0=24.5):
            for out in operator.process(Record(event_time=r.t, value=r)):
                emitted.append(out.value)
        for out in operator.on_end():
            emitted.append(out.value)
        assert len(emitted) == 2
        assert emitted[0].end_time < emitted[1].start_time

    def test_per_entity_isolation(self):
        operator = TrajectoryReconstructor().operator()
        for r in walk("A", n=3) + walk("B", n=4):
            list(operator.process(Record(event_time=r.t, value=r)))
        segments = [out.value for out in operator.on_end()]
        by_entity = {s.entity_id: len(s) for s in segments}
        assert by_entity == {"A": 3, "B": 4}

"""Semantic trajectories: episode structure and annotations."""

import pytest

from repro.geo.polygon import Polygon
from repro.trajectory.semantic import (
    EpisodeType,
    build_semantic_trajectory,
)
from tests.trajectory.test_stay_points import track_with_stop


class TestEpisodeStructure:
    def test_move_stop_move(self):
        track = track_with_stop()
        semantic = build_semantic_trajectory(
            track, stay_radius_m=400.0, stay_min_duration_s=900.0
        )
        kinds = [e.kind for e in semantic.episodes]
        assert kinds == [EpisodeType.MOVE, EpisodeType.STOP, EpisodeType.MOVE]

    def test_episodes_cover_track_in_order(self):
        track = track_with_stop()
        semantic = build_semantic_trajectory(
            track, stay_radius_m=400.0, stay_min_duration_s=900.0
        )
        for earlier, later in zip(semantic.episodes, semantic.episodes[1:]):
            assert earlier.t_end <= later.t_start + 1e-6
        assert semantic.episodes[0].t_start == track.start_time
        assert semantic.episodes[-1].t_end == track.end_time

    def test_moving_track_single_move(self):
        from repro.model.trajectory import Trajectory

        track = Trajectory(
            "M", [10.0 * i for i in range(100)],
            [24.0 + 0.001 * i for i in range(100)], [37.0] * 100,
        )
        semantic = build_semantic_trajectory(track)
        assert len(semantic.episodes) == 1
        assert semantic.episodes[0].kind is EpisodeType.MOVE

    def test_accessors(self):
        track = track_with_stop()
        semantic = build_semantic_trajectory(
            track, stay_radius_m=400.0, stay_min_duration_s=900.0
        )
        assert len(semantic.stops()) == 1
        assert len(semantic.moves()) == 2


class TestAnnotations:
    def test_move_tags(self):
        track = track_with_stop()
        semantic = build_semantic_trajectory(
            track, stay_radius_m=400.0, stay_min_duration_s=900.0
        )
        move = semantic.moves()[0]
        assert any(tag == "heading=E" for tag in move.tags)
        speed_tag = next(tag for tag in move.tags if tag.startswith("mean_speed="))
        assert float(speed_tag.split("=")[1]) == pytest.approx(8.0, rel=0.1)

    def test_stop_zone_annotation(self):
        track = track_with_stop()
        (stay,) = build_semantic_trajectory(
            track, stay_radius_m=400.0, stay_min_duration_s=900.0
        ).stops(),
        stay = stay[0]
        zone = Polygon(
            "anchorage",
            (
                (stay.lon - 0.05, stay.lat - 0.05),
                (stay.lon + 0.05, stay.lat - 0.05),
                (stay.lon + 0.05, stay.lat + 0.05),
                (stay.lon - 0.05, stay.lat + 0.05),
            ),
        )
        semantic = build_semantic_trajectory(
            track, zones=[zone], stay_radius_m=400.0, stay_min_duration_s=900.0
        )
        assert "zone:anchorage" in semantic.stops()[0].tags

    def test_describe_renders_every_episode(self):
        track = track_with_stop()
        semantic = build_semantic_trajectory(
            track, stay_radius_m=400.0, stay_min_duration_s=900.0
        )
        text = semantic.describe()
        assert text.count("\n") == len(semantic.episodes)
        assert "stop" in text and "move" in text

"""Route-deviation anomaly detection."""

import pytest

from repro.model.trajectory import Trajectory
from repro.sources.kinematics import simulate_route
from repro.sources.world import RouteSpec
from repro.trajectory.anomaly import RouteAnomalyModel

LANES = [
    RouteSpec("L1", ((24.0, 37.0), (24.8, 37.0)), speed_mps=9.0),
    RouteSpec("L2", ((24.0, 37.8), (24.8, 37.8)), speed_mps=9.0),
]


@pytest.fixture(scope="module")
def model():
    history = [
        simulate_route(f"H{i}", LANES[i % 2], dt_s=10.0) for i in range(6)
    ]
    return RouteAnomalyModel(
        history, n_routes=2, off_route_threshold_m=5_000.0, anomaly_fraction=0.3
    )


class TestScoring:
    def test_on_lane_traffic_normal(self, model):
        fresh = simulate_route("N1", LANES[0], dt_s=10.0)
        score = model.score(fresh)
        assert not score.is_anomalous
        assert score.mean_off_route_m < 1_000.0

    def test_off_lane_track_anomalous(self, model):
        # Halfway between the lanes (each ~44 km apart vertically).
        stray = Trajectory(
            "STRAY",
            [60.0 * i for i in range(40)],
            [24.0 + 0.02 * i for i in range(40)],
            [37.4] * 40,
        )
        score = model.score(stray)
        assert score.is_anomalous
        assert score.off_route_fraction > 0.9
        assert score.mean_off_route_m > 5_000.0

    def test_detour_partially_anomalous(self, model):
        # Follows lane 1 but detours south mid-way.
        lons, lats = [], []
        for i in range(60):
            lon = 24.0 + 0.8 * i / 59.0
            lat = 37.0 - (0.3 if 20 <= i <= 40 else 0.0)
            lons.append(lon)
            lats.append(lat)
        detour = Trajectory("D1", [60.0 * i for i in range(60)], lons, lats)
        score = model.score(detour)
        assert 0.1 < score.off_route_fraction < 0.9
        assert score.max_off_route_m > 20_000.0

    def test_score_all_ranked(self, model):
        normal = simulate_route("N2", LANES[1], dt_s=10.0)
        stray = Trajectory(
            "S2", [60.0 * i for i in range(30)],
            [25.5 + 0.01 * i for i in range(30)], [36.0] * 30,
        )
        ranked = model.score_all([normal, stray])
        assert ranked[0].entity_id == "S2"
        assert ranked[0].off_route_fraction >= ranked[1].off_route_fraction

    def test_off_route_distance_helper(self, model):
        on_lane = model.off_route_distance_m(24.4, 37.0)
        off_lane = model.off_route_distance_m(24.4, 36.2)
        assert on_lane < 1_000.0
        assert off_lane > 50_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RouteAnomalyModel([], n_routes=2)
        with pytest.raises(ValueError):
            RouteAnomalyModel(
                [simulate_route("X", LANES[0], dt_s=30.0)], anomaly_fraction=0.0
            )

    def test_empty_trajectory_rejected(self, model):
        with pytest.raises(ValueError):
            model.score(Trajectory("E", [], [], []))

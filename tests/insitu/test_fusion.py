"""Cross-source stream fusion."""

import numpy as np
import pytest

from repro.insitu.fusion import (
    CrossSourceFuser,
    FusionConfig,
    fuse_streams,
    merge_streams,
)
from repro.model.reports import PositionReport, ReportSource


def report(entity="V1", t=0.0, lon=24.0, lat=37.0, source=ReportSource.AIS_TERRESTRIAL):
    return PositionReport(entity_id=entity, t=t, lon=lon, lat=lat, source=source)


class TestMergeStreams:
    def test_global_time_order(self):
        a = [report(t=0.0), report(t=20.0), report(t=40.0)]
        b = [report(t=10.0, source=ReportSource.AIS_SATELLITE),
             report(t=30.0, source=ReportSource.AIS_SATELLITE)]
        merged = list(merge_streams([a, b]))
        assert [r.t for r in merged] == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_unordered_input_rejected(self):
        bad = [report(t=10.0), report(t=5.0)]
        with pytest.raises(ValueError):
            list(merge_streams([bad]))

    def test_empty_streams(self):
        assert list(merge_streams([[], []])) == []


class TestCrossSourceFuser:
    def test_near_duplicate_from_coarser_source_suppressed(self):
        fuser = CrossSourceFuser(FusionConfig(window_s=10.0, radius_m=200.0))
        assert fuser.accept(report(t=0.0, source=ReportSource.AIS_TERRESTRIAL))
        # Satellite echo of the same position 2 s later: redundant.
        assert not fuser.accept(
            report(t=2.0, lon=24.0001, source=ReportSource.AIS_SATELLITE)
        )
        assert fuser.suppressed == 1

    def test_higher_precision_source_always_accepted(self):
        fuser = CrossSourceFuser(FusionConfig(window_s=10.0, radius_m=200.0))
        assert fuser.accept(report(t=0.0, source=ReportSource.AIS_SATELLITE))
        assert fuser.accept(report(t=2.0, source=ReportSource.AIS_TERRESTRIAL))

    def test_same_source_cadence_not_suppressed(self):
        fuser = CrossSourceFuser(FusionConfig(window_s=5.0, radius_m=100.0))
        assert fuser.accept(report(t=0.0))
        assert fuser.accept(report(t=10.0, lon=24.001))  # outside window

    def test_distant_simultaneous_reports_kept(self):
        # Different position at the same instant is information, not echo.
        fuser = CrossSourceFuser(FusionConfig(window_s=10.0, radius_m=100.0))
        assert fuser.accept(report(t=0.0))
        assert fuser.accept(report(t=1.0, lon=24.1, source=ReportSource.AIS_SATELLITE))

    def test_entities_isolated(self):
        fuser = CrossSourceFuser(FusionConfig(window_s=10.0, radius_m=200.0))
        assert fuser.accept(report(entity="A", t=0.0))
        assert fuser.accept(report(entity="B", t=1.0, source=ReportSource.AIS_SATELLITE))

    def test_radar_lowest_precision(self):
        fuser = CrossSourceFuser(FusionConfig(window_s=10.0, radius_m=200.0))
        assert fuser.accept(report(t=0.0, source=ReportSource.AIS_SATELLITE))
        # Radar ranks below satellite: its echo is suppressed.
        assert not fuser.accept(
            report(t=1.0, lon=24.0001, source=ReportSource.RADAR)
        )
        # But a radar report is accepted when nothing fresher exists.
        assert fuser.accept(report(entity="R2", t=0.0, source=ReportSource.RADAR))

    def test_unknown_source_defaults_to_mid_rank(self):
        config = FusionConfig(window_s=10.0, radius_m=200.0, source_rank={})
        fuser = CrossSourceFuser(config)
        assert fuser._rank(ReportSource.RADAR) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FusionConfig(window_s=0.0)


class TestFuseStreams:
    def test_dual_provider_fleet(self, maritime_sample):
        from repro.sources.noise import SensorModel

        rng = np.random.default_rng(5)
        terrestrial = SensorModel(report_period_s=10.0, gps_sigma_m=10.0)
        satellite = SensorModel(report_period_s=30.0, gps_sigma_m=60.0)
        streams = []
        for truth in maritime_sample.truth.values():
            streams.append(
                terrestrial.observe(truth, source=ReportSource.AIS_TERRESTRIAL, rng=rng)
            )
            streams.append(
                satellite.observe(truth, source=ReportSource.AIS_SATELLITE, rng=rng)
            )
        fused, fuser = fuse_streams(streams, FusionConfig(window_s=8.0, radius_m=300.0))
        total = sum(len(s) for s in streams)
        assert fuser.suppressed > 0
        assert len(fused) == total - fuser.suppressed
        times = [r.t for r in fused]
        assert times == sorted(times)

    def test_fused_stream_feeds_pipeline(self, maritime_sample):
        """Fusion output is a valid pipeline input (integration)."""
        from repro.core.pipeline import MobilityPipeline
        from repro.sources.noise import SensorModel

        rng = np.random.default_rng(6)
        satellite = SensorModel(report_period_s=30.0, gps_sigma_m=60.0)
        truth = next(iter(maritime_sample.truth.values()))
        streams = [
            [r for r in maritime_sample.reports if r.entity_id == truth.entity_id],
            satellite.observe(truth, source=ReportSource.AIS_SATELLITE, rng=rng),
        ]
        fused, __ = fuse_streams(streams)
        pipeline = MobilityPipeline(bbox=maritime_sample.world.bbox)
        result = pipeline.run(fused)
        assert result.reports_clean > 0

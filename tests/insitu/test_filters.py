"""In-situ cleaning filters."""

import pytest

from repro.insitu.filters import DeduplicateFilter, PlausibilityFilter, clean_reports
from repro.model.entities import EntityRegistry, Vessel
from repro.model.reports import PositionReport


def report(entity="V1", t=0.0, lon=24.0, lat=37.0, speed=None):
    return PositionReport(entity_id=entity, t=t, lon=lon, lat=lat, speed=speed)


class TestPlausibilityFilter:
    def test_accepts_normal_motion(self):
        flt = PlausibilityFilter()
        assert flt.accept(report(t=0.0))
        assert flt.accept(report(t=10.0, lon=24.001))  # ~9 m/s

    def test_rejects_teleport(self):
        flt = PlausibilityFilter(default_max_speed_mps=20.0)
        assert flt.accept(report(t=0.0))
        # 1 degree (~89 km) in 10 s is far beyond 20 m/s.
        assert not flt.accept(report(t=10.0, lon=25.0))
        assert flt.rejected == 1

    def test_rejects_backwards_time(self):
        flt = PlausibilityFilter()
        assert flt.accept(report(t=100.0))
        assert not flt.accept(report(t=50.0))

    def test_rejects_reported_overspeed(self):
        registry = EntityRegistry()
        registry.add(Vessel("V1", "x", max_speed_mps=10.0))
        flt = PlausibilityFilter(registry=registry, tolerance=1.5)
        assert not flt.accept(report(speed=16.0))
        assert flt.accept(report(speed=14.0))

    def test_registry_ceiling_used_for_implied_speed(self):
        registry = EntityRegistry()
        registry.add(Vessel("V1", "x", max_speed_mps=5.0))
        flt = PlausibilityFilter(registry=registry)
        assert flt.accept(report(t=0.0))
        # ~9 m/s implied beats a 5 m/s vessel even with 1.5 tolerance.
        assert not flt.accept(report(t=10.0, lon=24.001))

    def test_entities_isolated(self):
        flt = PlausibilityFilter(default_max_speed_mps=20.0)
        assert flt.accept(report(entity="A", t=0.0, lon=24.0))
        assert flt.accept(report(entity="B", t=1.0, lon=25.0))

    def test_rejection_does_not_pollute_state(self):
        flt = PlausibilityFilter(default_max_speed_mps=20.0)
        assert flt.accept(report(t=0.0))
        assert not flt.accept(report(t=10.0, lon=25.0))  # teleport rejected
        # Next report consistent with the *accepted* state passes.
        assert flt.accept(report(t=20.0, lon=24.002))

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            PlausibilityFilter(tolerance=0.5)


class TestDeduplicateFilter:
    def test_drops_exact_duplicate(self):
        flt = DeduplicateFilter()
        assert flt.accept(report(t=0.0))
        assert not flt.accept(report(t=0.0))
        assert flt.dropped == 1

    def test_different_positions_kept(self):
        flt = DeduplicateFilter()
        assert flt.accept(report(t=0.0, lon=24.0))
        assert flt.accept(report(t=0.0, lon=24.1))

    def test_memory_bound(self):
        flt = DeduplicateFilter(memory=2)
        for i in range(5):
            assert flt.accept(report(t=float(i)))
        # t=0 fell out of the memory window: duplicate passes (bounded state).
        assert flt.accept(report(t=0.0))


class TestCleanReports:
    def test_pipeline_composition(self):
        reports = [
            report(t=0.0),
            report(t=0.0),           # duplicate
            report(t=10.0, lon=24.001),
            report(t=20.0, lon=25.0),  # teleport
        ]
        cleaned = clean_reports(reports)
        assert len(cleaned) == 2

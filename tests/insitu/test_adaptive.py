"""Adaptive synopses: the keep-rate controller."""

import numpy as np
import pytest

from repro.insitu.adaptive import AdaptiveConfig, AdaptiveSynopsesGenerator
from repro.insitu.synopses import SynopsesConfig
from repro.model.reports import PositionReport


def noisy_walk(n=3000, sigma_deg=0.0003, seed=0, entity="V1"):
    """A jittery eastbound track: lots of DR-threshold triggers."""
    rng = np.random.default_rng(seed)
    reports = []
    for i in range(n):
        reports.append(
            PositionReport(
                entity_id=entity,
                t=10.0 * i,
                lon=24.0 + 0.0005 * i + float(rng.normal(0, sigma_deg)),
                lat=37.0 + float(rng.normal(0, sigma_deg)),
                speed=4.5,
                heading=90.0,
            )
        )
    return reports


class TestController:
    def test_converges_to_target(self):
        target = 0.10
        generator = AdaptiveSynopsesGenerator(
            base=SynopsesConfig(dr_error_threshold_m=120.0, max_silence_s=1e9),
            adaptive=AdaptiveConfig(target_keep_rate=target, adjust_every=200),
        )
        reports = noisy_walk()
        kept_tail = 0
        for i, report in enumerate(reports):
            __, keep = generator.process(report)
            if i >= len(reports) // 2 and keep:
                kept_tail += 1
        tail_rate = kept_tail / (len(reports) // 2)
        assert tail_rate == pytest.approx(target, abs=0.06)

    def test_threshold_moves_in_right_direction(self):
        # Target far below what the base threshold achieves → threshold rises.
        generator = AdaptiveSynopsesGenerator(
            base=SynopsesConfig(dr_error_threshold_m=20.0, max_silence_s=1e9),
            adaptive=AdaptiveConfig(target_keep_rate=0.02, adjust_every=100),
        )
        for report in noisy_walk(n=1000):
            generator.process(report)
        assert generator.current_threshold_m > 20.0

    def test_threshold_clamped(self):
        config = AdaptiveConfig(
            target_keep_rate=0.001, adjust_every=50,
            min_threshold_m=10.0, max_threshold_m=200.0,
        )
        generator = AdaptiveSynopsesGenerator(
            base=SynopsesConfig(dr_error_threshold_m=100.0, max_silence_s=1e9),
            adaptive=config,
        )
        for report in noisy_walk(n=2000):
            generator.process(report)
        assert all(10.0 <= t <= 200.0 for t in generator.threshold_history)

    def test_history_recorded(self):
        generator = AdaptiveSynopsesGenerator(
            adaptive=AdaptiveConfig(target_keep_rate=0.1, adjust_every=100)
        )
        for report in noisy_walk(n=500):
            generator.process(report)
        assert len(generator.threshold_history) == 1 + 500 // 100

    def test_finish_all_passthrough(self):
        generator = AdaptiveSynopsesGenerator()
        for report in noisy_walk(n=50):
            generator.process(report)
        finals = generator.finish_all()
        assert len(finals) <= 1  # one entity

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(target_keep_rate=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(adjust_every=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(min_threshold_m=100.0, max_threshold_m=50.0)

    def test_counters_match_inner(self):
        generator = AdaptiveSynopsesGenerator()
        reports = noisy_walk(n=300)
        kept = sum(1 for r in reports if generator.process(r)[1])
        assert generator.seen == 300
        assert generator.kept == kept
        assert generator.compression_ratio == pytest.approx(1.0 - kept / 300)

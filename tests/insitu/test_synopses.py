"""Synopses generator: compression with bounded reconstruction error."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.insitu.quality import evaluate_compression, reconstruction_errors_m
from repro.insitu.synopses import SynopsesConfig, SynopsesGenerator, SynopsesOperator, compress_trajectory
from repro.model.reports import PositionReport
from repro.model.trajectory import Trajectory
from repro.sources.kinematics import simulate_route
from repro.sources.world import RouteSpec
from repro.streams.records import Record


def straight_trajectory(n=200, speed_deg=0.0005):
    return Trajectory(
        "V1",
        [10.0 * i for i in range(n)],
        [24.0 + speed_deg * i for i in range(n)],
        [37.0] * n,
    )


class TestDecisionRule:
    def test_first_report_kept(self):
        gen = SynopsesGenerator()
        __, keep = gen.process(
            PositionReport(entity_id="V1", t=0.0, lon=24.0, lat=37.0, speed=5.0, heading=90.0)
        )
        assert keep

    def test_straight_line_compresses_hard(self):
        compressed, ratio = compress_trajectory(straight_trajectory())
        assert ratio > 0.9
        assert len(compressed) >= 2

    def test_max_silence_forces_keep(self):
        config = SynopsesConfig(dr_error_threshold_m=1e9, max_silence_s=100.0)
        compressed, __ = compress_trajectory(straight_trajectory(), config)
        dts = np.diff(compressed.t)
        assert np.all(dts <= 100.0 + 10.0)

    def test_compression_ratio_counter(self):
        gen = SynopsesGenerator()
        assert gen.compression_ratio == 0.0
        trajectory = straight_trajectory(50)
        compress = compress_trajectory  # silence linters; direct use below
        __, ratio = compress(trajectory)
        assert 0.0 <= ratio <= 1.0

    def test_reset(self):
        gen = SynopsesGenerator()
        gen.process(PositionReport(entity_id="V1", t=0.0, lon=24.0, lat=37.0))
        gen.reset()
        assert gen.seen == 0 and gen.kept == 0


class TestErrorBound:
    @pytest.mark.parametrize("threshold", [50.0, 100.0, 200.0])
    def test_reconstruction_error_bounded(self, threshold):
        # On a turning route the synopsis must stay within a small factor
        # of the dead-reckoning threshold (interpolation between kept
        # points is at most ~2x the per-point bound plus noise).
        route = RouteSpec(
            "dogleg",
            ((24.0, 37.0), (24.3, 37.0), (24.3, 37.3), (24.6, 37.3)),
            speed_mps=9.0,
        )
        truth = simulate_route("V1", route, dt_s=10.0)
        config = SynopsesConfig(dr_error_threshold_m=threshold)
        compressed, ratio = compress_trajectory(truth, config)
        errors = reconstruction_errors_m(truth, compressed)
        assert float(errors.max()) < threshold * 3.0
        assert ratio > 0.5

    def test_smaller_threshold_keeps_more_under_noise(self):
        # The DR threshold bites when measurements wander; on noise-free
        # geometry critical points dominate and the counts barely move.
        import numpy as np

        from repro.sources.noise import SensorModel

        route = RouteSpec(
            "dogleg", ((24.0, 37.0), (24.3, 37.0), (24.3, 37.3)), speed_mps=9.0
        )
        truth = simulate_route("V1", route, dt_s=10.0)
        sensor = SensorModel(report_period_s=10.0, gps_sigma_m=40.0, dropout_prob=0.0)
        reports = sensor.observe(truth, rng=np.random.default_rng(8))
        tight, __ = compress_trajectory(
            truth, SynopsesConfig(dr_error_threshold_m=30.0), reports=reports
        )
        loose, __ = compress_trajectory(
            truth, SynopsesConfig(dr_error_threshold_m=500.0), reports=reports
        )
        assert len(tight) > len(loose)

    @given(threshold=st.floats(30.0, 500.0))
    @settings(max_examples=20, deadline=None)
    def test_quality_monotone_with_threshold(self, threshold):
        truth = straight_trajectory(100)
        compressed, __ = compress_trajectory(
            truth, SynopsesConfig(dr_error_threshold_m=threshold)
        )
        quality = evaluate_compression(truth, compressed)
        # On a straight line the bound is essentially exact.
        assert quality.max_error_m <= threshold * 2.0 + 1.0


class TestQualityMetrics:
    def test_identity_compression_zero_error(self):
        truth = straight_trajectory(50)
        quality = evaluate_compression(truth, truth)
        assert quality.rmse_m == pytest.approx(0.0, abs=1e-6)
        assert quality.compression_ratio == 0.0
        assert quality.length_error_ratio == pytest.approx(0.0, abs=1e-9)

    def test_endpoint_only_compression(self):
        truth = straight_trajectory(50)
        endpoints = truth.slice_index(0, 1).append(
            truth.slice_index(len(truth) - 1, len(truth))
        )
        quality = evaluate_compression(truth, endpoints)
        assert quality.compression_ratio == pytest.approx(0.96, abs=0.01)
        # Straight line: even 2 points reconstruct well.
        assert quality.rmse_m < 50.0

    def test_heading_fidelity_on_dogleg(self):
        route = RouteSpec(
            "dogleg", ((24.0, 37.0), (24.3, 37.0), (24.3, 37.3)), speed_mps=9.0
        )
        truth = simulate_route("V1", route, dt_s=10.0)
        compressed, __ = compress_trajectory(
            truth, SynopsesConfig(dr_error_threshold_m=100.0)
        )
        quality = evaluate_compression(truth, compressed)
        # The turn is preserved: heading error stays far below the 90°
        # course change the route contains.
        assert 0.0 <= quality.heading_rmse_deg < 30.0

    def test_empty_compressed_rejected(self):
        truth = straight_trajectory(10)
        with pytest.raises(ValueError):
            reconstruction_errors_m(truth, Trajectory("V1", [], [], []))


class TestStreamingOperator:
    def test_operator_emits_only_kept(self):
        operator = SynopsesOperator(SynopsesConfig(dr_error_threshold_m=100.0))
        truth = straight_trajectory(100)
        emitted = 0
        for i in range(len(truth)):
            point = truth[i]
            record = Record(
                event_time=point.t,
                value=PositionReport(
                    entity_id="V1", t=point.t, lon=point.lon, lat=point.lat,
                    speed=5.5, heading=90.0,
                ),
            )
            emitted += len(list(operator.process(record)))
        assert 0 < emitted < 20

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SynopsesConfig(dr_error_threshold_m=-1.0)
        with pytest.raises(ValueError):
            SynopsesConfig(max_silence_s=0.0)

"""Critical point detection."""

import pytest

from repro.insitu.critical import CriticalPointDetector, CriticalPointType
from repro.model.reports import PositionReport


def report(entity="V1", t=0.0, lon=24.0, lat=37.0, speed=5.0, heading=90.0):
    return PositionReport(
        entity_id=entity, t=t, lon=lon, lat=lat, speed=speed, heading=heading
    )


class TestTrackStart:
    def test_first_report_is_track_start(self):
        det = CriticalPointDetector()
        annotated = det.process(report())
        assert CriticalPointType.TRACK_START in annotated.critical

    def test_second_report_not_track_start(self):
        det = CriticalPointDetector()
        det.process(report(t=0.0))
        annotated = det.process(report(t=10.0, lon=24.001))
        assert CriticalPointType.TRACK_START not in annotated.critical


class TestStops:
    def test_stop_start_and_end(self):
        det = CriticalPointDetector(stop_speed_mps=1.0)
        det.process(report(t=0.0, speed=5.0))
        stopping = det.process(report(t=10.0, speed=0.2))
        assert CriticalPointType.STOP_START in stopping.critical
        still = det.process(report(t=20.0, speed=0.1))
        assert CriticalPointType.STOP_START not in still.critical
        moving = det.process(report(t=30.0, speed=4.0))
        assert CriticalPointType.STOP_END in moving.critical

    def test_speed_derived_when_missing(self):
        det = CriticalPointDetector(stop_speed_mps=1.0)
        det.process(report(t=0.0, speed=None, heading=None))
        # Same position => derived speed 0 => stop.
        annotated = det.process(report(t=10.0, speed=None, heading=None))
        assert CriticalPointType.STOP_START in annotated.critical


class TestTurns:
    def test_turn_detected(self):
        det = CriticalPointDetector(turn_threshold_deg=15.0)
        det.process(report(t=0.0, heading=90.0))
        det.process(report(t=10.0, lon=24.001, heading=92.0))
        turned = det.process(report(t=20.0, lon=24.002, heading=120.0))
        assert CriticalPointType.TURN in turned.critical

    def test_gradual_drift_below_threshold(self):
        det = CriticalPointDetector(turn_threshold_deg=15.0)
        det.process(report(t=0.0, heading=90.0))
        for i in range(1, 5):
            annotated = det.process(
                report(t=10.0 * i, lon=24.0 + 0.001 * i, heading=90.0 + 2.0 * i)
            )
            assert CriticalPointType.TURN not in annotated.critical

    def test_no_turn_while_stopped(self):
        det = CriticalPointDetector(turn_threshold_deg=10.0, stop_speed_mps=1.0)
        det.process(report(t=0.0, speed=0.1, heading=0.0))
        annotated = det.process(report(t=10.0, speed=0.1, heading=170.0))
        assert CriticalPointType.TURN not in annotated.critical


class TestSpeedChange:
    def test_speed_change_detected(self):
        det = CriticalPointDetector(speed_change_ratio=0.25)
        det.process(report(t=0.0, speed=8.0))
        changed = det.process(report(t=10.0, lon=24.001, speed=5.0))
        assert CriticalPointType.SPEED_CHANGE in changed.critical

    def test_small_change_ignored(self):
        det = CriticalPointDetector(speed_change_ratio=0.25)
        det.process(report(t=0.0, speed=8.0))
        same = det.process(report(t=10.0, lon=24.001, speed=7.5))
        assert CriticalPointType.SPEED_CHANGE not in same.critical

    def test_reference_updates_after_event(self):
        det = CriticalPointDetector(speed_change_ratio=0.25)
        det.process(report(t=0.0, speed=8.0))
        det.process(report(t=10.0, lon=24.001, speed=5.0))  # event; ref=5
        again = det.process(report(t=20.0, lon=24.002, speed=5.5))
        assert CriticalPointType.SPEED_CHANGE not in again.critical


class TestGaps:
    def test_gap_end_annotated(self):
        det = CriticalPointDetector(gap_threshold_s=300.0)
        det.process(report(t=0.0))
        after_gap = det.process(report(t=1000.0, lon=24.01))
        assert CriticalPointType.GAP_END in after_gap.critical

    def test_normal_cadence_no_gap(self):
        det = CriticalPointDetector(gap_threshold_s=300.0)
        det.process(report(t=0.0))
        normal = det.process(report(t=10.0, lon=24.001))
        assert CriticalPointType.GAP_END not in normal.critical


class TestAblation:
    def test_disabled_detector_never_fires(self):
        enabled = frozenset(CriticalPointType) - {CriticalPointType.TURN}
        det = CriticalPointDetector(turn_threshold_deg=5.0, enabled=enabled)
        det.process(report(t=0.0, heading=90.0))
        annotated = det.process(report(t=10.0, lon=24.001, heading=180.0))
        assert CriticalPointType.TURN not in annotated.critical

    def test_reset_clears_state(self):
        det = CriticalPointDetector()
        det.process(report(t=0.0))
        det.reset()
        annotated = det.process(report(t=10.0))
        assert CriticalPointType.TRACK_START in annotated.critical

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CriticalPointDetector(speed_change_ratio=1.5)
        with pytest.raises(ValueError):
            CriticalPointDetector(gap_threshold_s=0.0)

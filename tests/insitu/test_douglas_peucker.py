"""Douglas-Peucker batch simplification."""

import pytest

from repro.insitu.douglas_peucker import douglas_peucker
from repro.insitu.quality import reconstruction_errors_m
from repro.model.trajectory import Trajectory
from repro.sources.kinematics import simulate_route
from repro.sources.world import RouteSpec


@pytest.fixture()
def dogleg():
    route = RouteSpec(
        "dogleg", ((24.0, 37.0), (24.3, 37.0), (24.3, 37.3)), speed_mps=9.0
    )
    return simulate_route("V1", route, dt_s=10.0)


class TestDouglasPeucker:
    def test_keeps_endpoints(self, dogleg):
        simplified = douglas_peucker(dogleg, 100.0)
        assert simplified[0] == dogleg[0]
        assert simplified[len(simplified) - 1] == dogleg[len(dogleg) - 1]

    def test_straight_line_collapses_to_two_points(self):
        track = Trajectory(
            "V1", [0, 10, 20, 30], [0.0, 0.001, 0.002, 0.003], [0.0, 0.0, 0.0, 0.0]
        )
        simplified = douglas_peucker(track, 50.0)
        assert len(simplified) == 2

    def test_corner_preserved(self, dogleg):
        simplified = douglas_peucker(dogleg, 200.0)
        # The dogleg corner at (24.3, 37.0) must survive simplification.
        assert simplified.distance_to_point_m(24.3, 37.0) < 1000.0
        assert len(simplified) >= 3

    def test_error_bound_holds(self, dogleg):
        tolerance = 150.0
        simplified = douglas_peucker(dogleg, tolerance)
        errors = reconstruction_errors_m(dogleg, simplified)
        # DP bounds the *spatial* deviation; temporal interpolation adds a
        # modest factor on the time axis.
        assert float(errors.max()) < tolerance * 3.0

    def test_zero_tolerance_keeps_everything_noncollinear(self, dogleg):
        simplified = douglas_peucker(dogleg, 0.0)
        assert len(simplified) >= len(dogleg) * 0.9

    def test_short_input_passthrough(self):
        track = Trajectory("V1", [0, 10], [24.0, 24.1], [37.0, 37.0])
        assert douglas_peucker(track, 10.0) is track

    def test_negative_tolerance_rejected(self, dogleg):
        with pytest.raises(ValueError):
            douglas_peucker(dogleg, -1.0)

    def test_monotone_in_tolerance(self, dogleg):
        fine = douglas_peucker(dogleg, 20.0)
        coarse = douglas_peucker(dogleg, 500.0)
        assert len(coarse) <= len(fine)

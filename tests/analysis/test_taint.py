"""Whole-program taint rules (D4/D5/P2) and call-graph stability."""

import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisConfig
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.classindex import ClassIndex
from repro.analysis.source import parse_module


def _findings(result, rule):
    return [f for f in result.open_findings if f.rule == rule]


class TestD4Transitive:
    TREE = {
        "repro/pkg/__init__.py": "",
        "repro/pkg/helpers.py": (
            "import time\n"
            "\n"
            "def inner():\n"
            "    return time.time()\n"
            "\n"
            "def outer():\n"
            "    return inner()\n"
        ),
        "repro/pkg/engine.py": (
            "from repro.pkg.helpers import outer\n"
            "\n"
            "def entry():\n"
            "    return outer()\n"
        ),
    }

    def test_transitive_clock_read_reported_with_chain(self, lint):
        result = lint(dict(self.TREE))
        d4 = _findings(result, "D4")
        assert len(d4) == 1
        finding = d4[0]
        assert finding.path == "repro/pkg/helpers.py"
        assert "outer → inner" in finding.message
        assert "time.time" in finding.message

    def test_no_avalanche_up_the_chain(self, lint):
        # entry() calls outer(); outer() already carries the finding, so
        # entry() must not repeat it once per frame above the source.
        result = lint(dict(self.TREE))
        assert not any(
            f.rule == "D4" and f.path == "repro/pkg/engine.py"
            for f in result.open_findings
        )

    def test_env_read_reported_at_depth_zero(self, lint):
        result = lint(
            {
                "repro/pkg/cfg.py": (
                    "import os\n"
                    "\n"
                    "def read_mode():\n"
                    '    return os.environ.get("MODE", "off")\n'
                )
            }
        )
        d4 = _findings(result, "D4")
        assert len(d4) == 1
        assert d4[0].detail == "os.environ"

    def test_obs_barrier_does_not_leak_taint(self, lint):
        result = lint(
            {
                "repro/obs/spanclock.py": (
                    "import time\n"
                    "\n"
                    "def span_now():\n"
                    "    return time.perf_counter()\n"
                ),
                "repro/pkg/metrics.py": (
                    "from repro.obs.spanclock import span_now\n"
                    "\n"
                    "def observe():\n"
                    "    return span_now()\n"
                ),
            }
        )
        # D3 still fires inside the barrier module; D4 must not
        # propagate the accounted measurement read into callers.
        assert _findings(result, "D4") == []

    def test_out_of_scope_module_not_reported(self, lint):
        from repro.analysis.config import DEFAULT_CONFIG

        result = lint(
            {
                "repro/viz/plots.py": (
                    "import time\n"
                    "\n"
                    "def _stamp():\n"
                    "    return time.time()\n"
                    "\n"
                    "def render():\n"
                    "    return _stamp()\n"
                )
            },
            config=DEFAULT_CONFIG,
        )
        assert _findings(result, "D4") == []


class TestD5UnorderedIteration:
    def test_set_iterated_into_snapshot_payload(self, lint):
        result = lint(
            {
                "repro/pkg/op.py": (
                    "class Op:\n"
                    "    def __init__(self):\n"
                    "        self._seen = set()\n"
                    "\n"
                    "    def snapshot(self):\n"
                    '        return {"seen": [s for s in self._seen]}\n'
                    "\n"
                    "    def restore(self, state):\n"
                    '        self._seen = set(state["seen"])\n'
                )
            }
        )
        d5 = _findings(result, "D5")
        assert len(d5) == 1
        assert d5[0].detail == "self._seen"
        assert "hash salt" in d5[0].message

    def test_sorted_wrapper_is_clean(self, lint):
        result = lint(
            {
                "repro/pkg/op.py": (
                    "class Op:\n"
                    "    def __init__(self):\n"
                    "        self._seen = set()\n"
                    "\n"
                    "    def snapshot(self):\n"
                    '        return {"seen": [s for s in sorted(self._seen)]}\n'
                    "\n"
                    "    def restore(self, state):\n"
                    '        self._seen = set(state["seen"])\n'
                )
            }
        )
        assert _findings(result, "D5") == []

    def test_order_free_folds_are_clean_but_sum_is_not(self, lint):
        result = lint(
            {
                "repro/pkg/op.py": (
                    "class Op:\n"
                    "    def __init__(self):\n"
                    "        self._weights = set()\n"
                    "\n"
                    "    def snapshot(self):\n"
                    "        return {\n"
                    '            "n": len(self._weights),\n'
                    '            "hi": max(self._weights),\n'
                    '            "total": sum(self._weights),\n'
                    "        }\n"
                    "\n"
                    "    def restore(self, state):\n"
                    "        self._weights = set()\n"
                )
            }
        )
        d5 = _findings(result, "D5")
        # float addition is order-sensitive; len/max are not.
        assert len(d5) == 1
        assert d5[0].line == 9

    def test_helper_called_from_snapshot_reports_sink_chain(self, lint):
        result = lint(
            {
                "repro/pkg/op.py": (
                    "class Op:\n"
                    "    def __init__(self):\n"
                    "        self._ids = set()\n"
                    "\n"
                    "    def snapshot(self):\n"
                    '        return {"ids": self._collect()}\n'
                    "\n"
                    "    def _collect(self):\n"
                    "        return [i for i in self._ids]\n"
                    "\n"
                    "    def restore(self, state):\n"
                    '        self._ids = set(state["ids"])\n'
                )
            }
        )
        d5 = _findings(result, "D5")
        assert len(d5) == 1
        assert "Op.snapshot → Op._collect" in d5[0].message

    def test_set_iteration_outside_sink_context_is_clean(self, lint):
        result = lint(
            {
                "repro/pkg/op.py": (
                    "def debug_dump(items: set) -> list:\n"
                    "    return [i for i in items]\n"
                )
            }
        )
        assert _findings(result, "D5") == []

    def test_dict_iteration_in_rdf_module_is_a_sink(self, lint):
        # Everything in repro/rdf/* is a sink root: emission order is
        # the store's input order.
        result = lint(
            {
                "repro/rdf/emit.py": (
                    "def emit(fields: dict) -> list:\n"
                    "    return [f for f in fields]\n"
                )
            }
        )
        d5 = _findings(result, "D5")
        assert len(d5) == 1
        assert "dict" in d5[0].message


class TestP2WorkerGlobals:
    def test_global_mutated_from_worker_entrypoint(self, lint):
        result = lint(
            {
                "repro/pkg/work.py": (
                    "_CACHE: dict = {}\n"
                    "\n"
                    "def worker_main(spec):\n"
                    "    _seed(spec)\n"
                    "\n"
                    "def _seed(spec):\n"
                    '    _CACHE["spec"] = spec\n'
                )
            }
        )
        p2 = _findings(result, "P2")
        assert len(p2) == 1
        assert p2[0].detail == "_CACHE"
        assert p2[0].line == 1
        assert "worker_main → _seed" in p2[0].message

    def test_spec_build_is_an_entrypoint(self, lint):
        result = lint(
            {
                "repro/pkg/spec.py": (
                    "_REGISTRY: list = []\n"
                    "\n"
                    "class JobSpec:\n"
                    "    def build(self):\n"
                    "        _REGISTRY.append(self)\n"
                    "        return self\n"
                )
            }
        )
        p2 = _findings(result, "P2")
        assert len(p2) == 1
        assert p2[0].detail == "_REGISTRY"

    def test_unreached_mutator_is_clean(self, lint):
        result = lint(
            {
                "repro/pkg/work.py": (
                    "_CACHE: dict = {}\n"
                    "\n"
                    "def worker_main(spec):\n"
                    "    return spec\n"
                    "\n"
                    "def _seed(spec):\n"
                    '    _CACHE["spec"] = spec\n'
                )
            }
        )
        assert _findings(result, "P2") == []

    def test_immutable_global_is_clean(self, lint):
        result = lint(
            {
                "repro/pkg/work.py": (
                    '_MODES = ("a", "b")\n'
                    "\n"
                    "def worker_main(spec):\n"
                    "    return _MODES[0]\n"
                )
            }
        )
        assert _findings(result, "P2") == []

    def test_local_shadow_is_clean(self, lint):
        result = lint(
            {
                "repro/pkg/work.py": (
                    "_CACHE: dict = {}\n"
                    "\n"
                    "def worker_main(spec):\n"
                    "    _CACHE = {}\n"
                    '    _CACHE["spec"] = spec\n'
                    "    return _CACHE\n"
                )
            }
        )
        assert _findings(result, "P2") == []

    def test_global_statement_rebind_is_flagged(self, lint):
        result = lint(
            {
                "repro/pkg/work.py": (
                    "_MODE: list = []\n"
                    "\n"
                    "def worker_main(spec):\n"
                    "    _configure()\n"
                    "\n"
                    "def _configure():\n"
                    "    global _MODE\n"
                    '    _MODE = ["fast"]\n'
                )
            }
        )
        p2 = _findings(result, "P2")
        assert len(p2) == 1
        assert p2[0].detail == "_MODE"


GRAPH_FILES = {
    "repro/pkg/__init__.py": "from repro.pkg.engine import entry\n",
    "repro/pkg/helpers.py": textwrap.dedent(
        """
        import time


        class Clocked:
            def tick(self):
                return time.time()


        def inner():
            return Clocked().tick()


        def outer():
            return inner()
        """
    ),
    "repro/pkg/engine.py": textwrap.dedent(
        """
        from repro.pkg.helpers import Clocked, outer


        class Engine:
            def __init__(self, clock: Clocked):
                self._clock = clock
                self._stages: dict[str, Clocked] = {}

            def run(self):
                self._clock.tick()
                self._stages["a"].tick()
                return outer()


        def entry():
            return Engine(Clocked()).run()
        """
    ),
}


def _parse_fixture_modules():
    modules = []
    index = ClassIndex()
    for rel, text in GRAPH_FILES.items():
        modules.append(parse_module(f"/x/{rel}", rel, text))
    for module in modules:
        index.add_module(module.path, module.tree)
    return modules, index


def _edges(graph: CallGraph) -> dict:
    return {
        q: tuple((s.callee, s.line) for s in fn.calls)
        for q, fn in graph.functions.items()
    }


class TestCallGraphResolution:
    def test_resolves_methods_fields_and_container_elements(self):
        modules, index = _parse_fixture_modules()
        graph = build_call_graph(modules, index)
        run = graph.functions["repro/pkg/engine.py::Engine.run"]
        callees = {s.callee for s in run.calls}
        assert "repro/pkg/helpers.py::Clocked.tick" in callees  # field + dict elem
        assert "repro/pkg/helpers.py::outer" in callees  # cross-module import

    def test_resolves_package_reexport(self):
        modules, index = _parse_fixture_modules()
        extra = parse_module(
            "/x/repro/pkg/user.py",
            "repro/pkg/user.py",
            "from repro.pkg import entry\n\ndef use():\n    return entry()\n",
        )
        graph = build_call_graph([*modules, extra], index)
        use = graph.functions["repro/pkg/user.py::use"]
        assert [s.callee for s in use.calls] == ["repro/pkg/engine.py::entry"]

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(sorted(GRAPH_FILES)))
    def test_resolution_stable_under_module_reordering(self, order):
        modules, index = _parse_fixture_modules()
        baseline = _edges(build_call_graph(modules, index))

        by_path = {m.path: m for m in modules}
        shuffled_index = ClassIndex()
        for rel in order:
            shuffled_index.add_module(rel, by_path[rel].tree)
        graph = CallGraph()
        for rel in order:
            graph.add_module(by_path[rel], shuffled_index)
        graph.resolve_edges()

        assert _edges(graph) == baseline


class TestRuleOutputStability:
    @settings(max_examples=10, deadline=None)
    @given(order=st.permutations(sorted(GRAPH_FILES)))
    def test_taint_findings_stable_under_reordering(self, order):
        import tempfile
        from pathlib import Path

        from repro.analysis import analyze_paths

        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "tree"
            for rel in order:  # write order follows the permutation
                path = root / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(GRAPH_FILES[rel])
            result = analyze_paths([str(root)], config=AnalysisConfig())
        keys = [(f.rule, f.path, f.line, f.detail) for f in result.open_findings]
        assert keys == sorted(set(keys), key=keys.index)  # no duplicates
        assert any(rule == "D4" for rule, *_ in keys)

"""C1 snapshot-coverage shapes: pairs, mixin, operators, suppression."""

from tests.analysis.conftest import open_rules

_MIXIN = """\
class StatefulMixin:
    _STATE_FIELDS = ()

    def snapshot(self):
        return {f: getattr(self, f) for f in self._STATE_FIELDS}

    def restore(self, state):
        for f in self._STATE_FIELDS:
            setattr(self, f, state[f])
"""

_OPERATOR = """\
class Operator:
    def snapshot(self):
        return None

    def restore(self, state):
        return None
"""


class TestPairCoverage:
    def test_snapshot_dropping_mutable_field(self, lint):
        result = lint(
            {
                "mod.py": """\
                class Counter:
                    def __init__(self):
                        self.count = 0
                        self.seen = {}

                    def feed(self, key):
                        self.count += 1
                        self.seen[key] = True

                    def snapshot(self):
                        return {"seen": dict(self.seen)}

                    def restore(self, state):
                        self.seen = dict(state["seen"])
                """
            }
        )
        # count is missing from both methods: one finding each.
        assert open_rules(result) == ["C1", "C1"]
        assert {f.detail for f in result.open_findings} == {"count"}

    def test_full_pair_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                class Counter:
                    def __init__(self):
                        self.count = 0

                    def feed(self):
                        self.count += 1

                    def snapshot(self):
                        return {"count": self.count}

                    def restore(self, state):
                        self.count = state["count"]
                """
            }
        )
        assert result.ok

    def test_config_fields_are_not_state(self, lint):
        # Assigned in __init__, never mutated after: not required.
        result = lint(
            {
                "mod.py": """\
                class Op:
                    def __init__(self, size):
                        self.size = size
                        self.buf = []

                    def feed(self, x):
                        self.buf.append(x)

                    def snapshot(self):
                        return list(self.buf)

                    def restore(self, state):
                        self.buf = list(state)
                """
            }
        )
        assert result.ok

    def test_snapshot_without_restore(self, lint):
        result = lint(
            {
                "mod.py": """\
                class Op:
                    def snapshot(self):
                        return None
                """
            }
        )
        assert open_rules(result) == ["C1"]
        assert "without restore()" in result.open_findings[0].message

    def test_dynamic_loop_checked_against_driving_literal(self, lint):
        # A getattr loop covers exactly what _STATEFUL_COMPONENTS names;
        # a mutable field outside the literal is still a finding.
        result = lint(
            {
                "mod.py": """\
                class Pipe:
                    _STATEFUL_COMPONENTS = ("buf",)

                    def __init__(self):
                        self.buf = []
                        self.count = 0

                    def feed(self, x):
                        self.buf.append(x)
                        self.count += 1

                    def snapshot(self):
                        return {n: getattr(self, n) for n in self._STATEFUL_COMPONENTS}

                    def restore(self, state):
                        for n in self._STATEFUL_COMPONENTS:
                            setattr(self, n, state[n])
                """
            }
        )
        assert open_rules(result) == ["C1", "C1"]
        assert {f.detail for f in result.open_findings} == {"count"}


class TestStatefulMixin:
    def test_omitted_field_is_flagged(self, lint):
        result = lint(
            {
                "mixin.py": _MIXIN,
                "mod.py": """\
                from mixin import StatefulMixin

                class Dedup(StatefulMixin):
                    _STATE_FIELDS = ("seen",)

                    def __init__(self):
                        self.seen = {}
                        self.dropped = 0

                    def feed(self, key):
                        if key in self.seen:
                            self.dropped += 1
                        self.seen[key] = True
                """,
            }
        )
        assert open_rules(result) == ["C1"]
        assert result.open_findings[0].detail == "dropped"
        assert "_STATE_FIELDS omits" in result.open_findings[0].message

    def test_complete_field_list_is_clean(self, lint):
        result = lint(
            {
                "mixin.py": _MIXIN,
                "mod.py": """\
                from mixin import StatefulMixin

                class Dedup(StatefulMixin):
                    _STATE_FIELDS = ("seen", "dropped")

                    def __init__(self):
                        self.seen = {}
                        self.dropped = 0

                    def feed(self, key):
                        if key in self.seen:
                            self.dropped += 1
                        self.seen[key] = True
                """,
            }
        )
        assert result.ok


class TestOperatorWithoutPair:
    def test_stateful_operator_missing_pair(self, lint):
        result = lint(
            {
                "ops.py": _OPERATOR,
                "mod.py": """\
                from ops import Operator

                class Summer(Operator):
                    def __init__(self):
                        self.total = 0

                    def process(self, x):
                        self.total += x
                """,
            }
        )
        assert open_rules(result) == ["C1"]
        assert "no snapshot()/restore()" in result.open_findings[0].message

    def test_stateless_operator_is_clean(self, lint):
        result = lint(
            {
                "ops.py": _OPERATOR,
                "mod.py": """\
                from ops import Operator

                class Doubler(Operator):
                    def __init__(self, factor):
                        self.factor = factor

                    def process(self, x):
                        return x * self.factor
                """,
            }
        )
        assert result.ok

    def test_inherited_snapshot_not_covering_new_field(self, lint):
        result = lint(
            {
                "ops.py": _OPERATOR,
                "mod.py": """\
                from ops import Operator

                class Base(Operator):
                    def __init__(self):
                        self.buf = []

                    def process(self, x):
                        self.buf.append(x)

                    def snapshot(self):
                        return list(self.buf)

                    def restore(self, state):
                        self.buf = list(state)

                class Child(Base):
                    def __init__(self):
                        super().__init__()
                        self.extra = 0

                    def process(self, x):
                        self.extra += 1
                        self.buf.append(x)
                """,
            }
        )
        assert open_rules(result) == ["C1"]
        assert result.open_findings[0].detail == "extra"

    def test_suppression_on_class_line(self, lint):
        result = lint(
            {
                "ops.py": _OPERATOR,
                "mod.py": """\
                from ops import Operator

                # lint: allow[C1] fixture: transient not worth checkpointing
                class Summer(Operator):
                    def __init__(self):
                        self.total = 0

                    def process(self, x):
                        self.total += x
                """,
            }
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["C1"]

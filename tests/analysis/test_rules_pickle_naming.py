"""P1 (pickle safety) and O1 (metric naming) fixtures."""

from tests.analysis.conftest import open_rules


class TestPickleSafety:
    def test_flags_lambda_argument(self, lint):
        result = lint(
            {
                "mod.py": """\
                def build():
                    return PipelineSpec(source=lambda: [])
                """
            }
        )
        assert open_rules(result) == ["P1"]
        assert "lambda" in result.open_findings[0].message

    def test_flags_nested_function_by_name(self, lint):
        result = lint(
            {
                "mod.py": """\
                def build():
                    def source():
                        return []

                    return WorkerSpec(source=source)
                """
            }
        )
        assert open_rules(result) == ["P1"]
        assert result.open_findings[0].detail == "source"

    def test_module_level_function_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                def source():
                    return []

                def build():
                    return PipelineSpec(source=source)
                """
            }
        )
        assert result.ok

    def test_lambda_into_other_calls_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                def f(items):
                    return sorted(items, key=lambda x: x[0])
                """
            }
        )
        assert result.ok

    def test_suppression_with_reason(self, lint):
        result = lint(
            {
                "mod.py": (
                    "def build():\n"
                    "    # lint: allow[P1] fixture: single-process test"
                    " harness never pickles this spec\n"
                    "    return PipelineSpec(source=lambda: [])\n"
                )
            }
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["P1"]


class TestMetricNaming:
    def test_flags_non_dotted_name(self, lint):
        result = lint(
            {
                "mod.py": """\
                def instrument(metrics):
                    return metrics.counter("Pipeline-Clean")
                """
            }
        )
        assert open_rules(result) == ["O1"]
        assert result.open_findings[0].detail == "Pipeline-Clean"

    def test_flags_bad_fstring_fragment(self, lint):
        result = lint(
            {
                "mod.py": """\
                def instrument(metrics, shard):
                    return metrics.gauge(f"runtime shard {shard}.rate")
                """
            }
        )
        assert open_rules(result) == ["O1"]

    def test_dotted_lowercase_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                def instrument(metrics, shard):
                    metrics.counter("pipeline.clean")
                    metrics.latency_histogram("store.insert_ms")
                    metrics.gauge(f"runtime.shard{shard}.admit_rate")
                    with metrics.span("ingest.parse"):
                        pass
                """
            }
        )
        assert result.ok

    def test_unrelated_method_names_ignored(self, lint):
        result = lint(
            {
                "mod.py": """\
                def f(widget):
                    return widget.span("NOT A METRIC -- wait, yes it is?")
                """
            }
        )
        # `span` is a named instrument regardless of receiver: the rule
        # is name-based on purpose, and this one is correctly flagged.
        assert open_rules(result) == ["O1"]

    def test_suppression_with_reason(self, lint):
        result = lint(
            {
                "mod.py": (
                    "def instrument(metrics):\n"
                    '    return metrics.counter("Legacy Name")'
                    "  # lint: allow[O1] fixture: frozen external"
                    " dashboard key\n"
                )
            }
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["O1"]

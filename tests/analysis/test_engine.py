"""Engine behavior: suppression policing, allowlists, triage buckets."""

import pytest

from repro.analysis import AllowEntry, AnalysisConfig
from repro.analysis.rules import rule_ids

from tests.analysis.conftest import open_rules


class TestSuppressionPolicing:
    def test_reasonless_suppression_is_inert_and_flagged(self, lint):
        result = lint(
            {"mod.py": "def f(x):\n    return hash(x)  # lint: allow[D1]\n"}
        )
        # The D1 stays open AND the bare allow is an S1.
        assert open_rules(result) == ["D1", "S1"]
        assert not result.suppressed

    def test_unused_suppression_is_flagged(self, lint):
        result = lint(
            {
                "mod.py": (
                    "# lint: allow[D1] stale: the hash call below was removed\n"
                    "def f(x):\n    return x\n"
                )
            }
        )
        assert open_rules(result) == ["S2"]
        assert "matches no finding" in result.open_findings[0].message

    def test_unused_suppression_for_inactive_rule_not_flagged(self, lint):
        # Running only D3 must not complain about a D1 allow that the
        # skipped rule would have consumed.
        from repro.analysis.rules import ALL_RULES

        d3_only = [r for r in ALL_RULES if r.rule_id == "D3"]
        result = lint(
            {
                "mod.py": (
                    "def f(x):\n"
                    "    return hash(x)  # lint: allow[D1] consumed when D1 runs\n"
                )
            },
            rules=d3_only,
        )
        assert result.ok

    def test_detail_scoped_suppression_matches_only_that_detail(self, lint):
        result = lint(
            {
                "mod.py": (
                    "import time\n\n"
                    "def f():\n"
                    "    # lint: allow[D3:time.monotonic] fixture detail scoping\n"
                    "    return time.monotonic(), time.time()\n"
                )
            }
        )
        # time.monotonic suppressed by detail; time.time stays open.
        assert open_rules(result) == ["D3"]
        assert result.open_findings[0].detail == "time.time"
        assert [f.detail for f in result.suppressed] == ["time.monotonic"]


class TestAllowlists:
    def test_allowlist_entry_requires_reason(self):
        with pytest.raises(ValueError, match="reason"):
            AllowEntry(pattern="repro/obs/*", reason="   ")

    def test_allowlisted_findings_keep_their_reason(self, lint):
        config = AnalysisConfig(
            allowlists={
                "D1": (
                    AllowEntry(pattern="legacy/*", reason="fixture: frozen module"),
                )
            }
        )
        result = lint(
            {
                "legacy/mod.py": "def f(x):\n    return hash(x)\n",
                "fresh/mod.py": "def g(x):\n    return hash(x)\n",
            },
            config=config,
        )
        assert [f.path for f in result.open_findings] == ["fresh/mod.py"]
        assert [f.path for f in result.allowlisted] == ["legacy/mod.py"]
        assert result.allowlisted[0].reason == "fixture: frozen module"


class TestEngineBasics:
    def test_syntax_error_is_reported_not_fatal(self, lint):
        result = lint(
            {
                "bad.py": "def broken(:\n",
                "good.py": "def f(x):\n    return hash(x)\n",
            }
        )
        assert len(result.errors) == 1
        assert "bad.py" in result.errors[0]
        assert open_rules(result) == ["D1"]
        assert not result.ok

    def test_findings_sorted_and_deterministic(self, lint):
        files = {
            "b.py": "def f(x):\n    return hash(x)\n",
            "a.py": "import time\n\ndef g():\n    return time.time(), hash(1)\n",
        }
        first = lint(files)
        keys = [(f.path, f.line, f.rule) for f in first.open_findings]
        assert keys == sorted(keys)
        assert [f.rule for f in first.open_findings] == ["D1", "D3", "D1"]

    def test_rule_ids_cover_documented_set(self):
        assert set(rule_ids()) == {
            "D1", "D2", "D3", "D4", "D5", "C1", "P1", "P2", "O1", "O2",
        }

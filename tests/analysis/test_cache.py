"""Incremental cache: byte-identity, hit/miss tiers, --changed mode."""

import json
import textwrap

import pytest

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.config import AllowEntry


def _write_tree(root, files):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return root


TREE = {
    "pkg/__init__.py": "",
    "pkg/clean.py": "def double(x):\n    return x * 2\n",
    "pkg/dirty.py": "def f(x):\n    return hash(x)\n",
    "pkg/timed.py": "import time\n\ndef g():\n    return time.time()\n",
}


@pytest.fixture
def tree(tmp_path):
    return _write_tree(tmp_path / "tree", dict(TREE))


@pytest.fixture
def cache_file(tmp_path):
    return str(tmp_path / "lint-cache.json")


class TestByteIdentity:
    def test_warm_run_emits_byte_identical_json(self, tree, cache_file):
        cold = analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        warm = analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        cold_bytes = json.dumps(cold.as_dict(), indent=2, sort_keys=True)
        warm_bytes = json.dumps(warm.as_dict(), indent=2, sort_keys=True)
        assert cold_bytes == warm_bytes
        assert cold.cache_status == "cold"
        assert warm.cache_status == "hit"

    def test_full_hit_reports_every_file_as_hit(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        warm = analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        assert warm.cache_file_hits == len(TREE)
        assert warm.files == sorted(TREE)

    def test_cache_telemetry_stays_out_of_the_report(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        warm = analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        report = warm.as_dict()
        assert "cache_status" not in report
        assert "cache_file_hits" not in report


class TestInvalidation:
    def test_editing_one_file_reuses_the_rest(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        (tree / "pkg/clean.py").write_text(
            "def double(x):\n    return hash(x)\n"
        )
        partial = analyze_paths(
            [str(tree)], config=AnalysisConfig(), cache_path=cache_file
        )
        assert partial.cache_status == "partial"
        assert partial.cache_file_hits == len(TREE) - 1
        # The edit's new finding is live, not a stale cached view.
        assert any(
            f.rule == "D1" and f.path == "pkg/clean.py"
            for f in partial.open_findings
        )

    def test_fixed_finding_disappears_on_warm_run(self, tree, cache_file):
        first = analyze_paths(
            [str(tree)], config=AnalysisConfig(), cache_path=cache_file
        )
        assert any(f.path == "pkg/dirty.py" for f in first.open_findings)
        (tree / "pkg/dirty.py").write_text("def f(x):\n    return x\n")
        second = analyze_paths(
            [str(tree)], config=AnalysisConfig(), cache_path=cache_file
        )
        assert not any(f.path == "pkg/dirty.py" for f in second.open_findings)

    def test_config_change_invalidates_everything(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        other = AnalysisConfig(
            allowlists={
                "D1": (AllowEntry(pattern="pkg/*", reason="fixture policy swap"),)
            }
        )
        rerun = analyze_paths([str(tree)], config=other, cache_path=cache_file)
        assert rerun.cache_status == "cold"
        # And the new policy is honored, not the cached triage.
        assert any(f.path == "pkg/dirty.py" for f in rerun.allowlisted)

    def test_deleted_file_drops_out(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        (tree / "pkg/dirty.py").unlink()
        rerun = analyze_paths(
            [str(tree)], config=AnalysisConfig(), cache_path=cache_file
        )
        assert "pkg/dirty.py" not in rerun.files
        assert not any(f.path == "pkg/dirty.py" for f in rerun.open_findings)
        # A second run over the shrunk tree is a clean full hit again.
        warm = analyze_paths(
            [str(tree)], config=AnalysisConfig(), cache_path=cache_file
        )
        assert warm.cache_status == "hit"

    def test_corrupt_cache_file_is_ignored(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        with open(cache_file, "w", encoding="utf-8") as fh:
            fh.write("{ not json")
        rerun = analyze_paths(
            [str(tree)], config=AnalysisConfig(), cache_path=cache_file
        )
        assert rerun.cache_status == "cold"
        assert rerun.files == sorted(TREE)


class TestChangedMode:
    def test_changed_mode_lints_only_edited_files(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        (tree / "pkg/clean.py").write_text(
            "def double(x):\n    return hash(x)\n"
        )
        changed = analyze_paths(
            [str(tree)],
            config=AnalysisConfig(),
            cache_path=cache_file,
            changed_only=True,
        )
        assert changed.files == ["pkg/clean.py"]
        assert [f.path for f in changed.open_findings] == ["pkg/clean.py"]

    def test_changed_mode_with_no_edits_lints_nothing(self, tree, cache_file):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        changed = analyze_paths(
            [str(tree)],
            config=AnalysisConfig(),
            cache_path=cache_file,
            changed_only=True,
        )
        assert changed.files == []
        assert changed.ok

    def test_changed_mode_updates_cache_for_next_full_run(
        self, tree, cache_file
    ):
        analyze_paths([str(tree)], config=AnalysisConfig(), cache_path=cache_file)
        (tree / "pkg/clean.py").write_text(
            "def double(x):\n    return x + x\n"
        )
        analyze_paths(
            [str(tree)],
            config=AnalysisConfig(),
            cache_path=cache_file,
            changed_only=True,
        )
        # The full run after a changed-mode run reuses every file entry;
        # only the cross-module pass re-runs (project hash moved).
        full = analyze_paths(
            [str(tree)], config=AnalysisConfig(), cache_path=cache_file
        )
        assert full.cache_file_hits == len(TREE)

"""Shared fixture helper: write a source tree, run the linter over it."""

import textwrap

import pytest

from repro.analysis import AnalysisConfig, analyze_paths


@pytest.fixture
def lint(tmp_path):
    """Write ``files`` (relpath → source) under a tmp tree and lint it.

    Paths containing a ``repro/`` segment land in rule scopes exactly as
    in-repo modules do (the engine keys scopes on the ``repro/…``
    suffix). An empty ``config`` applies no scopes or allowlists, so
    every rule sees every fixture file unless the test opts into the
    default policy.
    """

    calls = iter(range(1000))

    def run(files, rules=None, config=AnalysisConfig()):
        root = tmp_path / f"tree{next(calls)}"
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        return analyze_paths([str(root)], config=config, rules=rules)

    return run


def open_rules(result):
    """The rule ids of a result's open findings, with multiplicity."""
    return [f.rule for f in result.open_findings]

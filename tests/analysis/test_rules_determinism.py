"""D1/D2/D3: positive, negative and suppressed fixtures per rule."""

from repro.analysis import DEFAULT_CONFIG

from tests.analysis.conftest import open_rules


class TestBuiltinHash:
    def test_flags_builtin_hash_call(self, lint):
        result = lint({"mod.py": "def f(x):\n    return hash(x) % 8\n"})
        assert open_rules(result) == ["D1"]
        assert "PYTHONHASHSEED" in result.open_findings[0].message

    def test_stable_hash_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                from repro.hashing import stable_hash

                def f(x):
                    return stable_hash(x) % 8
                """
            }
        )
        assert result.ok

    def test_method_named_hash_is_clean(self, lint):
        result = lint({"mod.py": "def f(h, x):\n    return h.hash(x)\n"})
        assert result.ok

    def test_suppression_with_reason(self, lint):
        result = lint(
            {
                "mod.py": (
                    "def f(x):\n"
                    "    return hash(x)  # lint: allow[D1] fixture exercising"
                    " the suppressed bucket\n"
                )
            }
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["D1"]
        assert "fixture" in result.suppressed[0].reason


class TestUnseededRng:
    def test_flags_unseeded_random(self, lint):
        result = lint(
            {
                "mod.py": """\
                import random

                RNG = random.Random()
                """
            }
        )
        assert open_rules(result) == ["D2"]

    def test_flags_unseeded_default_rng_via_alias(self, lint):
        result = lint(
            {
                "mod.py": """\
                import numpy as np

                RNG = np.random.default_rng()
                """
            }
        )
        assert open_rules(result) == ["D2"]

    def test_flags_global_random_function(self, lint):
        result = lint(
            {
                "mod.py": """\
                from random import shuffle

                def f(items):
                    shuffle(items)
                """
            }
        )
        assert open_rules(result) == ["D2"]

    def test_seeded_rngs_are_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                import random

                import numpy as np

                RNG = random.Random(1234)
                NP_RNG = np.random.default_rng(seed=1234)
                """
            }
        )
        assert result.ok

    def test_default_scope_ignores_paths_outside_pipeline(self, lint):
        source = "import random\n\nRNG = random.Random()\n"
        scoped = lint({"repro/core/mod.py": source}, config=DEFAULT_CONFIG)
        assert open_rules(scoped) == ["D2"]
        unscoped = lint({"repro/viz/mod.py": source}, config=DEFAULT_CONFIG)
        assert unscoped.ok

    def test_suppression_covers_next_line(self, lint):
        result = lint(
            {
                "mod.py": (
                    "import random\n\n"
                    "# lint: allow[D2] fixture for line-below coverage\n"
                    "RNG = random.Random()\n"
                )
            }
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["D2"]


class TestWallClock:
    def test_flags_time_call(self, lint):
        result = lint(
            {
                "mod.py": """\
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        assert open_rules(result) == ["D3"]

    def test_flags_aliased_reference_without_call(self, lint):
        # `pc = time.perf_counter` smuggles the clock past call-only
        # detection; the rule is reference-based for exactly this case.
        result = lint(
            {
                "mod.py": """\
                from time import perf_counter

                def f():
                    pc = perf_counter
                    return pc
                """
            }
        )
        assert "D3" in open_rules(result)

    def test_flags_datetime_now(self, lint):
        result = lint(
            {
                "mod.py": """\
                from datetime import datetime

                def stamp():
                    return datetime.now()
                """
            }
        )
        assert open_rules(result) == ["D3"]

    def test_sanctioned_monotonic_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                from repro.obs.clock import monotonic

                def f():
                    return monotonic()
                """
            }
        )
        assert result.ok

    def test_time_sleep_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                import time

                def f():
                    time.sleep(0.1)
                """
            }
        )
        assert result.ok

    def test_default_allowlist_covers_clock_module(self, lint):
        result = lint(
            {
                "repro/obs/clock.py": """\
                import time

                def monotonic():
                    return time.perf_counter()
                """
            },
            config=DEFAULT_CONFIG,
        )
        assert result.ok
        assert [f.rule for f in result.allowlisted] == ["D3"]
        assert "sanctioned clock boundary" in result.allowlisted[0].reason

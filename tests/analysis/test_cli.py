"""CLI surface: exit codes, human rendering, and the JSON report schema."""

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.engine import JSON_SCHEMA_VERSION


@pytest.fixture
def tree(tmp_path):
    def write(files):
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return str(tmp_path)

    return write


def test_clean_tree_exits_zero(tree, capsys):
    root = tree({"mod.py": "def f(x):\n    return x\n"})
    assert main([root]) == 0
    out = capsys.readouterr().out
    assert "1 files scanned: 0 open, 0 suppressed, 0 allowlisted" in out


def test_open_finding_exits_one(tree, capsys):
    root = tree({"mod.py": "def f(x):\n    return hash(x)\n"})
    assert main([root]) == 1
    out = capsys.readouterr().out
    assert "[D1]" in out
    assert "mod.py:2:" in out


def test_unknown_rule_id_exits_two(tree, capsys):
    root = tree({"mod.py": "x = 1\n"})
    assert main([root, "--rules", "D1,ZZ9"]) == 2
    assert "ZZ9" in capsys.readouterr().err


def test_rule_selection_runs_only_those(tree):
    root = tree({"mod.py": "def f(x):\n    return hash(x)\n"})
    assert main([root, "--rules", "D3"]) == 0
    assert main([root, "--rules", "D1"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D1", "D2", "D3", "C1", "P1", "O1", "S1", "S2"):
        assert rule_id in out


def test_show_suppressed_prints_reasons(tree, capsys):
    root = tree(
        {
            "mod.py": (
                "def f(x):\n"
                "    return hash(x)  # lint: allow[D1] fixture reason text\n"
            )
        }
    )
    assert main([root, "--show-suppressed"]) == 0
    out = capsys.readouterr().out
    assert "suppressed: fixture reason text" in out


class TestJsonReport:
    def run_json(self, root, capsys, *extra):
        code = main([root, "--json", *extra])
        return code, json.loads(capsys.readouterr().out)

    def test_schema_shape(self, tree, capsys):
        root = tree(
            {
                "mod.py": (
                    "import time\n\n"
                    "def f(x):\n"
                    "    return hash(x), time.time()"
                    "  # lint: allow[D1] fixture\n"
                )
            }
        )
        code, report = self.run_json(root, capsys)
        assert code == 1
        assert set(report) == {
            "version",
            "root",
            "files_scanned",
            "counts",
            "findings",
            "suppressed",
            "allowlisted",
            "errors",
        }
        assert report["version"] == JSON_SCHEMA_VERSION
        assert report["files_scanned"] == 1
        assert report["counts"] == {"open": 1, "suppressed": 1, "allowlisted": 0}
        (finding,) = report["findings"]
        # Empty detail/reason are omitted from the wire format.
        assert {"rule", "path", "line", "col", "message"} <= set(finding)
        assert set(finding) <= {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "detail",
            "reason",
        }
        assert finding["rule"] == "D3"
        assert finding["path"] == "mod.py"
        assert isinstance(finding["line"], int) and finding["line"] > 0
        (suppressed,) = report["suppressed"]
        assert suppressed["rule"] == "D1"
        assert suppressed["reason"] == "fixture"

    def test_clean_report_counts(self, tree, capsys):
        root = tree({"mod.py": "x = 1\n"})
        code, report = self.run_json(root, capsys)
        assert code == 0
        assert report["counts"] == {"open": 0, "suppressed": 0, "allowlisted": 0}
        assert report["findings"] == []
        assert report["errors"] == []

    def test_report_is_deterministic(self, tree, capsys):
        root = tree(
            {
                "b.py": "def f(x):\n    return hash(x)\n",
                "a.py": "def g(x):\n    return hash(x)\n",
            }
        )
        _, first = self.run_json(root, capsys)
        _, second = self.run_json(root, capsys)
        assert first == second
        assert [f["path"] for f in first["findings"]] == ["a.py", "b.py"]

"""O2 (deprecated imports and entry points) fixtures."""

from tests.analysis.conftest import open_rules


class TestDeprecatedImports:
    def test_flags_plain_import(self, lint):
        result = lint({"mod.py": "import repro.streams.metrics\n"})
        assert open_rules(result) == ["O2"]
        assert "repro.obs" in result.open_findings[0].message

    def test_flags_from_import_of_module(self, lint):
        result = lint({"mod.py": "from repro.streams import metrics\n"})
        assert open_rules(result) == ["O2"]
        assert result.open_findings[0].detail == "repro.streams.metrics"

    def test_flags_from_import_of_name(self, lint):
        result = lint({"mod.py": "from repro.streams.metrics import Counter\n"})
        assert open_rules(result) == ["O2"]

    def test_new_home_is_clean(self, lint):
        result = lint({"mod.py": "from repro.obs import Counter\n"})
        assert result.ok


class TestDeprecatedEntrypoints:
    def test_flags_run_batched_call(self, lint):
        result = lint(
            {
                "mod.py": """\
                def go(pipeline, reports):
                    return pipeline.run_batched(reports, batch_size=64)
                """
            }
        )
        assert open_rules(result) == ["O2"]
        assert result.open_findings[0].detail == "run_batched"
        assert "BatchOptions" in result.open_findings[0].message

    def test_flags_every_run_family_method(self, lint):
        result = lint(
            {
                "mod.py": """\
                def go(p, reports, store):
                    p.run_with_checkpoints(reports, store, 10)
                    p.run_batches_with_checkpoints([reports], store, 10)
                    p.resume_from_checkpoint(store, reports)
                """
            }
        )
        assert open_rules(result) == ["O2", "O2", "O2"]
        assert [f.detail for f in result.open_findings] == [
            "run_with_checkpoints",
            "run_batches_with_checkpoints",
            "resume_from_checkpoint",
        ]

    def test_unified_run_is_clean(self, lint):
        result = lint(
            {
                "mod.py": """\
                def go(p, reports, store, options):
                    return p.run(reports, batch=options)
                """
            }
        )
        assert result.ok

    def test_method_definition_is_not_a_call(self, lint):
        result = lint(
            {
                "mod.py": """\
                class MobilityPipeline:
                    def run_batched(self, reports, batch_size=256):
                        return self.run(reports)
                """
            }
        )
        assert result.ok


class TestSuppression:
    def test_reasoned_suppression_holds(self, lint):
        result = lint(
            {
                "mod.py": """\
                def pin_shim(pipeline, reports):
                    # lint: allow[O2] pins the deprecated shim's warning contract
                    return pipeline.run_batched(reports)
                """
            }
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["O2"]
        assert result.suppressed[0].reason

    def test_reasonless_suppression_does_not_hold(self, lint):
        result = lint(
            {
                "mod.py": """\
                def pin_shim(pipeline, reports):
                    # lint: allow[O2]
                    return pipeline.run_batched(reports)
                """
            }
        )
        assert not result.ok
        assert sorted(open_rules(result)) == ["O2", "S1"]

"""The linter self-hosts: src/ is clean, and mutations are caught.

The mutation tests are the proof the self-lint result is meaningful:
they re-introduce the exact defect classes the rules exist for into
copies of real modules and assert the run turns red.
"""

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_clean():
    result = analyze_paths([str(REPO_SRC)])
    assert result.errors == []
    assert result.open_findings == [], "\n".join(
        f"{f.located()}: [{f.rule}] {f.message}" for f in result.open_findings
    )
    assert result.ok


def test_every_suppression_in_src_carries_a_reason():
    result = analyze_paths([str(REPO_SRC)])
    for finding in result.suppressed + result.allowlisted:
        assert finding.reason.strip(), finding


def _copy_tree(tmp_path, rel_sources):
    for rel in rel_sources:
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text((REPO_SRC / rel).read_text())
    return tmp_path


class TestMutations:
    def test_dropping_a_state_field_turns_the_run_red(self, tmp_path):
        root = _copy_tree(
            tmp_path, ["repro/insitu/filters.py", "repro/streams/checkpoint.py"]
        )
        target = root / "repro/insitu/filters.py"
        mutated = target.read_text().replace(
            '_STATE_FIELDS = ("_seen", "dropped")', '_STATE_FIELDS = ("_seen",)'
        )
        assert mutated != target.read_text(), "mutation site moved; update test"
        target.write_text(mutated)
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        assert any(
            f.rule == "C1" and f.detail == "dropped" for f in result.open_findings
        )

    def test_unmutated_copies_stay_green(self, tmp_path):
        root = _copy_tree(
            tmp_path, ["repro/insitu/filters.py", "repro/streams/checkpoint.py"]
        )
        assert main([str(root)]) == 0

    def test_introducing_builtin_hash_turns_the_run_red(self, tmp_path):
        root = _copy_tree(tmp_path, ["repro/streams/checkpoint.py"])
        target = root / "repro/streams/checkpoint.py"
        target.write_text(
            target.read_text() + "\n\ndef _bucket(key):\n    return hash(key) % 8\n"
        )
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        assert [f.rule for f in result.open_findings] == ["D1"]

    def test_introducing_wall_clock_read_turns_the_run_red(self, tmp_path):
        root = _copy_tree(tmp_path, ["repro/streams/checkpoint.py"])
        target = root / "repro/streams/checkpoint.py"
        target.write_text(
            target.read_text()
            + "\n\nimport time\n\ndef _stamp():\n    return time.time()\n"
        )
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        assert [f.rule for f in result.open_findings] == ["D3"]

    def test_transitive_clock_read_turns_the_run_red(self, tmp_path):
        """D4: the clock is two helpers deep — D3 sees only the bottom frame."""
        root = _copy_tree(tmp_path, ["repro/streams/checkpoint.py"])
        target = root / "repro/streams/checkpoint.py"
        target.write_text(
            target.read_text()
            + "\n\nimport time\n"
            "\n"
            "def _read_clock():\n"
            "    return time.time()\n"
            "\n"
            "def _indirect_stamp():\n"
            "    return _read_clock()\n"
        )
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        d4 = [f for f in result.open_findings if f.rule == "D4"]
        assert len(d4) == 1
        assert d4[0].detail == "_read_clock->time.time"
        assert "_indirect_stamp → _read_clock" in d4[0].message

    def test_set_iterated_into_snapshot_turns_the_run_red(self, tmp_path):
        root = _copy_tree(tmp_path, ["repro/streams/checkpoint.py"])
        target = root / "repro/streams/checkpoint.py"
        target.write_text(
            target.read_text()
            + "\n\nclass _MutatedOp:\n"
            "    def __init__(self):\n"
            "        self._seen = set()\n"
            "\n"
            "    def snapshot(self):\n"
            '        return {"seen": [s for s in self._seen]}\n'
            "\n"
            "    def restore(self, state):\n"
            '        self._seen = set(state["seen"])\n'
        )
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        d5 = [f for f in result.open_findings if f.rule == "D5"]
        assert len(d5) == 1
        assert d5[0].detail == "self._seen"

    def test_worker_reachable_global_turns_the_run_red(self, tmp_path):
        root = _copy_tree(tmp_path, ["repro/streams/checkpoint.py"])
        target = root / "repro/streams/checkpoint.py"
        target.write_text(
            target.read_text()
            + "\n\n_MUTATION_CACHE: dict = {}\n"
            "\n"
            "def worker_main(spec):\n"
            "    _remember(spec)\n"
            "\n"
            "def _remember(spec):\n"
            '    _MUTATION_CACHE["spec"] = spec\n'
        )
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        p2 = [f for f in result.open_findings if f.rule == "P2"]
        assert len(p2) == 1
        assert p2[0].detail == "_MUTATION_CACHE"
        assert "worker_main → _remember" in p2[0].message

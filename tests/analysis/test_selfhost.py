"""The linter self-hosts: src/ is clean, and mutations are caught.

The mutation tests are the proof the self-lint result is meaningful:
they re-introduce the exact defect classes the rules exist for into
copies of real modules and assert the run turns red.
"""

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_clean():
    result = analyze_paths([str(REPO_SRC)])
    assert result.errors == []
    assert result.open_findings == [], "\n".join(
        f"{f.located()}: [{f.rule}] {f.message}" for f in result.open_findings
    )
    assert result.ok


def test_every_suppression_in_src_carries_a_reason():
    result = analyze_paths([str(REPO_SRC)])
    for finding in result.suppressed + result.allowlisted:
        assert finding.reason.strip(), finding


def _copy_tree(tmp_path, rel_sources):
    for rel in rel_sources:
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text((REPO_SRC / rel).read_text())
    return tmp_path


class TestMutations:
    def test_dropping_a_state_field_turns_the_run_red(self, tmp_path):
        root = _copy_tree(
            tmp_path, ["repro/insitu/filters.py", "repro/streams/checkpoint.py"]
        )
        target = root / "repro/insitu/filters.py"
        mutated = target.read_text().replace(
            '_STATE_FIELDS = ("_seen", "dropped")', '_STATE_FIELDS = ("_seen",)'
        )
        assert mutated != target.read_text(), "mutation site moved; update test"
        target.write_text(mutated)
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        assert any(
            f.rule == "C1" and f.detail == "dropped" for f in result.open_findings
        )

    def test_unmutated_copies_stay_green(self, tmp_path):
        root = _copy_tree(
            tmp_path, ["repro/insitu/filters.py", "repro/streams/checkpoint.py"]
        )
        assert main([str(root)]) == 0

    def test_introducing_builtin_hash_turns_the_run_red(self, tmp_path):
        root = _copy_tree(tmp_path, ["repro/streams/checkpoint.py"])
        target = root / "repro/streams/checkpoint.py"
        target.write_text(
            target.read_text() + "\n\ndef _bucket(key):\n    return hash(key) % 8\n"
        )
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        assert [f.rule for f in result.open_findings] == ["D1"]

    def test_introducing_wall_clock_read_turns_the_run_red(self, tmp_path):
        root = _copy_tree(tmp_path, ["repro/streams/checkpoint.py"])
        target = root / "repro/streams/checkpoint.py"
        target.write_text(
            target.read_text()
            + "\n\nimport time\n\ndef _stamp():\n    return time.time()\n"
        )
        assert main([str(root)]) == 1
        result = analyze_paths([str(root)])
        assert [f.rule for f in result.open_findings] == ["D3"]

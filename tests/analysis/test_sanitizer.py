"""Runtime determinism sanitizer: patching, allowlist, restoration."""

import datetime
import random
import time

import pytest

from repro.analysis.sanitizer import DeterminismViolation, determinism_sanitizer


class TestClockGuards:
    def test_wall_clock_raises(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation, match="time.time"):
                time.time()

    def test_monotonic_and_perf_counter_raise(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation):
                time.monotonic()
            with pytest.raises(DeterminismViolation):
                time.perf_counter()

    def test_obs_clock_is_allowlisted(self):
        from repro.obs.clock import monotonic

        with determinism_sanitizer():
            # repro.obs.clock reads time.perf_counter at call time; the
            # frame-inspection allowlist lets the measurement boundary
            # through while everything else raises.
            assert isinstance(monotonic(), float)

    def test_empty_allowlist_blocks_even_obs(self):
        from repro.obs.clock import monotonic

        with determinism_sanitizer(allowed_callers=()):
            with pytest.raises(DeterminismViolation):
                monotonic()

    def test_sleep_is_not_patched(self):
        with determinism_sanitizer():
            time.sleep(0)  # must not raise: duration is not produced bytes


class TestRngGuards:
    def test_global_random_raises(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation, match="seeded"):
                random.random()

    def test_global_shuffle_raises(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation):
                random.shuffle([1, 2, 3])

    def test_seeded_instance_still_works(self):
        with determinism_sanitizer():
            rng = random.Random(42)
            assert rng.random() == random.Random(42).random()


class TestDatetimeGuards:
    def test_datetime_now_raises(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation, match="wall clock"):
                datetime.datetime.now()

    def test_date_today_raises(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation):
                datetime.date.today()

    def test_explicit_construction_still_works(self):
        with determinism_sanitizer():
            stamp = datetime.datetime(2020, 1, 1, 12, 0, 0)
            assert stamp.year == 2020


class TestRestoration:
    def test_everything_restored_on_exit(self):
        originals = (
            time.time,
            time.monotonic,
            random.random,
            datetime.datetime,
            datetime.date,
        )
        with determinism_sanitizer():
            assert time.time is not originals[0]
        assert (
            time.time,
            time.monotonic,
            random.random,
            datetime.datetime,
            datetime.date,
        ) == originals

    def test_restored_even_when_body_raises(self):
        original = time.time
        with pytest.raises(RuntimeError, match="boom"):
            with determinism_sanitizer():
                raise RuntimeError("boom")
        assert time.time is original

    def test_clock_usable_after_exit(self):
        with determinism_sanitizer():
            pass
        assert time.time() > 0
        assert isinstance(datetime.datetime.now(), datetime.datetime)

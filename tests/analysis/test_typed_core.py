"""The typed-core perimeter holds without mypy installed.

CI runs mypy (``disallow_untyped_defs`` / ``disallow_incomplete_defs``)
over the ``[tool.mypy] files`` list in pyproject.toml; this test
approximates those two flags with an AST pass so the container test run
catches an unannotated def landing inside the perimeter before CI does.
"""

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _typed_core_paths() -> list[Path]:
    text = (REPO / "pyproject.toml").read_text()
    block = re.search(r"\[tool\.mypy\].*?files = \[(.*?)\]", text, re.DOTALL)
    assert block, "pyproject.toml lost its [tool.mypy] files list"
    entries = re.findall(r'"([^"]+)"', block.group(1))
    paths = [REPO / entry for entry in entries]
    for path in paths:
        assert path.exists(), f"typed-core entry {path} does not exist"
    return paths


def _untyped_def_exemptions() -> set[str]:
    """Modules whose mypy override relaxes ``disallow_untyped_defs``."""
    text = (REPO / "pyproject.toml").read_text()
    exempt: set[str] = set()
    for block in text.split("[[tool.mypy.overrides]]")[1:]:
        if "disallow_untyped_defs = false" not in block:
            continue
        match = re.search(r'module = "?\[?"?([^"\]]+)"?\]?', block)
        if match:
            exempt.add("src/" + match.group(1).replace(".", "/") + ".py")
    return exempt


def _iter_files(paths: list[Path]):
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def test_typed_core_covers_the_digest_feeders():
    entries = {str(p.relative_to(REPO)) for p in _typed_core_paths()}
    assert {
        "src/repro/forecasting",
        "src/repro/linkage",
        "src/repro/sources",
    } <= entries


def test_every_typed_core_def_is_fully_annotated():
    offenders = []
    exempt = _untyped_def_exemptions()
    for path in _iter_files(_typed_core_paths()):
        if str(path.relative_to(REPO)) in exempt:
            continue
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = []
            if node.returns is None and node.name != "__init__":
                missing.append("return")
            args = node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            for star in (args.vararg, args.kwarg):
                if star is not None and star.annotation is None:
                    missing.append(f"*{star.arg}")
            if missing:
                rel = path.relative_to(REPO)
                offenders.append(f"{rel}:{node.lineno} {node.name} ({', '.join(missing)})")
    assert offenders == [], "unannotated defs inside the mypy perimeter:\n" + "\n".join(
        offenders
    )

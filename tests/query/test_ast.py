"""Query AST validation."""

import pytest

from repro.geo.bbox import BBox
from repro.query.ast import (
    CompareFilter,
    STWithinFilter,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal


class TestVariable:
    def test_str(self):
        assert str(Variable("n")) == "?n"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Variable("")


class TestTriplePattern:
    def test_variables_collected(self):
        p = TriplePattern(Variable("s"), V.PROP_TYPE, Variable("o"))
        assert p.variables() == {Variable("s"), Variable("o")}
        assert p.bound_count() == 1

    def test_fully_bound(self):
        p = TriplePattern(IRI("s"), IRI("p"), Literal(1))
        assert p.variables() == set()
        assert p.bound_count() == 3


class TestFilters:
    def test_compare_filter_ops(self):
        f = CompareFilter(Variable("v"), ">", 10.0)
        assert f.test(Literal(11.0))
        assert not f.test(Literal(9.0))
        assert not f.test(IRI("x"))
        assert not f.test(Literal("not a number"))

    def test_compare_invalid_op(self):
        with pytest.raises(ValueError):
            CompareFilter(Variable("v"), "~", 1.0)

    def test_st_filter_time_order(self):
        with pytest.raises(ValueError):
            STWithinFilter(Variable("n"), BBox(0, 0, 1, 1), t_from=10.0, t_to=5.0)


class TestSelectQuery:
    def test_needs_patterns(self):
        with pytest.raises(ValueError):
            SelectQuery(select=(Variable("x"),), patterns=())

    def test_projection_must_be_bound(self):
        pattern = TriplePattern(Variable("s"), V.PROP_TYPE, V.CLASS_VESSEL)
        with pytest.raises(ValueError):
            SelectQuery(select=(Variable("zzz"),), patterns=(pattern,))

    def test_subject_star_detection(self):
        n = Variable("n")
        star = SelectQuery(
            select=(n,),
            patterns=(
                TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
                TriplePattern(n, V.PROP_TIMESTAMP, Variable("t")),
            ),
        )
        assert star.is_subject_star() == n

    def test_non_star_query(self):
        n, m = Variable("n"), Variable("m")
        query = SelectQuery(
            select=(n,),
            patterns=(
                TriplePattern(n, V.PROP_OF_MOVING_OBJECT, m),
                TriplePattern(m, V.PROP_NAME, Variable("name")),
            ),
        )
        assert query.is_subject_star() is None

    def test_constant_subject_not_star(self):
        query = SelectQuery(
            select=(Variable("t"),),
            patterns=(TriplePattern(IRI("s"), V.PROP_TIMESTAMP, Variable("t")),),
        )
        assert query.is_subject_star() is None

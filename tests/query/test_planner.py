"""Selectivity-based pattern ordering."""

from repro.query.ast import TriplePattern, Variable
from repro.query.planner import default_estimator, order_patterns
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI


class TestPlanner:
    def test_most_selective_first(self):
        n = Variable("n")
        loose = TriplePattern(n, Variable("p"), Variable("o"))
        tight = TriplePattern(n, V.PROP_OF_MOVING_OBJECT, IRI("obj"))
        ordered = order_patterns((loose, tight))
        assert ordered[0] is tight

    def test_bound_variables_change_cost(self):
        n = Variable("n")
        first = TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE)
        dependent = TriplePattern(n, V.PROP_TIMESTAMP, Variable("t"))
        estimate_before = default_estimator(dependent, set())
        estimate_after = default_estimator(dependent, {n})
        assert estimate_after < estimate_before

    def test_connected_plan_preferred(self):
        n, m = Variable("n"), Variable("m")
        anchor = TriplePattern(n, V.PROP_OF_MOVING_OBJECT, IRI("obj"))
        bridge = TriplePattern(n, V.PROP_TIMESTAMP, Variable("t"))
        island = TriplePattern(m, V.PROP_NAME, Variable("name"))
        ordered = order_patterns((island, bridge, anchor))
        assert ordered[0] is anchor
        assert ordered[1] is bridge  # connected before the island

    def test_all_patterns_kept(self):
        patterns = tuple(
            TriplePattern(Variable(f"v{i}"), V.PROP_TYPE, V.CLASS_VESSEL)
            for i in range(5)
        )
        assert sorted(map(id, order_patterns(patterns))) == sorted(map(id, patterns))

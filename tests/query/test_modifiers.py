"""ORDER BY / LIMIT solution modifiers and GROUP-BY counting."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport
from repro.query.ast import OrderBy, SelectQuery, TriplePattern, Variable
from repro.query.executor import QueryExecutor
from repro.query.parser import QueryParseError, parse_query
from repro.rdf import vocabulary as V
from repro.rdf.transform import RdfTransformer, entity_iri
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import HashPartitioner


@pytest.fixture()
def executor():
    transformer = RdfTransformer(
        st_grid=GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=8, ny=8)
    )
    store = ParallelRDFStore(HashPartitioner(2))
    for v, count in (("V1", 5), ("V2", 3), ("V3", 1)):
        for i in range(count):
            store.add_document(
                transformer.report_to_triples(
                    PositionReport(
                        entity_id=v, t=float(i * 60), lon=24.0 + 0.01 * i, lat=37.0,
                        speed=float(i), heading=90.0,
                    )
                )
            )
    return QueryExecutor(store)


def node_time_query(order_by=None, limit=None):
    n, t = Variable("n"), Variable("t")
    return SelectQuery(
        select=(n, t),
        patterns=(
            TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
            TriplePattern(n, V.PROP_TIMESTAMP, t),
        ),
        order_by=order_by,
        limit=limit,
    )


class TestOrderBy:
    def test_ascending_numeric(self, executor):
        rows, __ = executor.execute(node_time_query(order_by=OrderBy(Variable("t"))))
        times = [row[Variable("t")].value for row in rows]
        assert times == sorted(times)

    def test_descending(self, executor):
        rows, __ = executor.execute(
            node_time_query(order_by=OrderBy(Variable("t"), descending=True))
        )
        times = [row[Variable("t")].value for row in rows]
        assert times == sorted(times, reverse=True)

    def test_order_variable_must_be_bound(self):
        with pytest.raises(ValueError):
            node_time_query(order_by=OrderBy(Variable("zzz")))


class TestLimit:
    def test_limit_truncates(self, executor):
        rows, __ = executor.execute(node_time_query(limit=4))
        assert len(rows) == 4

    def test_limit_zero(self, executor):
        rows, __ = executor.execute(node_time_query(limit=0))
        assert rows == []

    def test_limit_with_order_takes_top(self, executor):
        rows, __ = executor.execute(
            node_time_query(order_by=OrderBy(Variable("t"), descending=True), limit=2)
        )
        times = [row[Variable("t")].value for row in rows]
        assert times == [240.0, 240.0] or times[0] >= times[1]

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            node_time_query(limit=-1)


class TestParserModifiers:
    def test_order_by_plain(self):
        q = parse_query("SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY ?t")
        assert q.order_by == OrderBy(Variable("t"), descending=False)

    def test_order_by_desc(self):
        q = parse_query("SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY DESC(?t)")
        assert q.order_by == OrderBy(Variable("t"), descending=True)

    def test_limit(self):
        q = parse_query("SELECT ?t WHERE { ?n time:inSeconds ?t . } LIMIT 7")
        assert q.limit == 7

    def test_order_and_limit(self):
        q = parse_query(
            "SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY ASC(?t) LIMIT 2"
        )
        assert q.order_by is not None and q.limit == 2

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT ?t WHERE { ?n time:inSeconds ?t . } LIMIT nope",
            "SELECT ?t WHERE { ?n time:inSeconds ?t . } LIMIT 2.5",
            "SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER ?t",
            "SELECT ?t WHERE { ?n time:inSeconds ?t . } garbage",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)


class TestDistinct:
    def test_distinct_collapses_duplicates(self, executor):
        from repro.query.parser import parse_query

        plain = parse_query("SELECT ?o WHERE { ?n dac:ofMovingObject ?o . }")
        distinct = parse_query(
            "SELECT DISTINCT ?o WHERE { ?n dac:ofMovingObject ?o . }"
        )
        plain_rows, __ = executor.execute(plain)
        distinct_rows, __ = executor.execute(distinct)
        assert len(plain_rows) == 9  # 5 + 3 + 1 nodes
        assert len(distinct_rows) == 3  # V1, V2, V3

    def test_distinct_with_order_and_limit(self, executor):
        from repro.query.parser import parse_query

        query = parse_query(
            "SELECT DISTINCT ?t WHERE { ?n time:inSeconds ?t . } "
            "ORDER BY DESC(?t) LIMIT 2"
        )
        rows, __ = executor.execute(query)
        times = [row[Variable("t")].value for row in rows]
        assert times == [240.0, 180.0]

    def test_ast_flag(self):
        query = node_time_query()
        assert not query.distinct


class TestCountBy:
    def test_events_per_entity(self, executor):
        n, obj = Variable("n"), Variable("o")
        query = SelectQuery(
            select=(n,),
            patterns=(TriplePattern(n, V.PROP_OF_MOVING_OBJECT, obj),),
        )
        counts = executor.count_by(obj, query)
        by_entity = {term.value: count for term, count in counts}
        assert by_entity[entity_iri("V1").value] == 5
        assert by_entity[entity_iri("V2").value] == 3
        assert by_entity[entity_iri("V3").value] == 1
        # Sorted by descending count.
        assert [c for __, c in counts] == [5, 3, 1]

    def test_group_var_must_be_bound(self, executor):
        n = Variable("n")
        query = SelectQuery(
            select=(n,),
            patterns=(TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),),
        )
        with pytest.raises(ValueError):
            executor.count_by(Variable("missing"), query)

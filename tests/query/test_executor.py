"""Query execution over the parallel store."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport
from repro.query.ast import (
    CompareFilter,
    STWithinFilter,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.query.executor import QueryExecutor
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal
from repro.rdf.transform import RdfTransformer, entity_iri
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import GridPartitioner, HashPartitioner


def report(entity="V1", t=0.0, lon=24.0, lat=37.0, speed=5.0):
    return PositionReport(
        entity_id=entity, t=t, lon=lon, lat=lat, speed=speed, heading=90.0
    )


@pytest.fixture()
def loaded():
    """A store with 3 entities × 10 nodes each plus entity metadata."""
    grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)
    transformer = RdfTransformer(st_grid=grid)
    store = ParallelRDFStore(GridPartitioner(grid, 4))
    from repro.model.entities import Vessel

    for v, lon0 in (("V1", 23.0), ("V2", 25.0), ("V3", 27.0)):
        store.add_document(transformer.entity_to_triples(Vessel(v, f"MV {v}")))
        for i in range(10):
            store.add_document(
                transformer.report_to_triples(
                    report(entity=v, t=float(i * 60), lon=lon0 + 0.01 * i, speed=4.0 + i)
                )
            )
    return QueryExecutor(store)


class TestBgpJoin:
    def test_star_query_counts(self, loaded):
        n, t = Variable("n"), Variable("t")
        query = SelectQuery(
            select=(n, t),
            patterns=(
                TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
                TriplePattern(n, V.PROP_TIMESTAMP, t),
            ),
        )
        rows, info = loaded.execute(query)
        assert len(rows) == 30
        assert info.strategy == "partition-local"

    def test_anchored_entity_query(self, loaded):
        n = Variable("n")
        query = SelectQuery(
            select=(n,),
            patterns=(TriplePattern(n, V.PROP_OF_MOVING_OBJECT, entity_iri("V2")),),
        )
        rows, __ = loaded.execute(query)
        assert len(rows) == 10

    def test_cross_subject_join_global(self, loaded):
        n, obj, name = Variable("n"), Variable("o"), Variable("name")
        query = SelectQuery(
            select=(n, name),
            patterns=(
                TriplePattern(n, V.PROP_OF_MOVING_OBJECT, obj),
                TriplePattern(obj, V.PROP_NAME, name),
            ),
        )
        rows, info = loaded.execute(query)
        assert info.strategy == "global"
        assert len(rows) == 30
        names = {row[name].value for row in rows}
        assert names == {"MV V1", "MV V2", "MV V3"}

    def test_join_consistency_enforced(self, loaded):
        # ?n must be the same node across patterns; pairing each node's
        # timestamp with its own speed gives exactly 30 rows (not 30×30).
        n, t, s = Variable("n"), Variable("t"), Variable("s")
        query = SelectQuery(
            select=(n, t, s),
            patterns=(
                TriplePattern(n, V.PROP_TIMESTAMP, t),
                TriplePattern(n, V.PROP_SPEED, s),
            ),
        )
        rows, __ = loaded.execute(query)
        assert len(rows) == 30

    def test_unknown_constant_zero_rows(self, loaded):
        n = Variable("n")
        query = SelectQuery(
            select=(n,),
            patterns=(TriplePattern(n, V.PROP_OF_MOVING_OBJECT, entity_iri("GHOST")),),
        )
        rows, __ = loaded.execute(query)
        assert rows == []


class TestFilters:
    def test_compare_filter(self, loaded):
        n, s = Variable("n"), Variable("s")
        query = SelectQuery(
            select=(n,),
            patterns=(TriplePattern(n, V.PROP_SPEED, s),),
            filters=(CompareFilter(s, ">=", 10.0),),
        )
        rows, __ = loaded.execute(query)
        # speeds 4..13 per vessel; >=10 keeps 4 per vessel.
        assert len(rows) == 12

    def test_st_within_prunes_and_filters(self, loaded):
        n = Variable("n")
        query = SelectQuery(
            select=(n,),
            patterns=(TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),),
            filters=(STWithinFilter(n, BBox(24.9, 36.5, 25.2, 37.5), 0.0, 240.0),),
        )
        rows, info = loaded.execute(query)
        # V2 nodes at lon 25.00..25.09, t 0..540; t<=240 keeps 5.
        assert len(rows) == 5
        assert info.pruning_ratio > 0.0
        assert info.partitions_scanned < info.partitions_total


class TestHelpers:
    def test_entity_trajectory_roundtrip(self, loaded):
        trajectory = loaded.entity_trajectory("V1")
        assert len(trajectory) == 10
        assert trajectory.start_time == 0.0
        assert trajectory.end_time == 540.0

    def test_range_query(self, loaded):
        nodes, info = loaded.range_query(BBox(22.9, 36.9, 23.2, 37.1))
        assert len(nodes) == 10
        assert all(isinstance(n, IRI) for n in nodes)

    def test_describe_returns_subject_document(self, loaded):
        from repro.rdf.transform import position_node_iri

        node = position_node_iri("V1", 0.0)
        triples = loaded.describe(node)
        assert len(triples) >= 8
        assert all(t.s == node for t in triples)

    def test_describe_unknown_subject_empty(self, loaded):
        assert loaded.describe(IRI("http://nowhere/x")) == []

    def test_knn_orders_by_distance(self, loaded):
        results = loaded.knn_nodes(25.0, 37.0, k=5)
        assert len(results) == 5
        distances = [d for __, d in results]
        assert distances == sorted(distances)

    def test_knn_k_validation(self, loaded):
        with pytest.raises(ValueError):
            loaded.knn_nodes(25.0, 37.0, k=0)

    def test_report_speedup_fields(self, loaded):
        __, info = loaded.range_query(BBox(22.0, 35.0, 29.0, 41.0))
        assert info.sequential_s >= 0.0
        assert info.makespan_s > 0.0
        assert info.simulated_speedup >= 0.0


class TestHashStoreEquivalence:
    def test_results_independent_of_partitioner(self):
        """The same data under hash vs grid partitioning answers alike."""
        grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=8, ny=8)
        transformer = RdfTransformer(st_grid=grid)
        reports = [
            report(entity=f"V{i % 3}", t=float(i * 30), lon=23.0 + 0.2 * i)
            for i in range(15)
        ]
        results = []
        for partitioner in (HashPartitioner(4), GridPartitioner(grid, 4)):
            store = ParallelRDFStore(partitioner)
            for r in reports:
                store.add_document(transformer.report_to_triples(r))
            executor = QueryExecutor(store)
            nodes, __ = executor.range_query(BBox(23.0, 36.0, 25.0, 38.0))
            results.append(sorted(n.value for n in nodes))
        assert results[0] == results[1]

"""The SPARQL-like textual query language."""

import pytest

from repro.geo.bbox import BBox
from repro.query.ast import CompareFilter, STWithinFilter, Variable
from repro.query.parser import QueryParseError, parse_query
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal


class TestBasicParsing:
    def test_minimal_query(self):
        q = parse_query("SELECT ?s WHERE { ?s rdf:type dac:Vessel . }")
        assert q.select == (Variable("s"),)
        assert len(q.patterns) == 1
        assert q.patterns[0].p == V.PROP_TYPE
        assert q.patterns[0].o == V.CLASS_VESSEL

    def test_multiple_patterns_and_vars(self):
        q = parse_query(
            "SELECT ?n ?t WHERE { ?n rdf:type dac:SemanticNode . ?n time:inSeconds ?t . }"
        )
        assert len(q.patterns) == 2
        assert q.is_subject_star() == Variable("n")

    def test_a_shorthand_for_rdf_type(self):
        q = parse_query("SELECT ?s WHERE { ?s a dac:Vessel . }")
        assert q.patterns[0].p == V.PROP_TYPE

    def test_explicit_iriref(self):
        q = parse_query("SELECT ?s WHERE { ?s <http://x/p> <http://x/o> . }")
        assert q.patterns[0].p == IRI("http://x/p")

    def test_numeric_literals(self):
        q = parse_query("SELECT ?s WHERE { ?s dac:speed 5.5 . ?s dac:maxSpeed 10 . }")
        assert q.patterns[0].o == Literal(5.5, V.XSD_DOUBLE)
        assert q.patterns[1].o == Literal(10, V.XSD_LONG)

    def test_string_literal(self):
        q = parse_query('SELECT ?s WHERE { ?s dac:name "MV Alpha" . }')
        assert q.patterns[0].o.value == "MV Alpha"

    def test_custom_prefix(self):
        q = parse_query(
            'PREFIX ex: <http://example.org/> '
            'SELECT ?s WHERE { ?s ex:p ex:o . }'
        )
        assert q.patterns[0].p == IRI("http://example.org/p")


class TestFilterParsing:
    def test_st_within_bbox_only(self):
        q = parse_query(
            "SELECT ?n WHERE { ?n a dac:SemanticNode . "
            "FILTER ST_WITHIN(?n, 23.0, 37.0, 25.0, 38.0) }"
        )
        (flt,) = q.filters
        assert isinstance(flt, STWithinFilter)
        assert flt.bbox == BBox(23.0, 37.0, 25.0, 38.0)
        assert flt.t_from == float("-inf")

    def test_st_within_with_time(self):
        q = parse_query(
            "SELECT ?n WHERE { ?n a dac:SemanticNode . "
            "FILTER ST_WITHIN(?n, 23.0, 37.0, 25.0, 38.0, 0, 3600) }"
        )
        (flt,) = q.filters
        assert flt.t_from == 0.0 and flt.t_to == 3600.0

    def test_compare_filter(self):
        q = parse_query(
            "SELECT ?t WHERE { ?n time:inSeconds ?t . FILTER (?t >= 100) }"
        )
        (flt,) = q.filters
        assert isinstance(flt, CompareFilter)
        assert flt.op == ">=" and flt.value == 100.0


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "WHERE { ?s ?p ?o . }",                       # missing SELECT
            "SELECT WHERE { ?s ?p ?o . }",                # no variables
            "SELECT ?s WHERE { ?s ?p ?o . ",              # unterminated block
            "SELECT ?s WHERE { ?s unknown:p ?o . }",      # unknown prefix
            "SELECT ?s WHERE { ?s rdf:type }",            # incomplete pattern
            "SELECT ?s WHERE { ?s a dac:Vessel . FILTER ST_WITHIN(?s, 1, 2) }",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)

    def test_unknown_character(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?s WHERE { ?s € ?o . }")


class TestEndToEnd:
    def test_parsed_query_executes(self, maritime_sample, aegean_grid):
        from repro.query.executor import QueryExecutor
        from repro.rdf.transform import RdfTransformer
        from repro.store.parallel import ParallelRDFStore
        from repro.store.partition import HilbertPartitioner

        transformer = RdfTransformer(st_grid=aegean_grid)
        store = ParallelRDFStore(HilbertPartitioner(aegean_grid, 4))
        for r in maritime_sample.reports[:300]:
            store.add_document(transformer.report_to_triples(r))
        executor = QueryExecutor(store)
        q = parse_query(
            "SELECT ?n ?t WHERE { ?n rdf:type dac:SemanticNode . "
            "?n time:inSeconds ?t . FILTER (?t >= 0) }"
        )
        rows, info = executor.execute(q)
        assert len(rows) == 300

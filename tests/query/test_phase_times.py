"""Execution reports account for every phase (parse/plan/scan/postprocess)."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport
from repro.obs import MetricsRegistry
from repro.query.ast import SelectQuery, TriplePattern, Variable
from repro.query.executor import QueryExecutor
from repro.rdf import vocabulary as V
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import GridPartitioner

#: Phase sums exclude only span bookkeeping, so the tolerance is loose
#: enough for CI noise yet tight enough to catch a dropped phase.
TOLERANCE = 0.5


def build_executor(metrics=None):
    grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)
    transformer = RdfTransformer(st_grid=grid)
    store = ParallelRDFStore(GridPartitioner(grid, 4))
    for v, lon0 in (("V1", 23.0), ("V2", 25.0), ("V3", 27.0)):
        for i in range(10):
            store.add_document(
                transformer.report_to_triples(
                    PositionReport(
                        entity_id=v,
                        t=float(i * 60),
                        lon=lon0 + 0.01 * i,
                        lat=37.0,
                        speed=5.0,
                    )
                )
            )
    return QueryExecutor(store, metrics=metrics)


def node_query():
    n, t = Variable("n"), Variable("t")
    return SelectQuery(
        select=(n, t),
        patterns=(
            TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
            TriplePattern(n, V.PROP_TIMESTAMP, t),
        ),
    )


class TestPhaseAccounting:
    def test_phases_sum_to_total(self):
        executor = build_executor()
        _, report = executor.execute(node_query())
        total_of_phases = sum(report.phase_times().values())
        assert report.total_s > 0
        assert total_of_phases == pytest.approx(
            report.total_s, rel=TOLERANCE, abs=2e-3
        )

    def test_plan_and_postprocess_are_timed(self):
        # The historic bug: parse/plan time was silently dropped from the
        # report, so totals understated what the caller actually paid.
        executor = build_executor()
        _, report = executor.execute(node_query())
        assert report.plan_s > 0
        assert report.postprocess_s >= 0
        assert report.total_s >= report.scan_s + report.plan_s

    def test_scan_alias_matches_sequential(self):
        executor = build_executor()
        _, report = executor.execute(node_query())
        assert report.scan_s == report.sequential_s

    def test_execute_text_includes_parse_in_total(self):
        executor = build_executor()
        rows, report = executor.execute_text(
            "SELECT ?n WHERE { ?n a dac:SemanticNode . }"
        )
        assert len(rows) == 30
        assert report.parse_s > 0
        phases = report.phase_times()
        assert phases["parse_s"] == report.parse_s
        assert sum(phases.values()) == pytest.approx(
            report.total_s, rel=TOLERANCE, abs=2e-3
        )

    def test_prebuilt_query_has_zero_parse(self):
        executor = build_executor()
        _, report = executor.execute(node_query())
        assert report.parse_s == 0.0


class TestReportShape:
    def test_summary_is_flat_floats(self):
        executor = build_executor()
        _, report = executor.execute(node_query())
        summary = report.summary()
        for key in (
            "n_results",
            "parse_ms",
            "plan_ms",
            "scan_ms",
            "postprocess_ms",
            "total_ms",
            "makespan_ms",
            "simulated_speedup",
        ):
            assert isinstance(summary[key], float)

    def test_as_dict_common_schema(self):
        executor = build_executor()
        _, report = executor.execute(node_query())
        d = report.as_dict()
        assert d["kind"] == "query"
        assert set(d) == {"kind", "summary", "metrics"}

    def test_metrics_empty_without_registry(self):
        executor = build_executor()
        _, report = executor.execute(node_query())
        assert report.metrics == {}


class TestExecutorInstrumentation:
    def test_query_histograms_and_spans(self):
        metrics = MetricsRegistry(seed=3)
        executor = build_executor(metrics=metrics)
        _, report = executor.execute(node_query())
        names = set(metrics.histogram_names())
        assert {"query.plan", "query.scan", "query.postprocess", "query.total"} <= names
        assert metrics.counters()["query.executed"] == 1
        span_names = [s.name for s in metrics.spans]
        assert "query.execute" in span_names
        assert "query.scan" in span_names
        assert report.metrics["counters"]["query.executed"] == 1

    def test_execute_text_records_parse_histogram(self):
        metrics = MetricsRegistry(seed=3)
        executor = build_executor(metrics=metrics)
        executor.execute_text("SELECT ?n WHERE { ?n a dac:SemanticNode . }")
        assert metrics.histogram("query.parse").count == 1

    def test_repeated_queries_accumulate(self):
        metrics = MetricsRegistry(seed=3)
        executor = build_executor(metrics=metrics)
        for _ in range(3):
            executor.execute(node_query())
        assert metrics.counters()["query.executed"] == 3
        assert metrics.histogram("query.total").count == 3

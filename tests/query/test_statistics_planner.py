"""Statistics-based query planning."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.entities import Vessel
from repro.model.reports import PositionReport
from repro.query.ast import SelectQuery, TriplePattern, Variable
from repro.query.executor import QueryExecutor
from repro.query.planner import StatisticsEstimator, order_patterns
from repro.rdf import vocabulary as V
from repro.rdf.transform import RdfTransformer, entity_iri
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import HashPartitioner


@pytest.fixture()
def store():
    transformer = RdfTransformer(
        st_grid=GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=8, ny=8)
    )
    s = ParallelRDFStore(HashPartitioner(2))
    # Heavy skew: V1 has 50 nodes, V2 has 1.
    for v, count in (("V1", 50), ("V2", 1)):
        s.add_document(transformer.entity_to_triples(Vessel(v, f"MV {v}")))
        for i in range(count):
            s.add_document(
                transformer.report_to_triples(
                    PositionReport(
                        entity_id=v, t=float(i * 30), lon=24.0 + 0.01 * i, lat=37.0,
                        speed=5.0, heading=90.0,
                    )
                )
            )
    return s


class TestStatisticsEstimator:
    def test_counts_reflect_data(self, store):
        estimator = StatisticsEstimator(store)
        n = Variable("n")
        heavy = TriplePattern(n, V.PROP_OF_MOVING_OBJECT, entity_iri("V1"))
        light = TriplePattern(n, V.PROP_OF_MOVING_OBJECT, entity_iri("V2"))
        assert estimator(heavy, set()) == 50.0
        assert estimator(light, set()) == 1.0

    def test_unknown_constant_estimates_zero(self, store):
        estimator = StatisticsEstimator(store)
        ghost = TriplePattern(
            Variable("n"), V.PROP_OF_MOVING_OBJECT, entity_iri("GHOST")
        )
        assert estimator(ghost, set()) == 0.0

    def test_bound_variables_reduce_estimate(self, store):
        estimator = StatisticsEstimator(store)
        n, t = Variable("n"), Variable("t")
        pattern = TriplePattern(n, V.PROP_TIMESTAMP, t)
        assert estimator(pattern, {n}) < estimator(pattern, set())

    def test_caching(self, store):
        estimator = StatisticsEstimator(store)
        pattern = TriplePattern(Variable("n"), V.PROP_TIMESTAMP, Variable("t"))
        first = estimator(pattern, set())
        assert estimator(pattern, set()) == first
        assert len(estimator._cache) == 1

    def test_validation(self, store):
        with pytest.raises(ValueError):
            StatisticsEstimator(store, bound_selectivity=1.0)


class TestPlanWithStatistics:
    def test_selective_pattern_first(self, store):
        estimator = StatisticsEstimator(store)
        n = Variable("n")
        broad = TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE)   # 51 matches
        narrow = TriplePattern(n, V.PROP_OF_MOVING_OBJECT, entity_iri("V2"))  # 1
        ordered = order_patterns((broad, narrow), estimator=estimator)
        assert ordered[0] is narrow

    def test_executor_results_identical_with_statistics(self, store):
        n, t = Variable("n"), Variable("t")
        query = SelectQuery(
            select=(n, t),
            patterns=(
                TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
                TriplePattern(n, V.PROP_TIMESTAMP, t),
            ),
        )
        heuristic_rows, __ = QueryExecutor(store).execute(query)
        statistic_rows, __ = QueryExecutor(store, use_statistics=True).execute(query)
        key = lambda row: sorted((v.name, str(term)) for v, term in row.items())
        assert sorted(map(key, heuristic_rows)) == sorted(map(key, statistic_rows))

    def test_dead_pattern_short_circuits(self, store):
        n, t = Variable("n"), Variable("t")
        query = SelectQuery(
            select=(n,),
            patterns=(
                TriplePattern(n, V.PROP_TIMESTAMP, t),
                TriplePattern(n, V.PROP_OF_MOVING_OBJECT, entity_iri("GHOST")),
            ),
        )
        rows, __ = QueryExecutor(store, use_statistics=True).execute(query)
        assert rows == []

"""Parallel RDF store: routing, matching, stats."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.transform import RdfTransformer, position_node_iri
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import GridPartitioner, HashPartitioner, HilbertPartitioner


@pytest.fixture()
def grid():
    return GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)


@pytest.fixture()
def transformer(grid):
    return RdfTransformer(st_grid=grid)


def report(entity="V1", t=0.0, lon=24.0, lat=37.0):
    return PositionReport(entity_id=entity, t=t, lon=lon, lat=lat, speed=5.0, heading=90.0)


class TestDocumentRouting:
    def test_single_subject_enforced(self, grid, transformer):
        store = ParallelRDFStore(HashPartitioner(4))
        mixed = [
            Triple(IRI("a"), V.PROP_NAME, Literal("x")),
            Triple(IRI("b"), V.PROP_NAME, Literal("y")),
        ]
        with pytest.raises(ValueError):
            store.add_document(mixed)

    def test_empty_document_rejected(self):
        store = ParallelRDFStore(HashPartitioner(4))
        with pytest.raises(ValueError):
            store.add_document([])

    def test_spatial_routing_uses_key(self, grid, transformer):
        store = ParallelRDFStore(GridPartitioner(grid, 4))
        west = transformer.report_to_triples(report(entity="W", lon=22.2, lat=35.2))
        east = transformer.report_to_triples(report(entity="E", lon=28.8, lat=40.8))
        p_west = store.add_document(west)
        p_east = store.add_document(east)
        assert p_west != p_east

    def test_placement_stable_for_repeated_subject(self, grid, transformer):
        store = ParallelRDFStore(GridPartitioner(grid, 4))
        doc = transformer.report_to_triples(report())
        first = store.add_document(doc)
        again = store.add_document(doc)
        assert first == again
        # No duplicate triples were added.
        assert len(store) == len(doc)

    def test_subject_star_colocated(self, grid, transformer):
        """All triples of one subject live in exactly one partition."""
        store = ParallelRDFStore(HilbertPartitioner(grid, 4))
        doc = transformer.report_to_triples(report())
        store.add_document(doc)
        node_id = store.dictionary.try_encode(doc[0].s)
        holding = [
            i for i, partition in enumerate(store.partitions)
            if any(True for __ in partition.match(s=node_id))
        ]
        assert len(holding) == 1


class TestMatching:
    def test_match_across_partitions(self, grid, transformer):
        store = ParallelRDFStore(GridPartitioner(grid, 4))
        for i in range(10):
            store.add_document(
                transformer.report_to_triples(
                    report(entity=f"V{i}", lon=22.5 + i * 0.6, t=float(i))
                )
            )
        nodes = list(store.match(None, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE))
        assert len(nodes) == 10

    def test_match_unknown_term_empty(self, grid, transformer):
        store = ParallelRDFStore(HashPartitioner(2))
        store.add_document(transformer.report_to_triples(report()))
        assert list(store.match(IRI("http://nowhere/x"), None, None)) == []

    def test_match_restricted_partitions(self, grid, transformer):
        store = ParallelRDFStore(GridPartitioner(grid, 4))
        west = transformer.report_to_triples(report(entity="W", lon=22.2, lat=35.2))
        p_west = store.add_document(west)
        found = list(
            store.match(None, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE, partitions=[p_west])
        )
        assert len(found) == 1
        others = [i for i in range(4) if i != p_west]
        assert list(
            store.match(None, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE, partitions=others)
        ) == []

    def test_count(self, grid, transformer):
        store = ParallelRDFStore(HashPartitioner(3))
        for i in range(7):
            store.add_document(transformer.report_to_triples(report(entity=f"V{i}")))
        assert store.count(None, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE) == 7
        assert store.count(IRI("http://nowhere/x"), None, None) == 0


class TestStats:
    def test_triples_accounted(self, grid, transformer):
        store = ParallelRDFStore(HashPartitioner(4))
        total = 0
        for i in range(20):
            doc = transformer.report_to_triples(report(entity=f"V{i}", t=float(i)))
            store.add_document(doc)
            total += len(doc)
        stats = store.stats()
        assert sum(stats.triples_per_partition) == total == len(store)
        assert sum(stats.subjects_per_partition) == 20
        assert stats.imbalance >= 1.0

    def test_bbox_pruning_delegated(self, grid, transformer):
        store = ParallelRDFStore(GridPartitioner(grid, 8))
        pruned = store.partitions_for_bbox(BBox(22.5, 35.5, 23.0, 36.0))
        assert len(pruned) < 8

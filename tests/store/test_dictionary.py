"""Term dictionary."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.terms import IRI, Literal
from repro.store.dictionary import TermDictionary


class TestTermDictionary:
    def test_encode_stable(self):
        d = TermDictionary()
        a = d.encode(IRI("x"))
        assert d.encode(IRI("x")) == a
        assert len(d) == 1

    def test_ids_dense(self):
        d = TermDictionary()
        ids = [d.encode(IRI(f"t{i}")) for i in range(10)]
        assert ids == list(range(10))

    def test_decode_inverse(self):
        d = TermDictionary()
        term = Literal(3.5, "dt")
        assert d.decode(d.encode(term)) == term

    def test_try_encode_does_not_pollute(self):
        d = TermDictionary()
        assert d.try_encode(IRI("unseen")) is None
        assert len(d) == 0
        assert IRI("unseen") not in d

    def test_decode_unknown_raises(self):
        d = TermDictionary()
        with pytest.raises(IndexError):
            d.decode(0)
        with pytest.raises(IndexError):
            d.decode(-1)

    def test_distinct_term_types_distinct_ids(self):
        d = TermDictionary()
        assert d.encode(IRI("x")) != d.encode(Literal("x"))

    @given(values=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_many(self, values):
        d = TermDictionary()
        terms = [Literal(v) for v in values]
        ids = [d.encode(t) for t in terms]
        assert [d.decode(i) for i in ids] == terms

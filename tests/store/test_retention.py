"""Store deletion and time-based retention."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.entities import Vessel
from repro.model.events import ComplexEvent
from repro.model.reports import PositionReport
from repro.rdf import vocabulary as V
from repro.rdf.transform import RdfTransformer, entity_iri, position_node_iri
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import HilbertPartitioner


@pytest.fixture()
def loaded():
    grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)
    transformer = RdfTransformer(st_grid=grid)
    store = ParallelRDFStore(HilbertPartitioner(grid, 4))
    store.add_document(transformer.entity_to_triples(Vessel("V1", "MV One")))
    for i in range(10):
        store.add_document(
            transformer.report_to_triples(
                PositionReport(
                    entity_id="V1", t=float(i * 100), lon=23.0 + 0.1 * i, lat=37.0,
                    speed=5.0, heading=90.0,
                )
            )
        )
    store.add_document(
        transformer.event_to_triples(
            ComplexEvent("collision_risk", ("V1", "V2"), 50.0, 60.0)
        )
    )
    return store


class TestRemoveSubject:
    def test_remove_one_node(self, loaded):
        before = len(loaded)
        node = position_node_iri("V1", 300.0)
        removed = loaded.remove_subject(node)
        assert removed > 0
        assert len(loaded) == before - removed
        assert list(loaded.match(node, None, None)) == []

    def test_remove_unknown_subject(self, loaded):
        assert loaded.remove_subject(position_node_iri("GHOST", 0.0)) == 0

    def test_reinsert_after_remove(self, loaded):
        grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)
        transformer = RdfTransformer(st_grid=grid)
        node = position_node_iri("V1", 300.0)
        loaded.remove_subject(node)
        doc = transformer.report_to_triples(
            PositionReport(entity_id="V1", t=300.0, lon=23.3, lat=37.0,
                           speed=5.0, heading=90.0)
        )
        loaded.add_document(doc)
        assert loaded.count(node, None, None) == len(doc)


class TestExpireBefore:
    def test_old_nodes_expire(self, loaded):
        subjects, triples = loaded.expire_before(500.0)
        assert subjects == 5  # nodes at t = 0..400
        assert triples > 0
        remaining = [
            float(t.o.value)
            for t in loaded.match(None, V.PROP_TIMESTAMP, None)
        ]
        assert all(ts >= 500.0 for ts in remaining)

    def test_entities_and_events_survive(self, loaded):
        loaded.expire_before(10_000.0)  # expire every position node
        assert loaded.count(entity_iri("V1"), None, None) > 0
        assert loaded.count(None, V.PROP_EVENT_TYPE, None) == 1

    def test_expire_empty_store(self):
        grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=4, ny=4)
        store = ParallelRDFStore(HilbertPartitioner(grid, 2))
        assert store.expire_before(100.0) == (0, 0)

    def test_queries_consistent_after_expiry(self, loaded):
        from repro.query.executor import QueryExecutor

        loaded.expire_before(500.0)
        executor = QueryExecutor(loaded)
        trajectory = executor.entity_trajectory("V1")
        assert len(trajectory) == 5
        assert trajectory.start_time == 500.0

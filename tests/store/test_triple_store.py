"""Single-partition triple store: all pattern shapes, vs brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.triple_store import TripleStore


@pytest.fixture()
def store():
    s = TripleStore()
    s.add(1, 10, 100)
    s.add(1, 10, 101)
    s.add(1, 11, 100)
    s.add(2, 10, 100)
    return s


class TestAddRemove:
    def test_add_counts(self, store):
        assert len(store) == 4

    def test_duplicate_add_ignored(self, store):
        assert not store.add(1, 10, 100)
        assert len(store) == 4

    def test_remove(self, store):
        assert store.remove(1, 10, 100)
        assert len(store) == 3
        assert not store.contains(1, 10, 100)

    def test_remove_absent(self, store):
        assert not store.remove(9, 9, 9)

    def test_contains(self, store):
        assert store.contains(2, 10, 100)
        assert not store.contains(2, 11, 100)


class TestMatchShapes:
    ALL = [(1, 10, 100), (1, 10, 101), (1, 11, 100), (2, 10, 100)]

    @pytest.mark.parametrize(
        "pattern",
        list(itertools.product([1, None], [10, None], [100, None])),
    )
    def test_every_shape_matches_brute_force(self, store, pattern):
        s, p, o = pattern
        expected = sorted(
            t for t in self.ALL
            if (s is None or t[0] == s)
            and (p is None or t[1] == p)
            and (o is None or t[2] == o)
        )
        assert sorted(store.match(s, p, o)) == expected

    def test_count_matches_agrees(self, store):
        for s in (1, 2, None):
            for p in (10, 11, None):
                for o in (100, 101, None):
                    assert store.count_matches(s, p, o) == len(list(store.match(s, p, o)))

    def test_subjects(self, store):
        assert sorted(store.subjects()) == [1, 2]


class TestRandomizedConsistency:
    @given(
        triples=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 4), st.integers(0, 8)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_match_equals_reference_set(self, triples):
        store = TripleStore()
        reference = set()
        for s, p, o in triples:
            store.add(s, p, o)
            reference.add((s, p, o))
        assert len(store) == len(reference)
        assert set(store.match()) == reference
        # Spot-check bound patterns.
        s0, p0, o0 = triples[0]
        assert set(store.match(s=s0)) == {t for t in reference if t[0] == s0}
        assert set(store.match(p=p0)) == {t for t in reference if t[1] == p0}
        assert set(store.match(o=o0)) == {t for t in reference if t[2] == o0}

    @given(
        triples=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3), st.integers(0, 5)),
            min_size=1,
            max_size=40,
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_remove_maintains_indexes(self, triples, seed):
        store = TripleStore()
        reference = set()
        for t in triples:
            store.add(*t)
            reference.add(t)
        rng = np.random.default_rng(seed)
        doomed = [t for t in reference if rng.random() < 0.5]
        for t in doomed:
            store.remove(*t)
            reference.discard(t)
        assert set(store.match()) == reference
        for s, p, o in reference:
            assert store.contains(s, p, o)

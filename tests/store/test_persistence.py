"""Store persistence: export/import round trips."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.entities import Vessel
from repro.model.reports import PositionReport
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import GridPartitioner, HashPartitioner, HilbertPartitioner
from repro.store.persistence import export_store, import_store, roundtrip_equal


@pytest.fixture()
def populated():
    grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)
    transformer = RdfTransformer(st_grid=grid)
    store = ParallelRDFStore(HilbertPartitioner(grid, 4))
    store.add_document(transformer.entity_to_triples(Vessel("V1", "MV One")))
    for i in range(30):
        store.add_document(
            transformer.report_to_triples(
                PositionReport(
                    entity_id="V1", t=float(i * 60), lon=23.0 + 0.05 * i, lat=37.0,
                    speed=5.0, heading=90.0,
                )
            )
        )
    return (store, grid)


class TestRoundTrip:
    def test_same_partitioner_identical(self, populated, tmp_path):
        store, grid = populated
        path = str(tmp_path / "dump.nt")
        written = export_store(store, path)
        assert written == len(store)
        back = import_store(path, HilbertPartitioner(grid, 4))
        assert roundtrip_equal(store, back)
        assert len(back) == len(store)

    def test_different_partitioner_same_content(self, populated, tmp_path):
        store, grid = populated
        path = str(tmp_path / "dump.nt")
        export_store(store, path)
        back = import_store(path, HashPartitioner(2))
        assert roundtrip_equal(store, back)

    def test_reimported_store_answers_queries(self, populated, tmp_path):
        from repro.query.executor import QueryExecutor

        store, grid = populated
        path = str(tmp_path / "dump.nt")
        export_store(store, path)
        back = import_store(path, GridPartitioner(grid, 4))
        executor = QueryExecutor(back)
        trajectory = executor.entity_trajectory("V1")
        assert len(trajectory) == 30

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            import_store(str(tmp_path / "nope.nt"), HashPartitioner(2))

    def test_placement_follows_new_partitioner(self, populated, tmp_path):
        store, grid = populated
        path = str(tmp_path / "dump.nt")
        export_store(store, path)
        back = import_store(path, GridPartitioner(grid, 4))
        # Spatial pruning still works after the reload (keys were
        # persisted inside the documents).
        pruned = back.partitions_for_bbox(BBox(22.5, 35.5, 23.0, 36.0))
        assert len(pruned) < 4

"""Partitioning strategies: routing, balance and pruning."""

import numpy as np
import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.rdf.transform import RdfTransformer
from repro.store.partition import (
    GridPartitioner,
    HashPartitioner,
    HilbertPartitioner,
    QuadTreePartitioner,
)


@pytest.fixture()
def grid():
    return GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)


@pytest.fixture()
def transformer(grid):
    return RdfTransformer(st_grid=grid)


def keys_uniform(transformer, n=500, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for __ in range(n):
        lon = float(rng.uniform(22.0, 29.0))
        lat = float(rng.uniform(35.0, 41.0))
        out.append(transformer.st_key(lon, lat, float(rng.uniform(0, 7200))))
    return out


def keys_skewed(transformer, n=500, seed=0):
    """80% of keys in one small corner — the skew that breaks grids."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        if i % 5 == 0:
            lon = float(rng.uniform(22.0, 29.0))
            lat = float(rng.uniform(35.0, 41.0))
        else:
            lon = float(rng.uniform(23.3, 23.9))
            lat = float(rng.uniform(37.6, 38.1))
        out.append(transformer.st_key(lon, lat, 0.0))
    return out


class TestValidation:
    def test_positive_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_grid_more_partitions_than_cells(self, grid):
        with pytest.raises(ValueError):
            GridPartitioner(grid, grid.n_cells + 1)


class TestRoutingRange:
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 16])
    def test_all_strategies_route_in_range(self, grid, transformer, n):
        keys = keys_uniform(transformer, 200)
        for partitioner in (
            HashPartitioner(n),
            GridPartitioner(grid, n),
            HilbertPartitioner(grid, n),
            HilbertPartitioner(grid, n, sample_keys=keys),
            QuadTreePartitioner(grid, n, sample_keys=keys),
        ):
            for key in keys:
                assert 0 <= partitioner.partition_for_key(key) < n
            for subject in range(50):
                assert 0 <= partitioner.partition_for_subject(subject) < n

    def test_routing_deterministic(self, grid, transformer):
        keys = keys_uniform(transformer, 50)
        p = HilbertPartitioner(grid, 8, sample_keys=keys)
        assert [p.partition_for_key(k) for k in keys] == [
            p.partition_for_key(k) for k in keys
        ]


class TestPruning:
    def test_hash_never_prunes(self, grid):
        partitioner = HashPartitioner(8)
        assert partitioner.partitions_for_bbox(BBox(23.0, 37.0, 23.5, 37.5)) == set(range(8))
        assert not partitioner.uses_spatial_key

    def test_grid_prunes_small_query(self, grid):
        partitioner = GridPartitioner(grid, 8)
        pruned = partitioner.partitions_for_bbox(BBox(23.0, 37.0, 23.4, 37.3))
        assert 0 < len(pruned) < 8

    def test_hilbert_prunes_small_query(self, grid):
        partitioner = HilbertPartitioner(grid, 8)
        pruned = partitioner.partitions_for_bbox(BBox(23.0, 37.0, 23.4, 37.3))
        assert 0 < len(pruned) < 8

    def test_pruning_sound(self, grid, transformer):
        """Every key inside the query bbox routes to a returned partition."""
        query = BBox(24.0, 37.0, 26.0, 39.0)
        rng = np.random.default_rng(3)
        sample = keys_uniform(transformer, 400, seed=9)
        for partitioner in (
            GridPartitioner(grid, 8),
            HilbertPartitioner(grid, 8),
            QuadTreePartitioner(grid, 8, sample_keys=sample),
        ):
            allowed = partitioner.partitions_for_bbox(query)
            for __ in range(300):
                lon = float(rng.uniform(query.min_lon, query.max_lon))
                lat = float(rng.uniform(query.min_lat, query.max_lat))
                key = transformer.st_key(lon, lat, 0.0)
                assert partitioner.partition_for_key(key) in allowed


class TestBalance:
    @staticmethod
    def imbalance(partitioner, keys):
        counts = np.zeros(partitioner.n_partitions)
        for key in keys:
            counts[partitioner.partition_for_key(key)] += 1
        return counts.max() / counts.mean()

    def test_sampled_hilbert_beats_grid_under_skew(self, grid, transformer):
        keys = keys_skewed(transformer, 1000)
        grid_imb = self.imbalance(GridPartitioner(grid, 8), keys)
        hilbert_imb = self.imbalance(
            HilbertPartitioner(grid, 8, sample_keys=keys), keys
        )
        assert hilbert_imb < grid_imb

    def test_quadtree_balances_under_skew(self):
        # Balance is bounded below by the heaviest single cell (all its
        # keys share a partition), so use a fine grid where the hotspot
        # spans many cells and the adaptive tree can actually split it.
        fine_grid = GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=64, ny=64)
        fine_tx = RdfTransformer(st_grid=fine_grid)
        keys = keys_skewed(fine_tx, 2000)
        grid_imb = self.imbalance(GridPartitioner(fine_grid, 8), keys)
        quad_imb = self.imbalance(
            QuadTreePartitioner(fine_grid, 8, sample_keys=keys), keys
        )
        assert quad_imb < grid_imb
        assert quad_imb < 2.0

    def test_quadtree_prunes(self, grid, transformer):
        keys = keys_uniform(transformer, 800)
        partitioner = QuadTreePartitioner(grid, 8, sample_keys=keys)
        pruned = partitioner.partitions_for_bbox(BBox(23.0, 37.0, 23.6, 37.5))
        assert 0 < len(pruned) < 8

    def test_quadtree_without_sample_degenerates_safely(self, grid, transformer):
        partitioner = QuadTreePartitioner(grid, 4, sample_keys=None)
        keys = keys_uniform(transformer, 50)
        for key in keys:
            assert 0 <= partitioner.partition_for_key(key) < 4
        assert partitioner.partitions_for_bbox(BBox(23.0, 37.0, 23.6, 37.5))

    def test_uniform_traffic_reasonably_balanced(self, grid, transformer):
        keys = keys_uniform(transformer, 2000)
        for partitioner in (
            GridPartitioner(grid, 8),
            HilbertPartitioner(grid, 8, sample_keys=keys),
        ):
            assert self.imbalance(partitioner, keys) < 2.0

"""ASCII map rendering."""

import numpy as np

from repro.geo.bbox import BBox
from repro.model.trajectory import Trajectory
from repro.viz.ascii_map import ascii_density, ascii_trajectories


class TestAsciiDensity:
    def test_empty_grid_blank(self):
        text = ascii_density(np.zeros((4, 6)))
        lines = text.split("\n")
        assert len(lines) == 4
        assert all(line == "      " for line in lines)

    def test_peak_uses_darkest_shade(self):
        density = np.zeros((3, 3))
        density[1, 1] = 100.0
        text = ascii_density(density)
        assert "@" in text

    def test_north_at_top(self):
        density = np.zeros((2, 2))
        density[1, 0] = 9.0  # iy=1 is the northern row
        lines = ascii_density(density).split("\n")
        assert lines[0][0] != " "
        assert lines[1][0] == " "

    def test_wide_grid_downsampled(self):
        density = np.ones((2, 200))
        text = ascii_density(density, max_width=50)
        assert max(len(line) for line in text.split("\n")) <= 100


class TestAsciiTrajectories:
    def test_track_and_endpoint_drawn(self):
        track = Trajectory(
            "V1", [0, 10, 20], [24.1, 24.5, 24.9], [37.5, 37.5, 37.5]
        )
        text = ascii_trajectories([track], BBox(24.0, 37.0, 25.0, 38.0), width=40, height=10)
        assert "a" in text
        assert "#" in text

    def test_out_of_bbox_points_skipped(self):
        track = Trajectory("V1", [0, 10], [30.0, 31.0], [45.0, 45.0])
        text = ascii_trajectories([track], BBox(24.0, 37.0, 25.0, 38.0), width=20, height=5)
        assert set(text) <= {" ", "\n"}

    def test_multiple_tracks_distinct_letters(self):
        a = Trajectory("A", [0, 10], [24.1, 24.2], [37.2, 37.2])
        b = Trajectory("B", [0, 10], [24.1, 24.2], [37.8, 37.8])
        text = ascii_trajectories([a, b], BBox(24.0, 37.0, 25.0, 38.0), width=30, height=10)
        assert "a" in text and "b" in text

"""Visual-analytics aggregation layers."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport
from repro.viz.density import density_from_reports, temporal_profile


def report(t=0.0, lon=24.5, lat=37.5):
    return PositionReport(entity_id="V1", t=t, lon=lon, lat=lat)


class TestDensityFromReports:
    def test_counts(self):
        grid = GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=4, ny=4)
        density = density_from_reports([report(), report(), report(lon=24.1, lat=37.1)], grid)
        assert density.sum() == 3.0
        assert density.max() == 2.0

    def test_shape(self):
        grid = GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=7, ny=3)
        density = density_from_reports([], grid)
        assert density.shape == (3, 7)


class TestTemporalProfile:
    def test_bucketing(self):
        reports = [report(t=t) for t in (0.0, 100.0, 650.0, 1300.0)]
        profile = temporal_profile(reports, bucket_s=600.0)
        assert profile == [(0.0, 2), (600.0, 1), (1200.0, 1)]

    def test_sorted_output(self):
        reports = [report(t=t) for t in (2000.0, 0.0, 900.0)]
        profile = temporal_profile(reports, bucket_s=600.0)
        buckets = [b for b, __ in profile]
        assert buckets == sorted(buckets)

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            temporal_profile([], bucket_s=0.0)

"""HTML situation report generator."""

import pytest

from repro.model.events import ComplexEvent, EventSeverity, SimpleEvent
from repro.viz.report import HtmlReport


class TestHtmlReport:
    def test_document_structure(self):
        report = HtmlReport("Morning picture")
        text = report.render()
        assert text.startswith("<!DOCTYPE html>")
        assert "<title>Morning picture</title>" in text

    def test_title_escaped(self):
        report = HtmlReport("<script>alert(1)</script>")
        assert "<script>alert" not in report.render()

    def test_stats_strip(self):
        report = HtmlReport("t")
        report.add_stat("reports", 12345)
        report.add_stat("compression", 0.973)
        text = report.render()
        assert "12345" in text
        assert "0.973" in text

    def test_event_table_sorted_and_styled(self):
        report = HtmlReport("t")
        report.add_events([
            ComplexEvent("collision_risk", ("A", "B"), 500.0, 500.0,
                         severity=EventSeverity.ALARM),
            SimpleEvent("zone_entry", "C", 100.0, 24.0, 37.0),
        ])
        text = report.render()
        assert text.index("zone_entry") < text.index("collision_risk")
        assert 'class="sev-3"' in text  # alarm styling

    def test_map_embedded(self):
        report = HtmlReport("t")
        report.set_map('<svg xmlns="http://www.w3.org/2000/svg"></svg>')
        assert "<svg" in report.render()

    def test_extra_table_escaped(self):
        report = HtmlReport("t")
        report.add_table("Links", ["a & b"], [["<x>", 1.5]])
        text = report.render()
        assert "a &amp; b" in text
        assert "&lt;x&gt;" in text
        assert "1.500" in text

    def test_timeline_sparkline(self):
        report = HtmlReport("t")
        report.add_timeline([(0.0, 5), (600.0, 12), (1200.0, 3)])
        text = report.render()
        assert "Activity timeline" in text
        assert text.count("<rect") == 3
        assert "t=600s: 12" in text

    def test_empty_timeline_skipped(self):
        report = HtmlReport("t")
        before = report.render()
        report.add_timeline([])
        report.add_timeline([(0.0, 0)])
        assert report.render() == before

    def test_save(self, tmp_path):
        report = HtmlReport("t")
        path = tmp_path / "report.html"
        report.save(str(path))
        assert path.read_text().startswith("<!DOCTYPE html>")

"""SVG map rendering."""

import numpy as np
import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.model.events import ComplexEvent, SimpleEvent
from repro.model.trajectory import Trajectory
from repro.viz.svg import SvgMap


@pytest.fixture()
def svg_map():
    return SvgMap(BBox(24.0, 37.0, 25.0, 38.0), width_px=400)


def track(entity="V1", n=5):
    return Trajectory(
        entity,
        [10.0 * i for i in range(n)],
        [24.1 + 0.1 * i for i in range(n)],
        [37.5] * n,
    )


class TestSvgMap:
    def test_document_well_formed(self, svg_map):
        svg_map.add_trajectory(track())
        doc = svg_map.render()
        assert doc.startswith("<svg")
        assert doc.rstrip().endswith("</svg>")
        assert "<polyline" in doc

    def test_aspect_ratio(self):
        tall = SvgMap(BBox(24.0, 37.0, 24.5, 38.0), width_px=300)
        assert tall.height == 600

    def test_zone_layer(self, svg_map):
        svg_map.add_zone(Polygon("area<1>", ((24.2, 37.2), (24.4, 37.2), (24.4, 37.4))))
        doc = svg_map.render()
        assert "<polygon" in doc
        assert "area&lt;1&gt;" in doc  # escaped name

    def test_event_markers(self, svg_map):
        svg_map.add_event(SimpleEvent("zone_entry", "V1", 10.0, 24.5, 37.5))
        svg_map.add_event(
            ComplexEvent(
                "collision_risk", ("A", "B"), 0.0, 1.0,
                contributing=(SimpleEvent("proximity", "A", 0.0, 24.2, 37.2),),
            )
        )
        doc = svg_map.render()
        assert doc.count("<circle") >= 2

    def test_density_layer(self, svg_map):
        grid = GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=4, ny=4)
        density = np.zeros((4, 4))
        density[1, 2] = 5.0
        svg_map.add_density(density, grid)
        assert "<rect" in svg_map.render()

    def test_density_shape_mismatch(self, svg_map):
        grid = GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=4, ny=4)
        with pytest.raises(ValueError):
            svg_map.add_density(np.zeros((3, 3)), grid)

    def test_empty_density_no_elements(self, svg_map):
        grid = GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=4, ny=4)
        before = svg_map.render()
        svg_map.add_density(np.zeros((4, 4)), grid)
        assert svg_map.render() == before

    def test_prediction_with_uncertainty_ring(self, svg_map):
        svg_map.add_prediction(24.5, 37.5, radius_m=2_000.0, label="V1 +15min")
        doc = svg_map.render()
        assert "stroke-dasharray" in doc
        assert "V1 +15min" in doc
        assert doc.count("<circle") == 2

    def test_prediction_ring_scales_with_radius(self, svg_map):
        import re

        svg_map.add_prediction(24.5, 37.5, radius_m=500.0)
        svg_map.add_prediction(24.5, 37.5, radius_m=5_000.0)
        radii = [float(m) for m in re.findall(r'r="([\d.]+)" fill="#8e44ad" fill-opacity', svg_map.render())]
        assert len(radii) == 2
        assert radii[1] > radii[0] * 5

    def test_save(self, svg_map, tmp_path):
        svg_map.add_trajectory(track())
        path = tmp_path / "map.svg"
        svg_map.save(str(path))
        assert path.read_text().startswith("<svg")

    def test_label(self, svg_map):
        svg_map.add_label(24.5, 37.5, "Piraeus & co")
        assert "Piraeus &amp; co" in svg_map.render()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SvgMap(BBox(24.0, 37.0, 25.0, 38.0), width_px=0)

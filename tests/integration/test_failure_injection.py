"""Failure injection: the pipeline under hostile input conditions."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MobilityPipeline
from repro.model.reports import PositionReport
from repro.sources.generators import MaritimeTrafficGenerator
from repro.sources.noise import DeliveryModel, SensorModel


@pytest.fixture(scope="module")
def clean_sample():
    return MaritimeTrafficGenerator(seed=55).generate(
        n_vessels=4, max_duration_s=2400.0
    )


class TestDuplicates:
    def test_delivered_duplicates_removed(self, clean_sample):
        delivery = DeliveryModel(duplicate_prob=0.3)
        delivered = delivery.deliver(
            list(clean_sample.reports), rng=np.random.default_rng(1)
        )
        # Feed in delivery order; event times of duplicates are identical.
        reports = [r for __, r in delivered]
        pipeline = MobilityPipeline(bbox=clean_sample.world.bbox)
        result = pipeline.run(sorted(reports, key=lambda r: r.t))
        assert result.reports_in == len(reports)
        # Every duplicate died in cleaning.
        assert result.reports_clean == len(clean_sample.reports)


class TestOutOfOrder:
    def test_delayed_delivery_does_not_crash_or_corrupt(self, clean_sample):
        delivery = DeliveryModel(mean_delay_s=45.0)
        delivered = delivery.deliver(
            list(clean_sample.reports), rng=np.random.default_rng(2)
        )
        reports = [r for __, r in delivered]  # delivery order ≠ event order
        pipeline = MobilityPipeline(bbox=clean_sample.world.bbox)
        result = pipeline.run(reports)
        # Per-entity regressions are rejected by the plausibility filter,
        # so the store only holds forward-moving tracks.
        entity_id = next(iter(clean_sample.truth))
        stored = pipeline.executor.entity_trajectory(entity_id)
        assert list(stored.t) == sorted(stored.t)
        assert result.reports_clean <= result.reports_in


class TestSensorDegradation:
    def test_heavy_dropout_still_produces_synopsis(self, clean_sample):
        sensor = SensorModel(report_period_s=10.0, dropout_prob=0.6, gps_sigma_m=30.0)
        rng = np.random.default_rng(3)
        reports = []
        for truth in clean_sample.truth.values():
            reports.extend(sensor.observe(truth, rng=rng))
        reports.sort(key=lambda r: r.t)
        pipeline = MobilityPipeline(bbox=clean_sample.world.bbox)
        result = pipeline.run(reports)
        assert result.reports_kept > 0
        for entity_id in clean_sample.truth:
            stored = pipeline.executor.entity_trajectory(entity_id)
            assert len(stored) >= 2

    def test_long_gaps_produce_gap_events(self, clean_sample):
        sensor = SensorModel(
            report_period_s=10.0, gap_prob_per_report=0.01, gap_duration_s=900.0,
            dropout_prob=0.0,
        )
        rng = np.random.default_rng(4)
        reports = []
        for truth in clean_sample.truth.values():
            reports.extend(sensor.observe(truth, rng=rng))
        reports.sort(key=lambda r: r.t)
        pipeline = MobilityPipeline(bbox=clean_sample.world.bbox)
        result = pipeline.run(reports)
        gap_events = [e for e in result.simple_events if "gap" in e.event_type]
        assert gap_events


class TestHostileRecords:
    def test_teleporting_entity_contained(self, clean_sample):
        reports = list(clean_sample.reports)
        # Inject a teleport for one entity mid-stream.
        victim = reports[len(reports) // 2]
        teleport = PositionReport(
            entity_id=victim.entity_id, t=victim.t + 1.0,
            lon=victim.lon + 3.0, lat=victim.lat, speed=5.0, heading=90.0,
        )
        reports.insert(len(reports) // 2 + 1, teleport)
        reports.sort(key=lambda r: r.t)
        pipeline = MobilityPipeline(
            bbox=clean_sample.world.bbox, registry=clean_sample.registry
        )
        result = pipeline.run(reports)
        assert result.reports_clean == len(reports) - 1  # exactly the teleport died
        stored = pipeline.executor.entity_trajectory(victim.entity_id)
        assert float(stored.lon.max()) < victim.lon + 1.0

    def test_unknown_entity_uses_default_ceiling(self, clean_sample):
        pipeline = MobilityPipeline(
            bbox=clean_sample.world.bbox, registry=clean_sample.registry
        )
        ghost = PositionReport(entity_id="GHOST", t=1.0, lon=24.0, lat=37.0, speed=5.0)
        events = pipeline.process_report(ghost)
        assert events == []
        assert pipeline.result.reports_clean == 1


class TestInterlinking:
    def test_zone_and_weather_links_stored(self, clean_sample):
        from repro.rdf import vocabulary as V
        from repro.sources.weather import WeatherGridSource

        weather = WeatherGridSource(bbox=clean_sample.world.bbox)
        pipeline = MobilityPipeline(
            bbox=clean_sample.world.bbox,
            config=PipelineConfig(interlink=True),
            registry=clean_sample.registry,
            zones=clean_sample.world.zones,
            weather=weather,
        )
        pipeline.run(clean_sample.reports)
        weather_links = pipeline.store.count(None, V.PROP_HAS_WEATHER, None)
        assert weather_links == pipeline.result.reports_kept
        weather_docs = pipeline.store.count(None, V.PROP_WIND_SPEED, None)
        assert 0 < weather_docs <= weather_links

    def test_interlink_off_no_links(self, clean_sample):
        from repro.rdf import vocabulary as V

        pipeline = MobilityPipeline(
            bbox=clean_sample.world.bbox,
            zones=clean_sample.world.zones,
        )
        pipeline.run(clean_sample.reports)
        assert pipeline.store.count(None, V.PROP_HAS_WEATHER, None) == 0
        assert pipeline.store.count(None, V.PROP_WITHIN_ZONE, None) == 0

    def test_weather_link_resolvable_to_conditions(self, clean_sample):
        """Follow a stored hasWeatherCondition link to its wind speed."""
        from repro.rdf import vocabulary as V
        from repro.sources.weather import WeatherGridSource

        weather = WeatherGridSource(bbox=clean_sample.world.bbox)
        pipeline = MobilityPipeline(
            bbox=clean_sample.world.bbox,
            config=PipelineConfig(interlink=True),
            weather=weather,
        )
        pipeline.run(clean_sample.reports[:500])
        link = next(iter(pipeline.store.match(None, V.PROP_HAS_WEATHER, None)))
        conditions = list(pipeline.store.match(link.o, V.PROP_WIND_SPEED, None))
        assert len(conditions) == 1
        assert float(conditions[0].o.value) >= 0.0

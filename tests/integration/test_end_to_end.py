"""Cross-module integration tests."""

import pytest

from repro.cep.detectors import CollisionRiskDetector
from repro.cep.evaluation import match_events
from repro.core.config import PipelineConfig
from repro.core.pipeline import MobilityPipeline
from repro.geo.bbox import BBox
from repro.insitu.synopses import SynopsesConfig, SynopsesGenerator
from repro.query.parser import parse_query
from repro.sources.scenarios import collision_course_scenario
from repro.trajectory.reconstruction import reconstruct_all


class TestScenarioThroughPipeline:
    def test_collision_detected_through_full_pipeline(self):
        scenario = collision_course_scenario()
        bbox = BBox(23.0, 36.0, 26.0, 38.0)
        pipeline = MobilityPipeline(bbox=bbox)
        result = pipeline.run(scenario.reports)
        collisions = [
            e for e in result.complex_events if e.event_type == "collision_risk"
        ]
        score = match_events(collisions, scenario.expected)
        assert score.recall == 1.0

    def test_events_persisted_as_rdf(self):
        from repro.rdf import vocabulary as V
        from repro.rdf.terms import Literal

        scenario = collision_course_scenario()
        bbox = BBox(23.0, 36.0, 26.0, 38.0)
        pipeline = MobilityPipeline(bbox=bbox)
        pipeline.run(scenario.reports)
        stored_events = list(
            pipeline.store.match(None, V.PROP_EVENT_TYPE, Literal("collision_risk", V.XSD_STRING))
        )
        assert stored_events


class TestQueryLanguageOverPipeline:
    def test_textual_query_on_pipeline_store(self, maritime_sample):
        pipeline = MobilityPipeline(
            bbox=maritime_sample.world.bbox,
            registry=maritime_sample.registry,
        )
        pipeline.run(maritime_sample.reports)
        box = maritime_sample.world.bbox
        query = parse_query(
            f"SELECT ?n ?t WHERE {{ ?n rdf:type dac:SemanticNode . "
            f"?n time:inSeconds ?t . "
            f"FILTER ST_WITHIN(?n, {box.min_lon}, {box.min_lat}, "
            f"{box.max_lon}, {box.max_lat}, 0, 100000) }}"
        )
        rows, info = pipeline.executor.execute(query)
        assert len(rows) == pipeline.result.reports_kept


class TestCompressionAnalyticsParity:
    def test_collision_still_detected_on_synopsis(self):
        """The paper's central in-situ claim: compression must not break
        downstream analytics — the collision scenario stays detectable on
        the compressed stream."""
        scenario = collision_course_scenario()
        generator = SynopsesGenerator(SynopsesConfig(dr_error_threshold_m=150.0))
        kept = [r for r in scenario.reports if generator.process(r)[1]]
        assert len(kept) < len(scenario.reports) * 0.7

        detector = CollisionRiskDetector(staleness_s=600.0)
        detections = []
        for report in kept:
            detections.extend(detector.process(report))
        score = match_events(detections, scenario.expected)
        assert score.recall == 1.0

    def test_reconstruction_from_synopsis_close_to_truth(self, maritime_sample):
        from repro.geo.geodesy import haversine_m

        generator = SynopsesGenerator(SynopsesConfig(dr_error_threshold_m=100.0))
        kept = [r for r in maritime_sample.reports if generator.process(r)[1]]
        kept.extend(generator.finish_all())
        kept.sort(key=lambda r: r.t)
        rebuilt = reconstruct_all(kept)
        for entity_id, segments in rebuilt.items():
            truth = maritime_sample.truth[entity_id]
            track = segments[0]
            mid = (track.start_time + track.end_time) / 2.0
            a = track.at_time(mid)
            b = truth.at_time(mid)
            assert haversine_m(a.lon, a.lat, b.lon, b.lat) < 600.0


class TestArchiveStreamParity:
    def test_archived_then_queried_equals_streamed(self, maritime_sample):
        """Data-at-rest and data-in-motion converge to the same store
        content: loading archived trajectories produces the same nodes as
        streaming their reports (with persist_raw on, no synopsis)."""
        from repro.rdf import vocabulary as V

        config = PipelineConfig(
            persist_raw_reports=True,
            synopses=SynopsesConfig(dr_error_threshold_m=1e12, max_silence_s=1e12),
        )
        streamed = MobilityPipeline(
            bbox=maritime_sample.world.bbox, config=config,
            registry=maritime_sample.registry,
        )
        streamed.run(maritime_sample.reports[:300])

        batch = MobilityPipeline(
            bbox=maritime_sample.world.bbox, config=config,
            registry=maritime_sample.registry,
        )
        for report in sorted(maritime_sample.reports[:300], key=lambda r: r.entity_id):
            batch.process_report(report.replace_time(report.t))

        count = lambda p: p.store.count(None, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE)
        assert count(streamed) == count(batch) == 300

"""Batch/per-record differential: the stage-sliced path must be invisible.

:meth:`MobilityPipeline.process_batch` reorders work (stage-major instead
of record-major) and lands RDF documents in bulk, so this suite pins the
equivalence contract from every angle the contract names:

- ``deterministic_bytes()`` equality across batch sizes {1, 7, 256} —
  including a batch of 1, which still executes the stage-sliced code;
- decoded store contents as multisets (dictionary ids may differ between
  the paths because documents land in a different order, content not);
- content-derived metrics counters (timing histograms are exempt);
- the same equivalences under chaos injection (per-stage fault RNG
  streams make the draw sequences ordering-invariant);
- a crash mid-stream, checkpointed at batch boundaries, resumed with a
  *different* batch size — still byte-identical to an uninterrupted
  per-record run.

The workload carries >= PREFILTER_MIN_ZONES zones so the grid-backed
:class:`~repro.geo.zone_index.ZoneIndex` prefilter is exercised, not
bypassed.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import MobilityPipeline
from repro.geo.bbox import BBox
from repro.geo.polygon import Polygon
from repro.geo.zone_index import PREFILTER_MIN_ZONES
from repro.runtime.worker import _BatchCrashInjector
from repro.sources.generators import MaritimeTrafficGenerator
from repro.streams.chaos import ChaosConfig, InjectedCrash, RetryPolicy
from repro.streams.checkpoint import InMemoryCheckpointStore
from repro.streams.replay import ReplayLog

BATCH_SIZES = (1, 7, 256)

CHAOS = dict(fail_prob=0.2, seed=13, retry=RetryPolicy(max_retries=5, base_delay_s=0.001))


def _extra_zones(bbox: BBox) -> list[Polygon]:
    """Tile part of the world with rectangles to push past the prefilter gate."""
    zones = []
    lon_step = (bbox.max_lon - bbox.min_lon) / 3.0
    lat_step = (bbox.max_lat - bbox.min_lat) / 2.0
    for i in range(3):
        for j in range(2):
            zones.append(
                Polygon.rectangle(
                    f"tile_{i}{j}",
                    BBox(
                        bbox.min_lon + i * lon_step,
                        bbox.min_lat + j * lat_step,
                        bbox.min_lon + (i + 1) * lon_step,
                        bbox.min_lat + (j + 1) * lat_step,
                    ),
                )
            )
    return zones


@pytest.fixture(scope="module")
def sample():
    return MaritimeTrafficGenerator(seed=91).generate(n_vessels=6, max_duration_s=2400.0)


@pytest.fixture(scope="module")
def reports(sample):
    return sorted(sample.reports, key=lambda r: r.t)


@pytest.fixture(scope="module")
def zones(sample):
    zones = list(sample.world.zones) + _extra_zones(sample.world.bbox)
    assert len(zones) >= PREFILTER_MIN_ZONES
    return zones


def _pipeline(sample, zones, **kwargs):
    return MobilityPipeline(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=zones,
        **kwargs,
    )


def _store_contents(pipeline) -> Counter:
    """Decoded triples as a multiset — insertion order and ids erased."""
    return Counter(pipeline.store.match())


def _batches(reports, size):
    for start in range(0, len(reports), size):
        yield list(reports[start : start + size])


@pytest.fixture(scope="module")
def per_record(sample, reports, zones):
    pipeline = _pipeline(sample, zones)
    return pipeline, pipeline.run(reports)


@pytest.fixture(scope="module")
def per_record_chaotic(sample, reports, zones):
    pipeline = _pipeline(sample, zones, chaos=ChaosConfig(**CHAOS))
    return pipeline, pipeline.run(reports)


class TestBatchEqualsPerRecord:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_deterministic_bytes_identical(self, sample, reports, zones, per_record, batch_size):
        __, expected = per_record
        pipeline = _pipeline(sample, zones)
        actual = pipeline.run_batched(reports, batch_size=batch_size)
        assert actual.deterministic_bytes() == expected.deterministic_bytes()

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_store_contents_identical(self, sample, reports, zones, per_record, batch_size):
        base_pipeline, __ = per_record
        pipeline = _pipeline(sample, zones)
        pipeline.run_batched(reports, batch_size=batch_size)
        assert _store_contents(pipeline) == _store_contents(base_pipeline)

    def test_complex_events_identical(self, sample, reports, zones, per_record):
        __, expected = per_record
        pipeline = _pipeline(sample, zones)
        actual = pipeline.run_batched(reports, batch_size=64)
        assert [
            (e.event_type, e.entity_ids, e.t_start, e.t_end, e.attributes)
            for e in actual.complex_events
        ] == [
            (e.event_type, e.entity_ids, e.t_start, e.t_end, e.attributes)
            for e in expected.complex_events
        ]

    def test_content_counters_identical(self, sample, reports, zones, per_record):
        """Every content-derived counter agrees; only timing may differ.

        Read-path counters (``store.match_calls`` etc.) are excluded:
        other tests in this module query the shared baseline store.
        """

        def ingest_counters(pipeline):
            return {
                k: v
                for k, v in pipeline.metrics.counters().items()
                if k not in ("store.match_calls", "store.partition_scans")
            }

        base_pipeline, __ = per_record
        pipeline = _pipeline(sample, zones)
        pipeline.run_batched(reports, batch_size=64)
        assert ingest_counters(pipeline) == ingest_counters(base_pipeline)

    def test_prefilter_active(self, sample, zones):
        """The workload actually exercises the zone index (not bypassed)."""
        pipeline = _pipeline(sample, zones)
        assert pipeline._zone_index is not None
        assert len(pipeline._zone_index) == len(zones)


class TestBatchEqualsPerRecordUnderChaos:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_deterministic_bytes_identical(
        self, sample, reports, zones, per_record_chaotic, batch_size
    ):
        __, expected = per_record_chaotic
        pipeline = _pipeline(sample, zones, chaos=ChaosConfig(**CHAOS))
        actual = pipeline.run_batched(reports, batch_size=batch_size)
        assert actual.deterministic_bytes() == expected.deterministic_bytes()

    def test_chaos_is_actually_firing(self, per_record_chaotic):
        __, expected = per_record_chaotic
        assert sum(expected.stage_failures.values()) > 0

    def test_recovery_accounting_identical(self, sample, reports, zones, per_record_chaotic):
        __, expected = per_record_chaotic
        pipeline = _pipeline(sample, zones, chaos=ChaosConfig(**CHAOS))
        actual = pipeline.run_batched(reports, batch_size=32)
        assert actual.records_recovered == expected.records_recovered
        assert actual.dead_letter_count == expected.dead_letter_count
        assert actual.stage_failures == expected.stage_failures
        assert actual.stage_retries == expected.stage_retries


class TestBatchCrashRestartDifferential:
    def _crash_and_resume(self, sample, reports, zones, chaos=None):
        kwargs = {"chaos": chaos} if chaos else {}
        store = InMemoryCheckpointStore()
        crashed = _pipeline(sample, zones, **kwargs)
        crash_after = len(reports) * 2 // 3
        with pytest.raises(InjectedCrash):
            crashed.run_batches_with_checkpoints(
                iter(_BatchCrashInjector(_batches(reports, 64), crash_after)),
                store,
                checkpoint_interval=200,
            )
        # The crash cost real progress: it fired past the last barrier.
        assert 0 < store.latest().source_offset < crash_after
        fresh = _pipeline(sample, zones, **kwargs)
        # Resume with a *different* batch size: equivalence must not
        # depend on batch boundaries lining up across incarnations.
        result = fresh.resume_from_checkpoint(store, ReplayLog(reports), batch_size=37)
        return fresh, result

    def test_resumed_batch_run_matches_uninterrupted_per_record(
        self, sample, reports, zones, per_record
    ):
        base_pipeline, expected = per_record
        fresh, actual = self._crash_and_resume(sample, reports, zones)
        assert actual.deterministic_bytes() == expected.deterministic_bytes()
        assert _store_contents(fresh) == _store_contents(base_pipeline)

    def test_resumed_chaotic_batch_run_matches_uninterrupted_per_record(
        self, sample, reports, zones, per_record_chaotic
    ):
        base_pipeline, expected = per_record_chaotic
        fresh, actual = self._crash_and_resume(sample, reports, zones, chaos=ChaosConfig(**CHAOS))
        assert actual.deterministic_bytes() == expected.deterministic_bytes()
        assert _store_contents(fresh) == _store_contents(base_pipeline)


class TestCompiledEmitterDifferential:
    """The compiled id-level RDF emitter must be observationally invisible.

    The columnar path (``run(reports, batch=BatchOptions(size=...))``)
    assembles id triples through :class:`CompiledReportEmitter`; with
    ``compiled_rdf_emitter=False`` the same path goes through
    ``report_to_triples`` + ``add_documents``. Both ablation arms must
    produce byte-identical results and multiset-identical decoded store
    contents — on maritime and aviation (optional alt/vertical_rate
    fields) workloads alike.
    """

    def test_emitter_engaged_in_columnar_runs(self, sample, zones):
        pipeline = _pipeline(sample, zones)
        assert pipeline._emitter is not None
        assert pipeline._emitter.engaged

    def test_ablation_arm_disables_emitter(self, sample, zones):
        from repro.core.config import PipelineConfig

        pipeline = _pipeline(
            sample, zones, config=PipelineConfig(compiled_rdf_emitter=False)
        )
        assert pipeline._emitter is None

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_ablation_differential(self, sample, reports, zones, batch_size):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import BatchOptions

        compiled = _pipeline(sample, zones)
        fallback = _pipeline(
            sample, zones, config=PipelineConfig(compiled_rdf_emitter=False)
        )
        got = compiled.run(reports, batch=BatchOptions(size=batch_size))
        want = fallback.run(reports, batch=BatchOptions(size=batch_size))
        assert got.deterministic_bytes() == want.deterministic_bytes()
        assert _store_contents(compiled) == _store_contents(fallback)

    def test_aviation_optional_fields_differential(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import BatchOptions
        from repro.sources.generators import AviationTrafficGenerator

        from dataclasses import replace

        air = AviationTrafficGenerator(seed=7)
        air_sample = air.generate(n_flights=4)
        air_reports = sorted(air_sample.reports, key=lambda r: r.t)[:600]
        # The generator reports altitude but not climb rate; graft a
        # vertical_rate onto every third record so the emitter's
        # optional-field branch actually runs in this differential.
        air_reports = [
            replace(r, vertical_rate=2.5) if i % 3 == 0 else r
            for i, r in enumerate(air_reports)
        ]
        assert any(r.alt is not None for r in air_reports)
        assert any(r.vertical_rate is not None for r in air_reports)
        zones = list(air_sample.world.sectors)
        compiled = _pipeline(air_sample, zones)
        fallback = _pipeline(
            air_sample, zones, config=PipelineConfig(compiled_rdf_emitter=False)
        )
        per_record = _pipeline(air_sample, zones)
        got = compiled.run(air_reports, batch=BatchOptions(size=64))
        want = fallback.run(air_reports, batch=BatchOptions(size=64))
        base = per_record.run(air_reports)
        assert got.deterministic_bytes() == want.deterministic_bytes()
        assert got.deterministic_bytes() == base.deterministic_bytes()
        assert _store_contents(compiled) == _store_contents(fallback)
        assert _store_contents(compiled) == _store_contents(per_record)

    def test_stage_wall_accumulates_on_columnar_path(self, sample, reports, zones):
        from repro.core.pipeline import BatchOptions
        from repro.obs import MetricsRegistry

        pipeline = _pipeline(sample, zones, metrics=MetricsRegistry(seed=5))
        pipeline.run(reports[:300], batch=BatchOptions(size=64))
        wall = pipeline.stage_wall_seconds()
        assert wall["end_to_end"] > 0
        assert wall["rdf"] > 0
        # Stage walls nest inside the end-to-end wall.
        assert (
            wall["clean"] + wall["synopses"] + wall["rdf"] + wall["detectors"]
            <= wall["end_to_end"]
        )


class TestBatchProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=400),
        length=st.integers(min_value=0, max_value=120),
        batch_size=st.integers(min_value=1, max_value=17),
    )
    def test_any_slice_any_batch_size(self, sample, reports, zones, start, length, batch_size):
        window = reports[start : start + length]
        expected = _pipeline(sample, zones).run(window)
        actual = _pipeline(sample, zones).run_batched(window, batch_size=batch_size)
        assert actual.deterministic_bytes() == expected.deterministic_bytes()

    def test_empty_stream(self, sample, zones):
        result = _pipeline(sample, zones).run_batched([], batch_size=8)
        assert result.reports_in == 0

    def test_batch_size_must_be_positive(self, sample, reports, zones):
        with pytest.raises(ValueError):
            _pipeline(sample, zones).run_batched(reports, batch_size=0)

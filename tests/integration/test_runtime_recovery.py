"""Crash-restart differential for the multi-process runtime.

The oracle: a run that loses a worker mid-stream — whether by an injected
chaos crash inside the worker or a hard SIGKILL from outside — and
restarts it from its latest checkpoint must produce
:meth:`RuntimeResult.deterministic_bytes` identical to an uninterrupted
run over the same stream. Recovery must be invisible in the results.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.pipeline import PipelineSpec
from repro.runtime import RuntimeConfig, ShardFailedError, Supervisor
from repro.sources.generators import MaritimeTrafficGenerator

N_WORKERS = 3
# Shard substream sizes for this stream at 3 shards are roughly
# [715, 234, 940]: chaos thresholds below target the victim's substream.
CRASH_SHARD, CRASH_AFTER = 1, 120
KILL_SHARD = 2


@pytest.fixture(scope="module")
def sample():
    return MaritimeTrafficGenerator(seed=77).generate(
        n_vessels=8, max_duration_s=2400.0
    )


@pytest.fixture(scope="module")
def reports(sample):
    return sorted(sample.reports, key=lambda r: r.t)


@pytest.fixture(scope="module")
def spec(sample):
    return PipelineSpec(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=tuple(sample.world.zones),
    )


def config(**overrides) -> RuntimeConfig:
    settings = dict(n_workers=N_WORKERS, checkpoint_interval=150)
    settings.update(overrides)
    return RuntimeConfig(**settings)


@pytest.fixture(scope="module")
def uninterrupted(spec, reports):
    return Supervisor(spec, config()).run(reports)


class TestChaosCrashDifferential:
    @pytest.fixture(scope="class")
    def crashed(self, spec, reports):
        supervisor = Supervisor(
            spec, config(crash_after={CRASH_SHARD: CRASH_AFTER})
        )
        return supervisor, supervisor.run(reports)

    def test_crash_actually_happened(self, crashed, reports):
        supervisor, result = crashed
        assert result.restarts_total == 1
        by_shard = {s.shard_id: s for s in result.shards}
        assert by_shard[CRASH_SHARD].restarts == 1
        # The victim shard had enough records to reach the trigger, and
        # checkpoints were behind it — real progress was lost and replayed.
        assert by_shard[CRASH_SHARD].records_routed > CRASH_AFTER

    def test_recovery_is_byte_identical(self, uninterrupted, crashed):
        __, result = crashed
        assert result.deterministic_bytes() == uninterrupted.deterministic_bytes()
        assert result.deterministic_digest() == uninterrupted.deterministic_digest()

    def test_restart_lands_in_obs(self, crashed):
        supervisor, __ = crashed
        counters = supervisor.metrics.as_dict()["counters"]
        assert counters[f"runtime.shard{CRASH_SHARD}.restarts"] == 1

    def test_no_records_lost_or_duplicated(self, crashed, reports):
        __, result = crashed
        assert result.reports_in == len(reports)
        assert result.dead_letter_count == 0


class TestHardKillDifferential:
    @pytest.fixture(scope="class")
    def killed(self, spec, reports):
        # service_time_s slows the victim enough that the kill lands
        # mid-stream (the shard alone takes ~2s of service waits).
        supervisor = Supervisor(spec, config(service_time_s=0.002))

        def assassinate():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                handle = supervisor.pool.handles.get(KILL_SHARD)
                if handle is not None and handle.is_alive():
                    time.sleep(0.5)
                    live = supervisor.pool.handles.get(KILL_SHARD)
                    if live is not None and live.is_alive():
                        os.kill(live.process.pid, signal.SIGKILL)
                    return
                time.sleep(0.01)

        assassin = threading.Thread(target=assassinate, daemon=True)
        assassin.start()
        result = supervisor.run(reports)
        assassin.join(timeout=30.0)
        return supervisor, result

    def test_kill_was_recovered(self, killed):
        __, result = killed
        assert result.restarts_total == 1
        by_shard = {s.shard_id: s for s in result.shards}
        assert by_shard[KILL_SHARD].restarts == 1

    def test_recovery_is_byte_identical(self, uninterrupted, killed):
        __, result = killed
        assert result.deterministic_bytes() == uninterrupted.deterministic_bytes()


class TestRestartBudget:
    def test_exhausted_budget_raises(self, spec, reports):
        supervisor = Supervisor(
            spec,
            config(
                crash_after={CRASH_SHARD: CRASH_AFTER}, max_restarts_per_shard=0
            ),
        )
        with pytest.raises(ShardFailedError, match=f"shard {CRASH_SHARD}"):
            supervisor.run(reports)

"""Differential arm executed under the runtime determinism sanitizer.

The batch/per-record differential proves two runs *agree*; this arm
additionally proves the agreement was produced without touching ambient
nondeterminism: inside :func:`repro.analysis.sanitizer.determinism_sanitizer`
every wall-clock read, global-RNG draw, and ``datetime.now`` raises
(the ``repro.obs`` measurement boundary excepted). If any tier of the
pipeline — ingest, CEP, RDF emission, checkpoint/restore — ever grows a
hidden clock or RNG dependency, this suite fails with the exact call
site in the traceback, complementing rule D4's static call-chain proof.

CI runs this file as its own step (see ``.github/workflows/ci.yml``,
"sanitizer differential arm").
"""

import pytest

from repro.analysis.sanitizer import DeterminismViolation, determinism_sanitizer
from repro.core.pipeline import BatchOptions, CheckpointOptions, MobilityPipeline
from repro.sources.generators import MaritimeTrafficGenerator
from repro.streams.checkpoint import InMemoryCheckpointStore


@pytest.fixture(scope="module")
def sample():
    return MaritimeTrafficGenerator(seed=23).generate(
        n_vessels=5, max_duration_s=1800.0
    )


@pytest.fixture(scope="module")
def reports(sample):
    return sorted(sample.reports, key=lambda r: r.t)


def _pipeline(sample, **kwargs):
    return MobilityPipeline(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=sample.world.zones,
        **kwargs,
    )


class TestSanitizedDifferential:
    def test_per_record_run_is_clock_and_rng_free(self, sample, reports):
        pipeline = _pipeline(sample)
        with determinism_sanitizer():
            result = pipeline.run(reports)
        assert result.deterministic_bytes()

    def test_batch_equals_per_record_under_sanitizer(self, sample, reports):
        baseline = _pipeline(sample)
        batched = _pipeline(sample)
        with determinism_sanitizer():
            expected = baseline.run(reports)
            actual = batched.run(reports, batch=BatchOptions(size=7))
        assert actual.deterministic_bytes() == expected.deterministic_bytes()

    def test_checkpoint_resume_under_sanitizer(self, sample, reports):
        store = InMemoryCheckpointStore()
        half = len(reports) // 2
        with determinism_sanitizer():
            first = _pipeline(sample)
            first.run(
                reports[:half],
                checkpoints=CheckpointOptions(store=store, interval=25),
            )
            resumed = _pipeline(sample)
            resumed_result = resumed.run(
                reports, checkpoints=CheckpointOptions(store=store, resume=True)
            )
            uninterrupted = _pipeline(sample).run(reports)
        assert (
            resumed_result.deterministic_bytes()
            == uninterrupted.deterministic_bytes()
        )

    def test_sanitizer_would_catch_a_violation(self, sample, reports):
        """The arm is live: an injected clock read fails loudly."""
        import time

        pipeline = _pipeline(sample)
        with determinism_sanitizer():
            pipeline.run(reports)
            with pytest.raises(DeterminismViolation):
                time.time()

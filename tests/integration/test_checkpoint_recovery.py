"""Crash-resume differential: recovery must be invisible in the results.

The oracle: a pipeline killed mid-stream and resumed from its last
checkpoint yields event/triple/synopsis results identical to an
uninterrupted run over the same source. Plus the chaos suite: transient
stage failures are retried with backoff and >= 99% of affected reports
recover, the remainder landing in the dead-letter queue.
"""

import pytest

from repro.core.pipeline import MobilityPipeline
from repro.sources.generators import MaritimeTrafficGenerator
from repro.streams.chaos import ChaosConfig, CrashInjector, InjectedCrash, RetryPolicy
from repro.streams.checkpoint import InMemoryCheckpointStore
from repro.streams.replay import ReplayLog


@pytest.fixture(scope="module")
def sample():
    return MaritimeTrafficGenerator(seed=77).generate(
        n_vessels=5, max_duration_s=2400.0
    )


@pytest.fixture(scope="module")
def reports(sample):
    return sorted(sample.reports, key=lambda r: r.t)


def _pipeline(sample, **kwargs):
    return MobilityPipeline(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=sample.world.zones,
        **kwargs,
    )


@pytest.fixture(scope="module")
def baseline(sample, reports):
    pipeline = _pipeline(sample)
    return pipeline, pipeline.run(reports)


class TestCrashResumeDifferential:
    @pytest.fixture(scope="class")
    def resumed(self, sample, reports):
        store = InMemoryCheckpointStore()
        crashed = _pipeline(sample)
        with pytest.raises(InjectedCrash):
            crashed.run_with_checkpoints(
                CrashInjector(reports, crash_after=len(reports) * 2 // 3),
                store,
                checkpoint_interval=200,
            )
        # Some progress was lost: the crash happened past the last barrier.
        assert 0 < store.latest().source_offset < len(reports) * 2 // 3

        fresh = _pipeline(sample)  # a new worker, no shared in-memory state
        result = fresh.resume_from_checkpoint(store, ReplayLog(reports))
        return fresh, result

    def test_counts_identical(self, baseline, resumed):
        __, expected = baseline
        __, actual = resumed
        assert actual.reports_in == expected.reports_in
        assert actual.reports_clean == expected.reports_clean
        assert actual.reports_kept == expected.reports_kept
        assert actual.triples_stored == expected.triples_stored

    def test_event_streams_identical(self, baseline, resumed):
        __, expected = baseline
        __, actual = resumed
        assert [(e.event_type, e.entity_id, e.t) for e in actual.simple_events] == [
            (e.event_type, e.entity_id, e.t) for e in expected.simple_events
        ]
        assert [(e.event_type, e.entity_ids, e.t_start) for e in actual.complex_events] == [
            (e.event_type, e.entity_ids, e.t_start) for e in expected.complex_events
        ]

    def test_synopsis_keep_set_identical(self, sample, baseline, resumed):
        """The stored (kept) trajectory of every entity matches exactly."""
        base_pipeline, __ = baseline
        resumed_pipeline, __ = resumed
        for entity_id in sample.truth:
            expected = base_pipeline.executor.entity_trajectory(entity_id)
            actual = resumed_pipeline.executor.entity_trajectory(entity_id)
            assert list(actual.t) == list(expected.t)
            assert list(actual.lon) == list(expected.lon)
            assert list(actual.lat) == list(expected.lat)

    def test_stage_counts_identical(self, baseline, resumed):
        __, expected = baseline
        __, actual = resumed
        for stage in expected.stage_latency:
            assert (
                actual.stage_latency[stage]["count"]
                == expected.stage_latency[stage]["count"]
            )

    def test_resume_without_checkpoint_rejected(self, sample, reports):
        pipeline = _pipeline(sample)
        with pytest.raises(ValueError):
            pipeline.resume_from_checkpoint(InMemoryCheckpointStore(), reports)

    def test_double_crash_then_resume(self, sample, reports, baseline):
        """Recovery works even when the resumed run crashes again."""
        __, expected = baseline
        store = InMemoryCheckpointStore()
        first = _pipeline(sample)
        with pytest.raises(InjectedCrash):
            first.run_with_checkpoints(
                CrashInjector(reports, crash_after=500), store, checkpoint_interval=150
            )
        second = _pipeline(sample)
        with pytest.raises(InjectedCrash):
            second.resume_from_checkpoint(
                store, CrashInjector(reports, crash_after=900), checkpoint_interval=150
            )
        assert store.latest().source_offset == 900
        third = _pipeline(sample)
        result = third.resume_from_checkpoint(store, ReplayLog(reports))
        assert result.reports_in == expected.reports_in
        assert result.triples_stored == expected.triples_stored
        assert len(result.simple_events) == len(expected.simple_events)


class TestChaosDegradedMode:
    @pytest.fixture(scope="class")
    def chaotic(self, sample, reports):
        pipeline = _pipeline(
            sample,
            chaos=ChaosConfig(
                fail_prob=0.25,
                # Seed chosen so this fault-rate/retry-budget combination
                # actually exhausts a few retry budgets under the
                # injector's per-stage RNG streams (the assertions below
                # need a non-empty dead-letter queue).
                seed=8,
                retry=RetryPolicy(max_retries=5, base_delay_s=0.001),
            ),
        )
        return pipeline.run(reports)

    def test_retries_recover_99_percent(self, chaotic):
        troubled = chaotic.records_recovered + chaotic.dead_letter_count
        assert troubled > 0
        assert chaotic.recovery_rate >= 0.99
        # The remainder is parked in the DLQ — nothing silently vanishes.
        assert chaotic.dead_letter_count > 0

    def test_failure_accounting_per_stage(self, chaotic):
        assert sum(chaotic.stage_failures.values()) > 0
        # Every stage the injector can hit saw failures at this rate.
        for stage in ("clean", "synopses", "events", "detectors"):
            assert chaotic.stage_failures.get(stage, 0) > 0
        # Retries never exceed failures and backoff accrued for each one.
        assert sum(chaotic.stage_retries.values()) <= sum(chaotic.stage_failures.values())
        assert chaotic.simulated_backoff_s > 0

    def test_dead_letters_carry_context(self, chaotic):
        for letter in chaotic.dead_letters:
            assert letter.stage in ("clean", "synopses", "rdf", "events", "detectors")
            assert letter.attempts == 6  # 1 initial + 5 retries
            assert letter.event_time == letter.value.t

    def test_degraded_run_still_produces_analytics(self, chaotic, baseline):
        __, expected = baseline
        # Dead-lettered reports are the only loss; the run stays useful.
        assert chaotic.reports_in == expected.reports_in
        assert chaotic.reports_kept > 0
        assert chaotic.triples_stored > 0

    def test_chaos_off_has_zero_overhead_counters(self, baseline):
        __, expected = baseline
        assert expected.stage_failures == {}
        assert expected.stage_retries == {}
        assert expected.dead_letters == []
        assert expected.recovery_rate == 1.0

    def test_targeted_stage_injection(self, sample, reports):
        pipeline = _pipeline(
            sample,
            chaos=ChaosConfig(
                fail_prob=0.5,
                stages=frozenset({"rdf"}),
                seed=9,
                retry=RetryPolicy(max_retries=4, base_delay_s=0.001),
            ),
        )
        result = pipeline.run(reports)
        assert set(result.stage_failures) == {"rdf"}
        for letter in result.dead_letters:
            assert letter.stage == "rdf"

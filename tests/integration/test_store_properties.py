"""Property tests: the parallel store + executor against reference models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport
from repro.query.executor import QueryExecutor
from repro.rdf import vocabulary as V
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import (
    GridPartitioner,
    HashPartitioner,
    HilbertPartitioner,
    QuadTreePartitioner,
)

WORLD = BBox(22.0, 35.0, 29.0, 41.0)


def report_strategy():
    return st.builds(
        lambda e, t, lon, lat: PositionReport(
            entity_id=f"V{e}", t=float(t), lon=lon, lat=lat, speed=5.0, heading=90.0
        ),
        e=st.integers(0, 5),
        t=st.integers(0, 10_000),
        lon=st.floats(22.0, 29.0),
        lat=st.floats(35.0, 41.0),
    )


def build_store(reports, partitioner_factory):
    grid = GeoGrid(bbox=WORLD, nx=16, ny=16)
    transformer = RdfTransformer(st_grid=grid)
    partitioner = partitioner_factory(grid, reports, transformer)
    store = ParallelRDFStore(partitioner)
    for report in reports:
        store.add_document(transformer.report_to_triples(report))
    return store


PARTITIONERS = [
    lambda grid, reports, tx: HashPartitioner(4),
    lambda grid, reports, tx: GridPartitioner(grid, 4),
    lambda grid, reports, tx: HilbertPartitioner(grid, 4),
    lambda grid, reports, tx: QuadTreePartitioner(
        grid, 4, sample_keys=[tx.st_key(r.lon, r.lat, r.t) for r in reports]
    ),
]


class TestRangeQueryAgainstReference:
    @given(
        reports=st.lists(report_strategy(), min_size=1, max_size=40),
        qx=st.floats(22.0, 27.0),
        qy=st.floats(35.0, 39.0),
        t_hi=st.integers(100, 10_000),
        partitioner_idx=st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_results_match_brute_force(self, reports, qx, qy, t_hi, partitioner_idx):
        # Deduplicate (entity, t) pairs: same node IRI would merge docs.
        unique = {}
        for report in reports:
            unique[(report.entity_id, report.t)] = report
        reports = list(unique.values())
        query = BBox(qx, qy, qx + 2.0, qy + 2.0)

        store = build_store(reports, PARTITIONERS[partitioner_idx])
        executor = QueryExecutor(store)
        nodes, info = executor.range_query(query, 0.0, float(t_hi))

        expected = sorted(
            f"{r.entity_id}@{r.t:.3f}"
            for r in reports
            if query.contains(r.lon, r.lat) and 0.0 <= r.t <= t_hi
        )
        got = sorted(n.value.rsplit("/node/", 1)[1].replace("/", "@") for n in nodes)
        assert got == expected

    @given(reports=st.lists(report_strategy(), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_triple_count_invariant_across_partitioners(self, reports):
        unique = {}
        for report in reports:
            unique[(report.entity_id, report.t)] = report
        reports = list(unique.values())
        sizes = {
            len(build_store(reports, factory)) for factory in PARTITIONERS
        }
        assert len(sizes) == 1

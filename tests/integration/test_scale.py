"""Scale smoke test: a large fleet through the full pipeline."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MobilityPipeline
from repro.sources.generators import MaritimeTrafficGenerator


@pytest.mark.slow
class TestScale:
    def test_hundred_vessels(self):
        sample = MaritimeTrafficGenerator(seed=77).generate(
            n_vessels=100, max_duration_s=1800.0
        )
        pipeline = MobilityPipeline(
            bbox=sample.world.bbox,
            config=PipelineConfig(n_partitions=8),
            registry=sample.registry,
            zones=sample.world.zones,
        )
        result = pipeline.run(sample.reports)
        assert result.reports_in > 10_000
        assert result.throughput_rps > 300.0
        assert result.end_to_end["p99_ms"] < 100.0
        assert result.compression_ratio > 0.8
        # Every vessel queryable afterwards.
        for entity_id in list(sample.truth)[:10]:
            assert len(pipeline.executor.entity_trajectory(entity_id)) >= 2
        # Partitions reasonably used.
        stats = pipeline.store.stats()
        assert sum(1 for n in stats.triples_per_partition if n > 0) >= 4

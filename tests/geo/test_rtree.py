"""R-tree insertion and query correctness (vs brute force)."""

import numpy as np
import pytest

from repro.geo.bbox import BBox
from repro.geo.rtree import RTree


def random_boxes(n, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        lon = float(rng.uniform(-10, 10))
        lat = float(rng.uniform(-10, 10))
        w = float(rng.uniform(0.01, 1.0))
        h = float(rng.uniform(0.01, 1.0))
        out.append((BBox(lon, lat, lon + w, lat + h), i))
    return out


class TestRTree:
    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_empty_query(self):
        tree = RTree()
        assert tree.query(BBox(0, 0, 1, 1)) == []

    def test_single_item(self):
        tree = RTree()
        tree.insert(BBox(0, 0, 1, 1), "x")
        assert tree.query(BBox(0.5, 0.5, 2, 2)) == ["x"]
        assert tree.query(BBox(2, 2, 3, 3)) == []
        assert len(tree) == 1

    @pytest.mark.parametrize("n", [10, 100, 300])
    def test_matches_brute_force(self, n):
        boxes = random_boxes(n, seed=n)
        tree = RTree()
        for box, item in boxes:
            tree.insert(box, item)
        assert len(tree) == n
        for query, __ in random_boxes(20, seed=999):
            expected = sorted(i for b, i in boxes if b.intersects(query))
            got = sorted(tree.query(query))
            assert got == expected

    def test_all_items_complete(self):
        boxes = random_boxes(50, seed=7)
        tree = RTree()
        for box, item in boxes:
            tree.insert(box, item)
        assert sorted(tree.all_items()) == list(range(50))

    def test_duplicate_boxes_allowed(self):
        tree = RTree()
        box = BBox(0, 0, 1, 1)
        for i in range(20):
            tree.insert(box, i)
        assert sorted(tree.query(box)) == list(range(20))

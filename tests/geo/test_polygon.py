"""Polygon containment."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.polygon import Polygon, point_in_polygon


SQUARE = ((24.0, 37.0), (25.0, 37.0), (25.0, 38.0), (24.0, 38.0))


class TestPointInPolygon:
    def test_inside(self):
        assert point_in_polygon(24.5, 37.5, SQUARE)

    def test_outside(self):
        assert not point_in_polygon(25.5, 37.5, SQUARE)
        assert not point_in_polygon(24.5, 38.5, SQUARE)

    def test_too_few_vertices(self):
        assert not point_in_polygon(24.0, 37.0, ((24.0, 37.0), (25.0, 37.0)))

    def test_concave_polygon(self):
        # A "C" shape: the notch is outside.
        ring = (
            (0.0, 0.0), (4.0, 0.0), (4.0, 1.0), (1.0, 1.0),
            (1.0, 3.0), (4.0, 3.0), (4.0, 4.0), (0.0, 4.0),
        )
        assert point_in_polygon(0.5, 2.0, ring)
        assert not point_in_polygon(2.5, 2.0, ring)  # in the notch


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon("bad", ((0.0, 0.0), (1.0, 1.0)))

    def test_bbox_fast_reject(self):
        zone = Polygon("z", SQUARE)
        assert zone.bbox == BBox(24.0, 37.0, 25.0, 38.0)
        assert not zone.contains(30.0, 37.5)

    def test_contains_center(self):
        zone = Polygon("z", SQUARE)
        assert zone.contains(24.5, 37.5)

    def test_rectangle_factory(self):
        zone = Polygon.rectangle("r", BBox(1.0, 2.0, 3.0, 4.0))
        assert zone.contains(2.0, 3.0)
        assert not zone.contains(0.5, 3.0)

    def test_centroid_of_square(self):
        zone = Polygon("z", SQUARE)
        lon, lat = zone.centroid()
        assert lon == pytest.approx(24.5)
        assert lat == pytest.approx(37.5)

"""Geodesy: correctness against known values and metric invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geodesy import (
    EARTH_RADIUS_M,
    cross_track_distance_m,
    destination_point,
    distance_3d_m,
    enu_offset_m,
    haversine_m,
    haversine_m_arrays,
    heading_difference_deg,
    initial_bearing_deg,
    knots_to_mps,
    mps_to_knots,
    normalize_heading_deg,
)

lons = st.floats(min_value=-179.0, max_value=179.0)
lats = st.floats(min_value=-85.0, max_value=85.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(23.0, 37.0, 23.0, 37.0) == 0.0

    def test_one_degree_latitude_is_about_111km(self):
        d = haversine_m(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_equator_quarter_circumference(self):
        d = haversine_m(0.0, 0.0, 90.0, 0.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M / 2.0, rel=1e-6)

    def test_known_city_pair(self):
        # Piraeus to Heraklion, roughly 300 km.
        d = haversine_m(23.62, 37.94, 25.15, 35.35)
        assert 280_000 < d < 330_000

    @given(lon1=lons, lat1=lats, lon2=lons, lat2=lats)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, lon1, lat1, lon2, lat2):
        d1 = haversine_m(lon1, lat1, lon2, lat2)
        d2 = haversine_m(lon2, lat2, lon1, lat1)
        assert d1 == pytest.approx(d2, abs=1e-6)

    @given(lon1=lons, lat1=lats, lon2=lons, lat2=lats, lon3=lons, lat3=lats)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, lon1, lat1, lon2, lat2, lon3, lat3):
        d12 = haversine_m(lon1, lat1, lon2, lat2)
        d23 = haversine_m(lon2, lat2, lon3, lat3)
        d13 = haversine_m(lon1, lat1, lon3, lat3)
        assert d13 <= d12 + d23 + 1e-6

    def test_array_version_matches_scalar(self):
        lon1 = np.array([23.0, 24.0, 25.0])
        lat1 = np.array([37.0, 36.5, 38.0])
        lon2 = np.array([23.5, 24.5, 25.5])
        lat2 = np.array([37.5, 36.0, 38.5])
        arr = haversine_m_arrays(lon1, lat1, lon2, lat2)
        for i in range(3):
            scalar = haversine_m(lon1[i], lat1[i], lon2[i], lat2[i])
            assert arr[i] == pytest.approx(scalar, rel=1e-12)


class TestDestinationPoint:
    @given(lon=lons, lat=lats, bearing=st.floats(0, 360), dist=st.floats(1.0, 500_000))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_distance(self, lon, lat, bearing, dist):
        lon2, lat2 = destination_point(lon, lat, bearing, dist)
        back = haversine_m(lon, lat, lon2, lat2)
        assert back == pytest.approx(dist, rel=1e-6, abs=0.1)

    def test_due_north(self):
        lon2, lat2 = destination_point(10.0, 50.0, 0.0, 111_195)
        assert lon2 == pytest.approx(10.0, abs=1e-6)
        assert lat2 == pytest.approx(51.0, abs=0.01)

    def test_bearing_recovered(self):
        lon2, lat2 = destination_point(24.0, 37.0, 45.0, 50_000)
        bearing = initial_bearing_deg(24.0, 37.0, lon2, lat2)
        assert bearing == pytest.approx(45.0, abs=0.5)


class TestBearing:
    def test_cardinal_directions(self):
        assert initial_bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(0.0, abs=1e-9)
        assert initial_bearing_deg(0.0, 0.0, 1.0, 0.0) == pytest.approx(90.0, abs=1e-9)
        assert initial_bearing_deg(0.0, 1.0, 0.0, 0.0) == pytest.approx(180.0, abs=1e-9)
        assert initial_bearing_deg(1.0, 0.0, 0.0, 0.0) == pytest.approx(270.0, abs=1e-9)

    @given(lon1=lons, lat1=lats, lon2=lons, lat2=lats)
    @settings(max_examples=100, deadline=None)
    def test_range(self, lon1, lat1, lon2, lat2):
        bearing = initial_bearing_deg(lon1, lat1, lon2, lat2)
        assert 0.0 <= bearing < 360.0


class TestCrossTrack:
    def test_point_on_segment(self):
        # The equator is a great circle, so a point on it has zero
        # cross-track distance (a constant-latitude line at 37° would not:
        # the great circle bulges poleward between its endpoints).
        d = cross_track_distance_m(0.5, 0.0, 0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(0.0, abs=1.0)

    def test_midlatitude_parallel_bulge(self):
        # Documenting the great-circle bulge: ~100 m over a 1° chord at 37°.
        d = cross_track_distance_m(24.5, 37.0, 24.0, 37.0, 25.0, 37.0)
        assert 50.0 < d < 200.0

    def test_point_north_of_segment(self):
        d = cross_track_distance_m(24.5, 37.1, 24.0, 37.0, 25.0, 37.0)
        assert d == pytest.approx(haversine_m(24.5, 37.1, 24.5, 37.0), rel=0.02)

    def test_clamps_before_start(self):
        d = cross_track_distance_m(23.0, 37.0, 24.0, 37.0, 25.0, 37.0)
        assert d == pytest.approx(haversine_m(23.0, 37.0, 24.0, 37.0), rel=1e-6)

    def test_clamps_after_end(self):
        d = cross_track_distance_m(26.0, 37.0, 24.0, 37.0, 25.0, 37.0)
        assert d == pytest.approx(haversine_m(26.0, 37.0, 25.0, 37.0), rel=1e-6)

    def test_degenerate_segment(self):
        d = cross_track_distance_m(24.5, 37.0, 24.0, 37.0, 24.0, 37.0)
        assert d == pytest.approx(haversine_m(24.5, 37.0, 24.0, 37.0), rel=1e-9)


class TestHeadingHelpers:
    def test_normalize(self):
        assert normalize_heading_deg(370.0) == pytest.approx(10.0)
        assert normalize_heading_deg(-10.0) == pytest.approx(350.0)

    def test_difference_wraps(self):
        assert heading_difference_deg(350.0, 10.0) == pytest.approx(20.0)
        assert heading_difference_deg(0.0, 180.0) == pytest.approx(180.0)

    @given(h1=st.floats(0, 360), h2=st.floats(0, 360))
    @settings(max_examples=50, deadline=None)
    def test_difference_range_and_symmetry(self, h1, h2):
        d = heading_difference_deg(h1, h2)
        assert 0.0 <= d <= 180.0
        assert d == pytest.approx(heading_difference_deg(h2, h1))


class TestUnitsAndEnu:
    def test_knots_roundtrip(self):
        assert mps_to_knots(knots_to_mps(12.5)) == pytest.approx(12.5)

    def test_enu_east_matches_haversine(self):
        east, north = enu_offset_m(24.0, 37.0, 24.1, 37.0)
        assert north == pytest.approx(0.0, abs=1e-9)
        assert east == pytest.approx(haversine_m(24.0, 37.0, 24.1, 37.0), rel=0.001)

    def test_distance_3d_vertical_component(self):
        d = distance_3d_m(24.0, 37.0, 0.0, 24.0, 37.0, 3000.0)
        assert d == pytest.approx(3000.0)

    def test_distance_3d_none_altitude_is_horizontal(self):
        d = distance_3d_m(24.0, 37.0, None, 24.1, 37.0, 5000.0)
        assert d == pytest.approx(haversine_m(24.0, 37.0, 24.1, 37.0))

"""GeoGrid cell mapping and GridIndex queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.geodesy import haversine_m
from repro.geo.grid import GeoGrid, GridIndex


@pytest.fixture()
def grid(unit_bbox):
    return GeoGrid(bbox=unit_bbox, nx=10, ny=10)


class TestGeoGrid:
    def test_invalid_dimensions(self, unit_bbox):
        with pytest.raises(ValueError):
            GeoGrid(bbox=unit_bbox, nx=0, ny=5)

    def test_cell_of_corners(self, grid):
        assert grid.cell_of(24.0, 37.0) == (0, 0)
        assert grid.cell_of(25.0, 38.0) == (9, 9)  # clamped upper edge

    def test_cell_of_clamps_outside(self, grid):
        assert grid.cell_of(23.0, 36.0) == (0, 0)
        assert grid.cell_of(26.0, 39.0) == (9, 9)

    def test_cell_id_flat_layout(self, grid):
        ix, iy = grid.cell_of(24.55, 37.25)
        assert grid.cell_id(24.55, 37.25) == iy * grid.nx + ix

    def test_cell_bbox_contains_cell_points(self, grid):
        box = grid.cell_bbox(3, 7)
        assert grid.cell_of(*box.center) == (3, 7)

    def test_cell_bbox_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.cell_bbox(10, 0)

    def test_cells_intersecting_subregion(self, grid):
        cells = list(grid.cells_intersecting(BBox(24.0, 37.0, 24.25, 37.15)))
        assert (0, 0) in cells
        assert all(ix <= 2 and iy <= 1 for ix, iy in cells)

    def test_neighbors_center(self, grid):
        cells = list(grid.neighbors(5, 5, radius=1))
        assert len(cells) == 9
        assert (5, 5) in cells

    def test_neighbors_corner_truncated(self, grid):
        cells = list(grid.neighbors(0, 0, radius=1))
        assert len(cells) == 4

    @given(lon=st.floats(24.0, 25.0), lat=st.floats(37.0, 38.0))
    @settings(max_examples=100, deadline=None)
    def test_every_point_maps_to_containing_cell(self, lon, lat):
        fresh_grid = GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=10, ny=10)
        ix, iy = fresh_grid.cell_of(lon, lat)
        box = fresh_grid.cell_bbox(ix, iy)
        assert box.contains(lon, lat)


class TestGridIndex:
    def test_insert_and_bbox_query(self, grid):
        index = GridIndex(grid)
        index.insert(24.1, 37.1, "a")
        index.insert(24.9, 37.9, "b")
        found = index.query_bbox(BBox(24.0, 37.0, 24.5, 37.5))
        assert found == ["a"]

    def test_radius_query_exact_filtering(self, grid):
        index = GridIndex(grid)
        index.insert(24.5, 37.5, "near")
        index.insert(24.6, 37.5, "mid")  # ~8.8 km east
        index.insert(24.9, 37.5, "far")
        found = index.query_radius(24.5, 37.5, 10_000.0)
        assert set(found) == {"near", "mid"}

    def test_radius_query_crosses_cells(self, grid):
        index = GridIndex(grid)
        # Two points in different cells but within 3 km of each other.
        index.insert(24.499, 37.5, "left")
        index.insert(24.501, 37.5, "right")
        assert haversine_m(24.499, 37.5, 24.501, 37.5) < 3000
        found = index.query_radius(24.499, 37.5, 3000.0)
        assert set(found) == {"left", "right"}

    def test_len_and_insert_many(self, grid):
        index = GridIndex(grid)
        index.insert_many([(24.1, 37.1, i) for i in range(5)])
        assert len(index) == 5

    def test_cell_counts(self, grid):
        index = GridIndex(grid)
        index.insert(24.05, 37.05, "x")
        index.insert(24.06, 37.06, "y")
        counts = index.cell_counts()
        assert counts[grid.cell_of(24.05, 37.05)] == 2

"""ZoneIndex exactness: the grid prefilter must be invisible.

The index only pays off if it never changes an answer, so the oracle is
the linear scan it replaces: for arbitrary polygons and query points,
``containing()`` yields exactly the zones whose ``contains()`` is true,
in original zone order, and the candidate set is always a superset of
the containing set (the clamping-monotonicity argument from the module
docstring, checked empirically here).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.polygon import Polygon
from repro.geo.zone_index import PREFILTER_MIN_ZONES, ZoneIndex

coord = st.tuples(
    st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
    st.floats(min_value=-20.0, max_value=20.0, allow_nan=False),
)


@st.composite
def polygons(draw):
    """Arbitrary (possibly self-intersecting) rings; ray-casting copes."""
    n = draw(st.integers(min_value=3, max_value=8))
    ring = tuple(draw(coord) for _ in range(n))
    return Polygon(name=f"z{draw(st.integers(min_value=0, max_value=10**6))}", ring=ring)


@st.composite
def zone_sets(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    zones = [draw(polygons()) for _ in range(n)]
    # Names must only be distinct enough for debugging; the index works
    # positionally, so collisions are harmless.
    return zones


class TestContainmentOracle:
    @settings(max_examples=100, deadline=None)
    @given(zones=zone_sets(), point=coord)
    def test_containing_equals_linear_scan(self, zones, point):
        lon, lat = point
        index = ZoneIndex(zones)
        expected = [z for z in zones if z.contains(lon, lat)]
        assert list(index.containing(lon, lat)) == expected

    @settings(max_examples=100, deadline=None)
    @given(zones=zone_sets(), point=coord)
    def test_candidates_are_a_superset_in_order(self, zones, point):
        lon, lat = point
        index = ZoneIndex(zones)
        candidate_ids = index.candidate_indices(lon, lat)
        assert list(candidate_ids) == sorted(candidate_ids)
        containing = {i for i, z in enumerate(zones) if z.contains(lon, lat)}
        assert containing <= set(candidate_ids)

    @settings(max_examples=50, deadline=None)
    @given(zones=zone_sets(), point=coord)
    def test_candidates_matches_candidate_indices(self, zones, point):
        lon, lat = point
        index = ZoneIndex(zones)
        assert index.candidates(lon, lat) == [
            zones[i] for i in index.candidate_indices(lon, lat)
        ]


class TestEdgeCases:
    def test_empty_index(self):
        index = ZoneIndex([])
        assert len(index) == 0
        assert index.candidate_indices(0.0, 0.0) == ()
        assert list(index.containing(0.0, 0.0)) == []

    def test_degenerate_union_one_point_zones(self):
        """All zones collapse to one point: the padded grid still works."""
        zone = Polygon("dot", ((5.0, 5.0), (5.0, 5.0), (5.0, 5.0)))
        index = ZoneIndex([zone, zone])
        assert list(index.containing(5.0, 5.0)) == [z for z in (zone, zone) if z.contains(5.0, 5.0)]
        assert list(index.containing(6.0, 5.0)) == []

    def test_point_far_outside_union(self):
        zones = [Polygon.rectangle(f"r{i}", BBox(i, 0.0, i + 0.5, 1.0)) for i in range(10)]
        index = ZoneIndex(zones)
        assert list(index.containing(500.0, 500.0)) == []
        assert list(index.containing(-500.0, -500.0)) == []

    def test_overlapping_zones_preserve_order(self):
        a = Polygon.rectangle("a", BBox(0.0, 0.0, 2.0, 2.0))
        b = Polygon.rectangle("b", BBox(1.0, 1.0, 3.0, 3.0))
        c = Polygon.rectangle("c", BBox(0.5, 0.5, 2.5, 2.5))
        index = ZoneIndex([a, b, c])
        assert [z.name for z in index.containing(1.5, 1.5)] == ["a", "b", "c"]

    def test_min_zones_constant_sane(self):
        assert PREFILTER_MIN_ZONES >= 2


class TestExtractorParity:
    def test_zone_events_with_and_without_index(self):
        """The extractor emits the same event stream either way."""
        from repro.cep.simple import SimpleEventExtractor
        from repro.sources.generators import MaritimeTrafficGenerator

        sample = MaritimeTrafficGenerator(seed=55).generate(
            n_vessels=4, max_duration_s=1800.0
        )
        bbox = sample.world.bbox
        lon_step = (bbox.max_lon - bbox.min_lon) / 4.0
        zones = list(sample.world.zones) + [
            Polygon.rectangle(
                f"strip{i}",
                BBox(bbox.min_lon + i * lon_step, bbox.min_lat, bbox.min_lon + (i + 1) * lon_step, bbox.max_lat),
            )
            for i in range(4)
        ]
        reports = sorted(sample.reports, key=lambda r: r.t)

        plain = SimpleEventExtractor(zones=zones)
        indexed = SimpleEventExtractor(zones=zones, zone_index=ZoneIndex(zones))
        events_plain = [e for r in reports for e in plain.process(r)]
        events_indexed = [e for r in reports for e in indexed.process(r)]
        assert [
            (e.event_type, e.entity_id, e.t, e.attributes) for e in events_indexed
        ] == [(e.event_type, e.entity_id, e.t, e.attributes) for e in events_plain]
        assert any(e.event_type.startswith("zone_") for e in events_plain)

    def test_index_length_mismatch_rejected(self):
        from repro.cep.simple import SimpleEventExtractor

        a = Polygon.rectangle("a", BBox(0.0, 0.0, 1.0, 1.0))
        b = Polygon.rectangle("b", BBox(2.0, 2.0, 3.0, 3.0))
        with pytest.raises(ValueError):
            SimpleEventExtractor(zones=[a, b], zone_index=ZoneIndex([a]))


class TestKernelParity:
    """The vectorized haversine must track the scalar one to a few ulp.

    Not bitwise: numpy may dispatch SIMD transcendental kernels whose
    results differ from libm's by 1-2 ulp. Consumers that make decisions
    from batch values either share the kernel on both paths or recompute
    near decision boundaries (``_BOUNDARY_MARGIN``), so a small ulp bound
    is the correct contract — and this test enforces it stays small.
    """

    @settings(max_examples=200, deadline=None)
    @given(
        lon1=st.floats(min_value=-180.0, max_value=180.0, allow_nan=False),
        lat1=st.floats(min_value=-85.0, max_value=85.0, allow_nan=False),
        lon2=st.floats(min_value=-180.0, max_value=180.0, allow_nan=False),
        lat2=st.floats(min_value=-85.0, max_value=85.0, allow_nan=False),
    )
    def test_array_kernel_within_4_ulp_of_scalar(self, lon1, lat1, lon2, lat2):
        import numpy as np

        from repro.geo.geodesy import haversine_m, haversine_m_arrays

        scalar = haversine_m(lon1, lat1, lon2, lat2)
        vector = float(
            haversine_m_arrays(
                np.array([lon1]), np.array([lat1]), np.array([lon2]), np.array([lat2])
            )[0]
        )
        tolerance = 4 * math.ulp(max(scalar, vector, 1.0))
        assert abs(vector - scalar) <= tolerance

    def test_scalar_broadcast_matches_arrays(self):
        import numpy as np

        from repro.geo.geodesy import haversine_m_arrays

        lons = np.array([10.0, 11.0, 12.0])
        lats = np.array([50.0, 51.0, 52.0])
        broadcast = haversine_m_arrays(10.5, 50.5, lons, lats)
        explicit = haversine_m_arrays(
            np.full(3, 10.5), np.full(3, 50.5), lons, lats
        )
        assert np.array_equal(broadcast, explicit)

"""Adaptive quadtree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.quadtree import QuadTree


@pytest.fixture()
def box():
    return BBox(0.0, 0.0, 10.0, 10.0)


class TestInsertAndQuery:
    def test_empty(self, box):
        tree = QuadTree(box)
        assert len(tree) == 0
        assert tree.query_bbox(box) == []

    def test_query_matches_brute_force(self, box):
        rng = np.random.default_rng(3)
        points = [
            (float(rng.uniform(0, 10)), float(rng.uniform(0, 10)), i)
            for i in range(300)
        ]
        tree = QuadTree(box, capacity=8)
        for lon, lat, item in points:
            tree.insert(lon, lat, item)
        for __ in range(20):
            qx, qy = float(rng.uniform(0, 8)), float(rng.uniform(0, 8))
            query = BBox(qx, qy, qx + 2.0, qy + 2.0)
            expected = sorted(i for x, y, i in points if query.contains(x, y))
            assert sorted(tree.query_bbox(query)) == expected

    def test_outside_points_clamped(self, box):
        tree = QuadTree(box)
        tree.insert(-5.0, 20.0, "x")
        assert len(tree) == 1
        assert tree.query_bbox(box) == ["x"]

    def test_validation(self, box):
        with pytest.raises(ValueError):
            QuadTree(box, capacity=0)


class TestAdaptivity:
    def test_splits_only_where_dense(self, box):
        tree = QuadTree(box, capacity=4)
        rng = np.random.default_rng(5)
        for __ in range(200):  # all in one corner
            tree.insert(float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
        leaves = list(tree.leaves())
        # Deep subdivision near the corner, coarse elsewhere.
        assert tree.depth >= 3
        corner_leaves = [
            (b, c) for b, c in leaves if b.intersects(BBox(0, 0, 1, 1))
        ]
        far_leaves = [
            (b, c) for b, c in leaves if b.contains(9.0, 9.0)
        ]
        assert len(corner_leaves) > len(far_leaves)

    def test_leaf_counts_sum_to_size(self, box):
        tree = QuadTree(box, capacity=4)
        rng = np.random.default_rng(6)
        for __ in range(150):
            tree.insert(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        assert sum(count for __, count in tree.leaves()) == 150

    def test_max_depth_respected(self, box):
        tree = QuadTree(box, capacity=1, max_depth=3)
        for __ in range(50):  # identical points cannot split further
            tree.insert(5.0, 5.0)
        assert tree.depth <= 3

    def test_leaf_bbox_contains_point(self, box):
        tree = QuadTree(box, capacity=4)
        rng = np.random.default_rng(7)
        for __ in range(100):
            tree.insert(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        for __ in range(20):
            x, y = float(rng.uniform(0, 10)), float(rng.uniform(0, 10))
            leaf = tree.leaf_bbox(x, y)
            assert leaf.contains(x, y)

    @given(
        points=st.lists(
            st.tuples(st.floats(0, 10), st.floats(0, 10)), min_size=1, max_size=80
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_leaves_partition_space(self, points):
        tree = QuadTree(BBox(0.0, 0.0, 10.0, 10.0), capacity=4)
        for x, y in points:
            tree.insert(x, y)
        # Every point maps to exactly one leaf and total counts add up.
        assert sum(c for __, c in tree.leaves()) == len(points)
        for x, y in points:
            assert tree.leaf_bbox(x, y).contains(x, y)

"""Hilbert curve: bijectivity and locality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.hilbert import hilbert_d2xy, hilbert_xy2d


class TestBijectivity:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_full_roundtrip(self, order):
        n = 1 << order
        seen = set()
        for x in range(n):
            for y in range(n):
                d = hilbert_xy2d(order, x, y)
                assert 0 <= d < n * n
                assert d not in seen
                seen.add(d)
                assert hilbert_d2xy(order, d) == (x, y)
        assert len(seen) == n * n

    @given(order=st.integers(1, 8), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_random_roundtrip(self, order, data):
        n = 1 << order
        d = data.draw(st.integers(0, n * n - 1))
        x, y = hilbert_d2xy(order, d)
        assert hilbert_xy2d(order, x, y) == d


class TestBoundsAndLocality:
    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_xy2d(2, 4, 0)
        with pytest.raises(ValueError):
            hilbert_d2xy(2, 16)

    @pytest.mark.parametrize("order", [3, 5])
    def test_consecutive_curve_points_are_grid_neighbors(self, order):
        n = 1 << order
        prev = hilbert_d2xy(order, 0)
        for d in range(1, n * n):
            cur = hilbert_d2xy(order, d)
            manhattan = abs(cur[0] - prev[0]) + abs(cur[1] - prev[1])
            assert manhattan == 1  # the defining Hilbert property
            prev = cur

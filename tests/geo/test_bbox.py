"""BBox geometry operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox


def boxes():
    return st.builds(
        lambda lon, lat, w, h: BBox(lon, lat, lon + w, lat + h),
        st.floats(-170, 160),
        st.floats(-80, 70),
        st.floats(0.01, 10),
        st.floats(0.01, 10),
    )


class TestConstruction:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            BBox(25.0, 37.0, 24.0, 38.0)

    def test_degenerate_point_allowed(self):
        box = BBox(24.0, 37.0, 24.0, 37.0)
        assert box.area == 0.0
        assert box.contains(24.0, 37.0)

    def test_from_points(self):
        box = BBox.from_points([(24.0, 37.0), (25.0, 36.5), (24.5, 38.0)])
        assert box == BBox(24.0, 36.5, 25.0, 38.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.from_points([])


class TestPredicates:
    def test_contains_border(self, unit_bbox):
        assert unit_bbox.contains(24.0, 37.0)
        assert unit_bbox.contains(25.0, 38.0)
        assert not unit_bbox.contains(25.0001, 37.5)

    def test_intersects_overlap(self, unit_bbox):
        other = BBox(24.5, 37.5, 25.5, 38.5)
        assert unit_bbox.intersects(other)
        assert other.intersects(unit_bbox)

    def test_intersects_touching_edge(self, unit_bbox):
        other = BBox(25.0, 37.0, 26.0, 38.0)
        assert unit_bbox.intersects(other)

    def test_disjoint(self, unit_bbox):
        other = BBox(26.0, 37.0, 27.0, 38.0)
        assert not unit_bbox.intersects(other)
        assert unit_bbox.intersection(other) is None


class TestOperations:
    def test_intersection_shape(self, unit_bbox):
        other = BBox(24.5, 37.5, 25.5, 38.5)
        inter = unit_bbox.intersection(other)
        assert inter == BBox(24.5, 37.5, 25.0, 38.0)

    def test_union_covers_both(self, unit_bbox):
        other = BBox(26.0, 39.0, 27.0, 40.0)
        union = unit_bbox.union(other)
        assert union.contains(24.5, 37.5)
        assert union.contains(26.5, 39.5)

    def test_expanded_clamps_at_poles(self):
        box = BBox(-179.5, -89.5, 179.5, 89.5)
        grown = box.expanded(1.0)
        assert grown == BBox(-180.0, -90.0, 180.0, 90.0)

    def test_split4_partitions_area(self, unit_bbox):
        quads = unit_bbox.split4()
        assert len(quads) == 4
        assert sum(q.area for q in quads) == pytest.approx(unit_bbox.area)
        cx, cy = unit_bbox.center
        for quad in quads:
            assert quad.contains(cx, cy)

    @given(a=boxes(), b=boxes())
    @settings(max_examples=100, deadline=None)
    def test_intersection_symmetric_and_inside_union(self, a, b):
        inter_ab = a.intersection(b)
        inter_ba = b.intersection(a)
        assert inter_ab == inter_ba
        if inter_ab is not None:
            union = a.union(b)
            assert union.intersects(inter_ab)
            assert inter_ab.area <= min(a.area, b.area) + 1e-9

    @given(a=boxes())
    @settings(max_examples=50, deadline=None)
    def test_center_inside(self, a):
        cx, cy = a.center
        assert a.contains(cx, cy)

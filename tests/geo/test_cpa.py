"""CPA/TCPA computation on encounter geometries."""

import pytest

from repro.geo.cpa import cpa_tcpa
from repro.geo.geodesy import destination_point, haversine_m


class TestHeadOn:
    def test_reciprocal_courses_meet(self):
        # 10 km apart on a parallel, sailing at each other at 5 m/s each.
        lon2, lat2 = destination_point(24.0, 37.0, 90.0, 10_000.0)
        result = cpa_tcpa(24.0, 37.0, 5.0, 90.0, lon2, lat2, 5.0, 270.0)
        assert result.tcpa_s == pytest.approx(1000.0, rel=0.01)
        assert result.distance_m < 50.0
        assert result.current_distance_m == pytest.approx(10_000.0, rel=0.01)

    def test_parallel_same_course_constant_separation(self):
        lon2, lat2 = destination_point(24.0, 37.0, 0.0, 2_000.0)
        result = cpa_tcpa(24.0, 37.0, 6.0, 90.0, lon2, lat2, 6.0, 90.0)
        assert result.tcpa_s == 0.0
        assert result.distance_m == pytest.approx(2_000.0, rel=0.01)

    def test_diverging_tcpa_zero(self):
        lon2, lat2 = destination_point(24.0, 37.0, 90.0, 5_000.0)
        # Both sail away from each other.
        result = cpa_tcpa(24.0, 37.0, 5.0, 270.0, lon2, lat2, 5.0, 90.0)
        assert result.tcpa_s == 0.0
        assert result.distance_m == pytest.approx(5_000.0, rel=0.01)


class TestCrossing:
    def test_perpendicular_crossing(self):
        # A sails north, B starts 10 km north of A's path sailing east;
        # geometry: minimum separation depends on offsets — just sanity
        # check the CPA is below the initial separation.
        lon_b, lat_b = destination_point(24.0, 37.0, 0.0, 10_000.0)
        lon_b, lat_b = destination_point(lon_b, lat_b, 270.0, 10_000.0)
        result = cpa_tcpa(24.0, 37.0, 7.0, 0.0, lon_b, lat_b, 7.0, 90.0)
        assert result.distance_m < result.current_distance_m
        assert result.tcpa_s > 0


class TestVertical:
    def test_aircraft_vertical_separation_counts(self):
        # Same horizontal spot and track, 1000 m vertical separation.
        result = cpa_tcpa(
            24.0, 37.0, 200.0, 90.0, 24.0, 37.0, 200.0, 90.0,
            alt1=10_000.0, alt2=11_000.0,
        )
        assert result.distance_m == pytest.approx(1_000.0, rel=0.01)

    def test_climbing_into_conflict(self):
        # Below and climbing at 10 m/s toward a level aircraft 600 m above.
        result = cpa_tcpa(
            24.0, 37.0, 200.0, 90.0, 24.0, 37.0, 200.0, 90.0,
            alt1=10_000.0, alt2=10_600.0, vrate1_mps=10.0, vrate2_mps=0.0,
        )
        assert result.tcpa_s == pytest.approx(60.0, rel=0.01)
        assert result.distance_m < 10.0


class TestHorizonClamp:
    def test_distant_encounter_clamped(self):
        lon2, lat2 = destination_point(24.0, 37.0, 90.0, 200_000.0)
        result = cpa_tcpa(
            24.0, 37.0, 1.0, 90.0, lon2, lat2, 1.0, 270.0, horizon_s=3600.0
        )
        assert result.tcpa_s == 3600.0

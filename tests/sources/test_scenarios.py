"""Scripted scenarios: internal consistency of the ground truth."""

import pytest

from repro.geo.geodesy import haversine_m
from repro.sources.scenarios import (
    collision_course_scenario,
    loitering_scenario,
    rendezvous_scenario,
    zone_intrusion_scenario,
)


class TestCollisionCourse:
    def test_vessels_actually_meet(self):
        scenario = collision_course_scenario(separation_km=12.0, speed_mps=8.0)
        t_meet = 12_000.0 / 16.0
        a = scenario.truth["CC01"].at_time(t_meet)
        b = scenario.truth["CC02"].at_time(t_meet)
        assert haversine_m(a.lon, a.lat, b.lon, b.lat) < 1500.0

    def test_expected_window_covers_meeting(self):
        scenario = collision_course_scenario()
        (expected,) = scenario.expected
        assert expected.event_type == "collision_risk"
        assert expected.t_from < expected.t_to

    def test_reports_for_both_vessels(self):
        scenario = collision_course_scenario()
        ids = {r.entity_id for r in scenario.reports}
        assert ids == {"CC01", "CC02"}


class TestLoitering:
    def test_slow_phase_exists(self):
        scenario = loitering_scenario(loiter_duration_s=1200.0)
        truth = scenario.truth["LT01"]
        (expected,) = scenario.expected
        mid = (expected.t_from + expected.t_to) / 2.0
        window = truth.slice_time(mid - 300.0, mid + 300.0)
        speeds = window.speeds_mps()
        assert float(speeds.mean()) < 0.8

    def test_transit_phases_fast(self):
        scenario = loitering_scenario()
        truth = scenario.truth["LT01"]
        early = truth.slice_time(0.0, 600.0).speeds_mps()
        assert float(early.mean()) > 5.0


class TestZoneIntrusion:
    def test_truth_crosses_zone(self):
        scenario = zone_intrusion_scenario()
        zone = scenario.zones[0]
        truth = scenario.truth["ZI01"]
        inside = [zone.contains(p.lon, p.lat) for p in truth]
        assert any(inside)
        assert not inside[0] and not inside[-1]

    def test_expected_entry_before_exit(self):
        scenario = zone_intrusion_scenario()
        entry = next(e for e in scenario.expected if e.event_type == "zone_entry")
        exit_ = next(e for e in scenario.expected if e.event_type == "zone_exit")
        assert entry.t_from < exit_.t_from


class TestAviationNearMiss:
    def test_conflicting_pair_meets_at_level(self):
        from repro.sources.scenarios import aviation_near_miss_scenario

        scenario = aviation_near_miss_scenario()
        t_cross = 150_000.0 / 220.0
        a = scenario.truth["NM01"].at_time(t_cross)
        b = scenario.truth["NM02"].at_time(t_cross)
        assert haversine_m(a.lon, a.lat, b.lon, b.lat) < 3_000.0
        assert abs(a.alt - b.alt) < 1.0

    def test_third_aircraft_below(self):
        from repro.sources.scenarios import aviation_near_miss_scenario

        scenario = aviation_near_miss_scenario()
        assert float(scenario.truth["NM03"].alt.max()) == pytest.approx(9_400.0)

    def test_negative_control_has_no_expectations(self):
        from repro.sources.scenarios import aviation_near_miss_scenario

        scenario = aviation_near_miss_scenario(vertical_separation_m=600.0)
        assert scenario.expected == []
        alts = {
            entity: float(track.alt[0]) for entity, track in scenario.truth.items()
        }
        values = sorted(alts.values())
        assert all(b - a >= 590.0 for a, b in zip(values, values[1:]))


class TestRendezvous:
    def test_vessels_converge_and_hold(self):
        scenario = rendezvous_scenario()
        a = scenario.truth["RV01"]
        b = scenario.truth["RV02"]
        # During the hold both are within a few hundred metres.
        t_mid = (a.start_time + a.end_time) / 2.0
        pa, pb = a.at_time(t_mid), b.at_time(t_mid)
        assert haversine_m(pa.lon, pa.lat, pb.lon, pb.lat) < 800.0

    def test_expected_pair(self):
        scenario = rendezvous_scenario()
        (expected,) = scenario.expected
        assert set(expected.entity_ids) == {"RV01", "RV02"}

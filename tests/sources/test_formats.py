"""Wire format encoding/decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.points import Domain
from repro.model.reports import PositionReport, ReportSource
from repro.sources.formats import (
    AIS_CSV_HEADER,
    FormatError,
    decode_adsb_json,
    decode_adsb_json_batch,
    decode_ais_csv,
    decode_ais_csv_batch,
    dump_ais_csv,
    encode_adsb_json,
    encode_ais_csv,
)


def vessel_report(**kwargs):
    defaults = dict(
        entity_id="205123456", t=1200.5, lon=24.123456, lat=37.654321,
        speed=6.17, heading=123.4, source=ReportSource.AIS_TERRESTRIAL,
    )
    defaults.update(kwargs)
    return PositionReport(**defaults)


def flight_report(**kwargs):
    defaults = dict(
        entity_id="abc123", t=300.0, lon=8.5, lat=47.3, alt=10_000.0,
        speed=230.0, heading=270.0, vertical_rate=5.0,
        source=ReportSource.ADSB, domain=Domain.AVIATION,
    )
    defaults.update(kwargs)
    return PositionReport(**defaults)


class TestAisCsv:
    def test_roundtrip(self):
        report = vessel_report()
        back = decode_ais_csv(encode_ais_csv(report))
        assert back.entity_id == report.entity_id
        assert back.t == pytest.approx(report.t, abs=1e-3)
        assert back.lon == pytest.approx(report.lon, abs=1e-6)
        assert back.lat == pytest.approx(report.lat, abs=1e-6)
        assert back.speed == pytest.approx(report.speed, abs=0.02)
        assert back.heading == pytest.approx(report.heading, abs=0.1)
        assert back.source is ReportSource.AIS_TERRESTRIAL

    def test_missing_kinematics_roundtrip(self):
        report = vessel_report(speed=None, heading=None)
        back = decode_ais_csv(encode_ais_csv(report))
        assert back.speed is None and back.heading is None

    @pytest.mark.parametrize(
        "line",
        [
            "",                                           # empty
            "a,b,c",                                      # wrong arity
            "205,xx,37.0,24.0,5.0,90.0,ais_terrestrial",  # bad timestamp
            ",100,37.0,24.0,5.0,90.0,ais_terrestrial",    # empty mmsi
            "205,100,99.0,24.0,5.0,90.0,ais_terrestrial", # invalid latitude
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(FormatError):
            decode_ais_csv(line)

    def test_batch_skips_garbage_and_header(self):
        good = encode_ais_csv(vessel_report())
        lines = [AIS_CSV_HEADER, good, "garbage,line", "", good]
        reports, bad = decode_ais_csv_batch(lines)
        assert len(reports) == 2
        assert bad == 1

    def test_dump_includes_header(self):
        lines = list(dump_ais_csv([vessel_report()]))
        assert lines[0] == AIS_CSV_HEADER
        assert len(lines) == 2

    @given(
        lon=st.floats(-179.9, 179.9),
        lat=st.floats(-89.9, 89.9),
        speed=st.floats(0.0, 25.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, lon, lat, speed):
        report = vessel_report(lon=lon, lat=lat, speed=speed, heading=None)
        back = decode_ais_csv(encode_ais_csv(report))
        assert back.lon == pytest.approx(lon, abs=1e-5)
        assert back.lat == pytest.approx(lat, abs=1e-5)
        assert back.speed == pytest.approx(speed, abs=0.02)


class TestAdsbJson:
    def test_roundtrip_with_units(self):
        report = flight_report()
        back = decode_adsb_json(encode_adsb_json(report))
        assert back.entity_id == report.entity_id
        assert back.alt == pytest.approx(report.alt, abs=0.1)
        assert back.speed == pytest.approx(report.speed, abs=0.1)
        assert back.vertical_rate == pytest.approx(report.vertical_rate, abs=0.01)
        assert back.domain is Domain.AVIATION

    def test_null_fields(self):
        report = flight_report(alt=None, speed=None, heading=None, vertical_rate=None)
        back = decode_adsb_json(encode_adsb_json(report))
        assert back.alt is None and back.speed is None

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1,2,3]",
            '{"time": 5}',                                   # missing icao24
            '{"icao24": "", "time": 5, "lat": 1, "lon": 2}', # empty id
            '{"icao24": "x", "time": "late", "lat": 1, "lon": 2}',
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(FormatError):
            decode_adsb_json(line)

    def test_batch(self):
        good = encode_adsb_json(flight_report())
        reports, bad = decode_adsb_json_batch([good, "junk", "", good])
        assert len(reports) == 2
        assert bad == 1


class TestIntoCommonRepresentation:
    def test_decoded_wire_data_transforms_to_rdf(self):
        """Wire format → report → triples: the full ingestion path."""
        from repro.rdf.transform import RdfTransformer
        from repro.rdf import vocabulary as V

        transformer = RdfTransformer()
        line = encode_ais_csv(vessel_report())
        report = decode_ais_csv(line)
        triples = transformer.report_to_triples(report)
        assert any(t.p == V.PROP_LON for t in triples)

        obj = encode_adsb_json(flight_report())
        report = decode_adsb_json(obj)
        triples = transformer.report_to_triples(report)
        assert any(t.p == V.PROP_ALT for t in triples)

"""Waypoint-following motion simulation."""

import numpy as np
import pytest

from repro.geo.geodesy import haversine_m, heading_difference_deg
from repro.sources.kinematics import FlightProfile, simulate_route
from repro.sources.world import RouteSpec


@pytest.fixture()
def simple_route():
    return RouteSpec("W->E", ((24.0, 37.0), (24.5, 37.0)), speed_mps=10.0)


class TestSimulateRoute:
    def test_starts_at_origin(self, simple_route):
        track = simulate_route("V1", simple_route, dt_s=5.0)
        assert track[0].lon == pytest.approx(24.0)
        assert track[0].lat == pytest.approx(37.0)

    def test_reaches_destination(self, simple_route):
        track = simulate_route("V1", simple_route, dt_s=5.0)
        end = track[len(track) - 1]
        dist = haversine_m(end.lon, end.lat, 24.5, 37.0)
        assert dist <= 600.0  # arrival radius + one step

    def test_speed_respected(self, simple_route):
        track = simulate_route("V1", simple_route, dt_s=5.0)
        speeds = track.speeds_mps()
        assert np.all(speeds <= 10.5)
        assert np.median(speeds) == pytest.approx(10.0, rel=0.05)

    def test_duration_matches_distance(self, simple_route):
        track = simulate_route("V1", simple_route, dt_s=5.0)
        expected = track.length_m() / 10.0
        assert track.duration == pytest.approx(expected, rel=0.05)

    def test_turn_rate_limits_heading_change(self):
        # A 90° dogleg: the turn must be spread over multiple steps.
        route = RouteSpec(
            "dogleg", ((24.0, 37.0), (24.2, 37.0), (24.2, 37.2)), speed_mps=10.0
        )
        track = simulate_route("V1", route, dt_s=5.0, turn_rate_deg_s=1.0)
        headings = track.headings_deg()
        max_step = max(
            heading_difference_deg(float(headings[i]), float(headings[i + 1]))
            for i in range(len(headings) - 1)
        )
        assert max_step <= 5.5  # 1°/s × 5 s + numeric slack

    def test_speed_jitter_stays_bounded(self, simple_route):
        rng = np.random.default_rng(1)
        track = simulate_route("V1", simple_route, dt_s=5.0, speed_jitter=0.1, rng=rng)
        speeds = track.speeds_mps()
        assert np.all(speeds <= 10.0 * 1.5 + 0.1)
        assert np.all(speeds >= 10.0 * 0.5 - 0.1)

    def test_invalid_dt(self, simple_route):
        with pytest.raises(ValueError):
            simulate_route("V1", simple_route, dt_s=0.0)

    def test_deterministic_given_seed(self, simple_route):
        a = simulate_route("V1", simple_route, speed_jitter=0.05, rng=np.random.default_rng(3))
        b = simulate_route("V1", simple_route, speed_jitter=0.05, rng=np.random.default_rng(3))
        assert a == b


class TestFlightProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlightProfile(climb_rate_mps=0.0)
        with pytest.raises(ValueError):
            FlightProfile(cruise_alt_m=0.0)

    def test_long_flight_reaches_cruise(self):
        route = RouteSpec("long", ((5.0, 45.0), (15.0, 45.0)), speed_mps=230.0)
        profile = FlightProfile(cruise_alt_m=10_000.0)
        track = simulate_route("F1", route, dt_s=5.0, turn_rate_deg_s=3.0, profile=profile)
        assert track.is_3d
        assert float(track.alt.max()) == pytest.approx(10_000.0, rel=0.02)
        assert float(track.alt[0]) == pytest.approx(0.0, abs=100.0)
        assert float(track.alt[-1]) == pytest.approx(0.0, abs=150.0)

    def test_short_flight_triangle_profile(self):
        route = RouteSpec("short", ((5.0, 45.0), (5.6, 45.0)), speed_mps=200.0)
        profile = FlightProfile(cruise_alt_m=11_000.0)
        track = simulate_route("F1", route, dt_s=5.0, turn_rate_deg_s=3.0, profile=profile)
        # Too short to reach cruise: peak strictly below it.
        assert float(track.alt.max()) < 11_000.0

    def test_altitudes_nonnegative_monotone_phases(self):
        route = RouteSpec("med", ((5.0, 45.0), (9.0, 45.0)), speed_mps=220.0)
        track = simulate_route(
            "F1", route, dt_s=5.0, turn_rate_deg_s=3.0, profile=FlightProfile()
        )
        alt = track.alt
        assert np.all(alt >= -1e-6)
        peak_idx = int(np.argmax(alt))
        assert np.all(np.diff(alt[:peak_idx]) >= -1e-6)
        assert np.all(np.diff(alt[peak_idx:]) <= 1e-6)

"""Sensor and delivery models."""

import numpy as np
import pytest

from repro.model.trajectory import Trajectory
from repro.sources.noise import DeliveryModel, SensorModel


@pytest.fixture()
def truth():
    n = 200
    return Trajectory(
        "V1",
        [10.0 * i for i in range(n)],
        [24.0 + 0.001 * i for i in range(n)],
        [37.0] * n,
    )


class TestSensorModel:
    def test_report_count_matches_period(self, truth):
        sensor = SensorModel(report_period_s=20.0, period_jitter=0.0, dropout_prob=0.0)
        reports = sensor.observe(truth, rng=np.random.default_rng(0))
        expected = truth.duration / 20.0
        assert len(reports) == pytest.approx(expected, rel=0.05)

    def test_event_time_ordered(self, truth):
        sensor = SensorModel()
        reports = sensor.observe(truth, rng=np.random.default_rng(1))
        times = [r.t for r in reports]
        assert times == sorted(times)

    def test_position_noise_magnitude(self, truth):
        sigma = 50.0
        sensor = SensorModel(gps_sigma_m=sigma, dropout_prob=0.0, period_jitter=0.0)
        reports = sensor.observe(truth, rng=np.random.default_rng(2))
        from repro.geo.geodesy import haversine_m

        errors = [
            haversine_m(r.lon, r.lat, truth.at_time(r.t).lon, truth.at_time(r.t).lat)
            for r in reports
        ]
        # Offsets are |N(0, sigma)| (half-normal): mean = sigma * sqrt(2/pi).
        assert np.mean(errors) == pytest.approx(sigma * np.sqrt(2 / np.pi), rel=0.15)
        assert max(errors) < sigma * 5

    def test_zero_noise_reproduces_truth(self, truth):
        sensor = SensorModel(
            gps_sigma_m=0.0, speed_sigma_mps=0.0, heading_sigma_deg=0.0,
            dropout_prob=0.0, period_jitter=0.0,
        )
        reports = sensor.observe(truth, rng=np.random.default_rng(3))
        sample = reports[5]
        ref = truth.at_time(sample.t)
        assert sample.lon == pytest.approx(ref.lon, abs=1e-12)
        assert sample.lat == pytest.approx(ref.lat, abs=1e-12)

    def test_dropouts_reduce_count(self, truth):
        base = SensorModel(dropout_prob=0.0, period_jitter=0.0)
        lossy = SensorModel(dropout_prob=0.5, period_jitter=0.0)
        n_base = len(base.observe(truth, rng=np.random.default_rng(4)))
        n_lossy = len(lossy.observe(truth, rng=np.random.default_rng(4)))
        assert n_lossy < n_base * 0.7

    def test_gaps_create_long_silences(self, truth):
        sensor = SensorModel(
            dropout_prob=0.0, period_jitter=0.0,
            gap_prob_per_report=0.05, gap_duration_s=300.0,
        )
        reports = sensor.observe(truth, rng=np.random.default_rng(5))
        dts = np.diff([r.t for r in reports])
        assert dts.max() > 100.0

    def test_speed_heading_estimates(self, truth):
        sensor = SensorModel(
            gps_sigma_m=0.0, speed_sigma_mps=0.0, heading_sigma_deg=0.0,
            dropout_prob=0.0, period_jitter=0.0,
        )
        reports = sensor.observe(truth, rng=np.random.default_rng(6))
        mid = reports[len(reports) // 2]
        # Truth moves ~8.9 m/s east.
        assert mid.speed == pytest.approx(8.9, rel=0.1)
        assert mid.heading == pytest.approx(90.0, abs=2.0)

    def test_empty_trajectory(self):
        sensor = SensorModel()
        empty = Trajectory("V1", [], [], [])
        assert sensor.observe(empty) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorModel(report_period_s=0.0)
        with pytest.raises(ValueError):
            SensorModel(dropout_prob=1.0)


class TestDeliveryModel:
    def test_no_delay_keeps_order(self, truth):
        sensor = SensorModel(period_jitter=0.0, dropout_prob=0.0)
        reports = sensor.observe(truth, rng=np.random.default_rng(7))
        delivered = DeliveryModel().deliver(reports)
        assert [r.t for __, r in delivered] == [r.t for r in reports]
        assert all(dt == r.t for dt, r in delivered)

    def test_delay_reorders(self, truth):
        sensor = SensorModel(period_jitter=0.0, dropout_prob=0.0)
        reports = sensor.observe(truth, rng=np.random.default_rng(8))
        delivered = DeliveryModel(mean_delay_s=30.0).deliver(
            reports, rng=np.random.default_rng(9)
        )
        delivery_times = [dt for dt, __ in delivered]
        assert delivery_times == sorted(delivery_times)
        event_times = [r.t for __, r in delivered]
        assert event_times != sorted(event_times)  # reordering happened

    def test_duplicates(self, truth):
        sensor = SensorModel(period_jitter=0.0, dropout_prob=0.0)
        reports = sensor.observe(truth, rng=np.random.default_rng(10))
        delivered = DeliveryModel(duplicate_prob=0.5).deliver(
            reports, rng=np.random.default_rng(11)
        )
        assert len(delivered) > len(reports) * 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            DeliveryModel(mean_delay_s=-1.0)
        with pytest.raises(ValueError):
            DeliveryModel(duplicate_prob=1.5)

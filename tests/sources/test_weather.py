"""Synthetic weather grid source."""

import pytest

from repro.geo.bbox import BBox
from repro.sources.weather import WeatherGridSource


@pytest.fixture()
def weather():
    return WeatherGridSource(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=6, ny=6, slot_s=3600.0)


class TestWeatherGrid:
    def test_cells_for_interval_count(self, weather):
        cells = weather.cells_for_interval(0.0, 7199.0)
        assert len(cells) == 6 * 6 * 2  # two slots

    def test_observation_lookup_consistent(self, weather):
        obs = weather.observation_at(24.5, 37.5, 1800.0)
        assert obs.bbox.contains(24.5, 37.5)
        assert obs.t_start <= 1800.0 < obs.t_end

    def test_deterministic(self, weather):
        a = weather.observation_at(24.5, 37.5, 100.0)
        b = weather.observation_at(24.5, 37.5, 100.0)
        assert a == b

    def test_physical_ranges(self, weather):
        for cell in weather.cells_for_interval(0.0, 3 * 3600.0):
            assert cell.wind_speed_mps >= 0.0
            assert 0.0 <= cell.wind_dir_deg < 360.0
            assert cell.wave_height_m >= 0.0

    def test_changes_over_time(self, weather):
        a = weather.observation_at(24.5, 37.5, 0.0)
        b = weather.observation_at(24.5, 37.5, 10 * 3600.0)
        assert a.wind_speed_mps != pytest.approx(b.wind_speed_mps, abs=1e-9)

    def test_spatial_smoothness(self, weather):
        # Adjacent cells should differ by less than the full dynamic range.
        a = weather.observation_at(24.5, 37.5, 0.0)
        b = weather.observation_at(24.5 + weather.grid.cell_width, 37.5, 0.0)
        assert abs(a.wind_speed_mps - b.wind_speed_mps) < 8.0

    def test_invalid_slot(self):
        with pytest.raises(ValueError):
            WeatherGridSource(bbox=BBox(0, 0, 1, 1), slot_s=0.0)

"""Archival store queries."""

import pytest

from repro.geo.bbox import BBox
from repro.model.errors import UnknownEntityError
from repro.model.points import Domain
from repro.model.trajectory import Trajectory
from repro.sources.archive import ArchivalStore


def track(entity_id, t0, lon0=24.0, n=5, domain=Domain.MARITIME):
    return Trajectory(
        entity_id,
        [t0 + 10.0 * i for i in range(n)],
        [lon0 + 0.01 * i for i in range(n)],
        [37.0] * n,
        domain=domain,
    )


@pytest.fixture()
def store():
    s = ArchivalStore()
    s.add(track("A", 0.0))
    s.add(track("A", 1000.0, lon0=25.0))
    s.add(track("B", 500.0, lon0=26.0))
    return s


class TestArchivalStore:
    def test_len_counts_trajectories(self, store):
        assert len(store) == 3

    def test_empty_rejected(self, store):
        with pytest.raises(ValueError):
            store.add(Trajectory("X", [], [], []))

    def test_for_entity(self, store):
        assert len(store.for_entity("A")) == 2
        with pytest.raises(UnknownEntityError):
            store.for_entity("Z")

    def test_entity_ids(self, store):
        assert sorted(store.entity_ids()) == ["A", "B"]

    def test_query_time_overlap(self, store):
        hits = store.query_time(30.0, 520.0)
        ids = sorted((t.entity_id, t.start_time) for t in hits)
        assert ids == [("A", 0.0), ("B", 500.0)]

    def test_query_time_empty_interval(self, store):
        assert store.query_time(5000.0, 6000.0) == []

    def test_query_bbox(self, store):
        hits = store.query_bbox(BBox(25.9, 36.5, 26.5, 37.5))
        assert [t.entity_id for t in hits] == ["B"]

    def test_query_domain(self, store):
        store.add(track("F", 0.0, domain=Domain.AVIATION))
        aviation = store.query_domain(Domain.AVIATION)
        assert [t.entity_id for t in aviation] == ["F"]

    def test_add_all(self):
        s = ArchivalStore()
        s.add_all([track("A", 0.0), track("B", 0.0)])
        assert len(s) == 2

"""Fleet traffic generators."""

import pytest

from repro.model.points import Domain
from repro.sources.generators import AviationTrafficGenerator, MaritimeTrafficGenerator


class TestMaritimeGenerator:
    def test_sample_shape(self, maritime_sample):
        assert maritime_sample.domain is Domain.MARITIME
        assert maritime_sample.n_entities == 6
        assert len(maritime_sample.registry) == 6
        assert len(maritime_sample.reports) > 100

    def test_reports_event_time_ordered(self, maritime_sample):
        times = [r.t for r in maritime_sample.reports]
        assert times == sorted(times)

    def test_truth_within_world_bbox(self, maritime_sample):
        margin = maritime_sample.world.bbox.expanded(0.5)
        for trajectory in maritime_sample.truth.values():
            box = trajectory.bbox()
            assert margin.intersects(box)

    def test_max_duration_respected(self, maritime_sample):
        for trajectory in maritime_sample.truth.values():
            assert trajectory.duration <= 3600.0 + 1e-6

    def test_every_entity_has_route_label(self, maritime_sample):
        assert set(maritime_sample.routes_by_entity) == set(maritime_sample.truth)
        route_names = {r.name for r in maritime_sample.world.routes}
        assert set(maritime_sample.routes_by_entity.values()) <= route_names

    def test_deterministic_by_seed(self):
        a = MaritimeTrafficGenerator(seed=5).generate(n_vessels=2, max_duration_s=600)
        b = MaritimeTrafficGenerator(seed=5).generate(n_vessels=2, max_duration_s=600)
        assert [r.t for r in a.reports] == [r.t for r in b.reports]
        assert [r.lon for r in a.reports] == [r.lon for r in b.reports]

    def test_different_seeds_differ(self):
        a = MaritimeTrafficGenerator(seed=5).generate(n_vessels=2, max_duration_s=600)
        b = MaritimeTrafficGenerator(seed=6).generate(n_vessels=2, max_duration_s=600)
        assert [r.lon for r in a.reports] != [r.lon for r in b.reports]


class TestMultiLegGenerator:
    def test_multi_leg_routes_assigned(self):
        generator = MaritimeTrafficGenerator(seed=5, multi_leg=True)
        sample = generator.generate(n_vessels=3, max_duration_s=1800.0)
        # Multi-leg voyage names chain 3+ ports: "PIR->MYK->CHI".
        for route_name in sample.routes_by_entity.values():
            assert route_name.count("->") >= 2

    def test_multi_leg_deterministic(self):
        a = MaritimeTrafficGenerator(seed=5, multi_leg=True).generate(
            n_vessels=2, max_duration_s=900.0
        )
        b = MaritimeTrafficGenerator(seed=5, multi_leg=True).generate(
            n_vessels=2, max_duration_s=900.0
        )
        assert a.routes_by_entity == b.routes_by_entity

    def test_single_leg_default_unchanged(self, maritime_sample):
        for route_name in maritime_sample.routes_by_entity.values():
            assert route_name.count("->") == 1


class TestAviationGenerator:
    def test_sample_is_3d(self, aviation_sample):
        assert aviation_sample.domain is Domain.AVIATION
        for trajectory in aviation_sample.truth.values():
            assert trajectory.is_3d
        assert all(r.alt is not None for r in aviation_sample.reports)

    def test_flight_levels_realistic(self, aviation_sample):
        for trajectory in aviation_sample.truth.values():
            assert 8_000.0 < float(trajectory.alt.max()) < 12_500.0

    def test_registry_entities_are_aircraft(self, aviation_sample):
        from repro.model.entities import Aircraft

        for entity in aviation_sample.registry:
            assert isinstance(entity, Aircraft)

    def test_deliveries_sorted_by_delivery_time(self, aviation_sample):
        delivery_times = [dt for dt, __ in aviation_sample.deliveries]
        assert delivery_times == sorted(delivery_times)

"""Geographic worlds and route specs."""

import pytest

from repro.sources.world import AviationWorld, MaritimeWorld, RouteSpec


class TestRouteSpec:
    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            RouteSpec("x", ((24.0, 37.0),), 5.0)

    def test_positive_speed(self):
        with pytest.raises(ValueError):
            RouteSpec("x", ((24.0, 37.0), (25.0, 37.0)), 0.0)

    def test_reversed_swaps_name_and_waypoints(self):
        route = RouteSpec("A->B", ((1.0, 2.0), (3.0, 4.0), (5.0, 6.0)), 8.0)
        rev = route.reversed()
        assert rev.name == "B->A"
        assert rev.waypoints == ((5.0, 6.0), (3.0, 4.0), (1.0, 2.0))
        assert rev.speed_mps == 8.0


class TestMaritimeWorld:
    def test_aegean_structure(self):
        world = MaritimeWorld.aegean()
        assert len(world.ports) == 6
        assert len(world.routes) == 12  # 6 legs, both directions
        assert len(world.zones) == 3

    def test_ports_inside_bbox(self):
        world = MaritimeWorld.aegean()
        for lon, lat in world.ports.values():
            assert world.bbox.contains(lon, lat)

    def test_route_endpoints_are_ports(self):
        world = MaritimeWorld.aegean()
        port_positions = set(world.ports.values())
        for route in world.routes:
            assert route.waypoints[0] in port_positions
            assert route.waypoints[-1] in port_positions

    def test_zone_lookup(self):
        world = MaritimeWorld.aegean()
        assert world.zone("natura_protected").name == "natura_protected"
        with pytest.raises(KeyError):
            world.zone("nope")


class TestAviationWorld:
    def test_core_europe_structure(self):
        world = AviationWorld.core_europe()
        assert len(world.airports) == 6
        assert len(world.routes) == 12
        assert len(world.sectors) == 9

    def test_sectors_tile_bbox(self):
        world = AviationWorld.core_europe()
        total_area = sum(s.bbox.area for s in world.sectors)
        assert total_area == pytest.approx(world.bbox.area, rel=1e-6)

    def test_sector_lookup(self):
        world = AviationWorld.core_europe()
        assert world.sector("sector_11").name == "sector_11"
        with pytest.raises(KeyError):
            world.sector("sector_99")

    def test_airspeed_realistic(self):
        world = AviationWorld.core_europe()
        for route in world.routes:
            assert 150.0 < route.speed_mps < 300.0

"""Route networks over worlds."""

import numpy as np
import pytest

from repro.sources.kinematics import simulate_route
from repro.sources.routing import RouteNetwork
from repro.sources.world import AviationWorld, MaritimeWorld


@pytest.fixture(scope="module")
def network():
    return RouteNetwork.from_world(MaritimeWorld.aegean())


class TestConstruction:
    def test_terminals_are_ports(self, network):
        assert set(network.terminals) == set(MaritimeWorld.aegean().ports)

    def test_fully_connected(self, network):
        assert network.connectivity() == 1.0

    def test_aviation_network(self):
        net = RouteNetwork.from_world(AviationWorld.core_europe())
        assert net.connectivity() == 1.0
        assert len(net.terminals) == 6

    def test_edge_weights_positive(self, network):
        for __a, __b, data in network.graph.edges(data=True):
            assert data["weight"] > 0
            assert data["speed"] > 0


class TestShortestRoute:
    def test_direct_lane(self, network):
        route = network.shortest_route("PIR", "HER")
        assert route.waypoints[0] == MaritimeWorld.aegean().ports["PIR"]
        assert route.waypoints[-1] == MaritimeWorld.aegean().ports["HER"]

    def test_multi_hop_path(self, network):
        # THE and RHO have no direct lane; the path goes through others.
        route = network.shortest_route("THE", "RHO")
        assert len(route.waypoints) > 3

    def test_unknown_terminal(self, network):
        with pytest.raises(KeyError):
            network.shortest_route("PIR", "NOWHERE")

    def test_route_is_simulatable(self, network):
        route = network.shortest_route("THE", "HER")
        track = simulate_route("V1", route, dt_s=30.0)
        assert len(track) > 10
        assert track.length_m() > 100_000


class TestRandomVoyage:
    def test_multi_leg_voyage(self, network):
        rng = np.random.default_rng(7)
        voyage = network.random_voyage(rng, min_legs=2)
        assert voyage.name.count("->") == 2
        assert len(voyage.waypoints) >= 3

    def test_deterministic_given_rng(self, network):
        a = network.random_voyage(np.random.default_rng(3), min_legs=2)
        b = network.random_voyage(np.random.default_rng(3), min_legs=2)
        assert a.name == b.name
        assert a.waypoints == b.waypoints

    def test_no_duplicate_junction_waypoints(self, network):
        rng = np.random.default_rng(11)
        voyage = network.random_voyage(rng, min_legs=3)
        for a, b in zip(voyage.waypoints, voyage.waypoints[1:]):
            assert a != b

    def test_min_legs_validation(self, network):
        with pytest.raises(ValueError):
            network.random_voyage(np.random.default_rng(0), min_legs=0)

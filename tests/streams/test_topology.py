"""Topology construction, execution and metrics."""

import pytest

from repro.streams.metrics import Counter, LatencyHistogram
from repro.streams.operators import CollectSink, FilterOperator, MapOperator
from repro.streams.records import Record
from repro.streams.topology import StreamRunner, Topology
from repro.streams.windows import TumblingWindowAssigner, WindowedAggregateOperator


class TestTopology:
    def test_linear_chain(self):
        topo = Topology()
        head = topo.add_source_stage(MapOperator(lambda x: x + 1))
        sink = CollectSink()
        topo.chain(head, sink)
        StreamRunner(topo).run_values([(0, 1), (1, 2)])
        assert sink.items == [2, 3]

    def test_branching_fanout(self):
        topo = Topology()
        head = topo.add_source_stage(MapOperator(lambda x: x))
        evens, odds = CollectSink("evens"), CollectSink("odds")
        even_stage = topo.chain(head, FilterOperator(lambda x: x % 2 == 0))
        odd_stage = topo.chain(head, FilterOperator(lambda x: x % 2 == 1))
        topo.chain(even_stage, evens)
        topo.chain(odd_stage, odds)
        StreamRunner(topo).run_values([(i, i) for i in range(6)])
        assert evens.items == [0, 2, 4]
        assert odds.items == [1, 3, 5]

    def test_windowed_stage_with_watermarks(self):
        topo = Topology()
        window = WindowedAggregateOperator(
            key_fn=lambda v: "k",
            assigner=TumblingWindowAssigner(10.0),
            aggregate_fn=lambda pane: sum(pane.values),
        )
        head = topo.add_source_stage(window)
        sink = CollectSink()
        topo.chain(head, sink)
        runner = StreamRunner(topo, watermark_interval=1)
        runner.run_values([(1, 1), (2, 2), (11, 3), (25, 4)])
        assert sink.items == [3, 3, 4]

    def test_metrics_counts(self):
        topo = Topology()
        head = topo.add_source_stage(FilterOperator(lambda x: x > 0, name="positive"))
        topo.chain(head, CollectSink())
        runner = StreamRunner(topo)
        runner.run_values([(0, -1), (1, 2), (2, 3)])
        summary = topo.metrics_summary()
        assert summary["positive"]["records_in"] == 3
        assert summary["positive"]["records_out"] == 2

    def test_duplicate_names_disambiguated(self):
        topo = Topology()
        a = topo.add_source_stage(MapOperator(lambda x: x, name="m"))
        topo.chain(a, MapOperator(lambda x: x, name="m"))
        summary = topo.metrics_summary()
        assert set(summary) == {"m", "m#2"}

    def test_latency_tracking(self):
        topo = Topology()
        head = topo.add_source_stage(MapOperator(lambda x: x))
        topo.chain(head, CollectSink())
        runner = StreamRunner(topo, track_latency=True)
        runner.run_values([(i, i) for i in range(50)])
        assert runner.end_to_end_latency.count == 50
        assert runner.end_to_end_latency.percentile_ms(95) >= 0.0

    def test_invalid_watermark_interval(self):
        with pytest.raises(ValueError):
            StreamRunner(Topology(), watermark_interval=0)


class TestSortedByTime:
    def test_replay_helper_sorts(self):
        from repro.streams.topology import sorted_by_time

        records = [Record(event_time=t, value=t) for t in (3.0, 1.0, 2.0)]
        assert [r.event_time for r in sorted_by_time(records)] == [1.0, 2.0, 3.0]


class TestMetricPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_latency_histogram_percentiles(self):
        h = LatencyHistogram()
        for ms in range(1, 101):
            h.record(ms / 1000.0)
        assert h.percentile_ms(50) == pytest.approx(50.5, rel=0.05)
        assert h.percentile_ms(99) == pytest.approx(99.0, rel=0.05)
        assert h.mean_ms() == pytest.approx(50.5, rel=0.05)

    def test_histogram_empty(self):
        h = LatencyHistogram()
        assert h.percentile_ms(95) == 0.0
        assert h.summary()["count"] == 0

    def test_histogram_reservoir_bounds_memory(self):
        h = LatencyHistogram(max_samples=100)
        for i in range(1000):
            h.record(0.001)
        assert h.count == 1000
        assert len(h._samples) == 100

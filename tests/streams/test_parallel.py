"""Simulated parallel keyed execution."""

import pytest

from repro.streams.operators import KeyedProcessOperator, MapOperator
from repro.streams.parallel import ParallelKeyedRunner, ParallelRunReport
from repro.streams.records import Record


class _PerKeyCounter(KeyedProcessOperator):
    """Emits (key, running count) per record — state-dependent output."""

    def __init__(self):
        super().__init__(key_fn=lambda v: v[0])

    def process_keyed(self, record, state):
        state["n"] = state.get("n", 0) + 1
        return (record.with_value((record.value[0], state["n"])),)


def records(n=100, n_keys=5):
    return [
        Record(event_time=float(i), value=(f"k{i % n_keys}", i)) for i in range(n)
    ]


class TestParallelKeyedRunner:
    def test_outputs_equal_single_task(self):
        single, __ = ParallelKeyedRunner(
            _PerKeyCounter, 1, key_fn=lambda v: v[0]
        ).run(iter(records()))
        multi, __ = ParallelKeyedRunner(
            _PerKeyCounter, 4, key_fn=lambda v: v[0]
        ).run(iter(records()))
        assert sorted(r.value for r in single) == sorted(r.value for r in multi)

    def test_keyed_state_not_split(self):
        """All records of one key see one state instance (correct counts)."""
        outputs, __ = ParallelKeyedRunner(
            _PerKeyCounter, 4, key_fn=lambda v: v[0]
        ).run(iter(records(n=50, n_keys=5)))
        per_key_max = {}
        for record in outputs:
            key, count = record.value
            per_key_max[key] = max(per_key_max.get(key, 0), count)
        assert all(count == 10 for count in per_key_max.values())

    def test_report_accounting(self):
        __, report = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 4, key_fn=lambda v: v[0]
        ).run(iter(records(n=200, n_keys=8)))
        assert report.records_in == 200
        assert report.records_out == 200
        assert sum(report.per_task_records) == 200
        assert report.sequential_s >= max(report.per_task_s)
        assert report.makespan_s > 0

    def test_skew_single_key(self):
        __, report = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 4, key_fn=lambda v: "same"
        ).run(iter(records(n=40)))
        assert report.skew == pytest.approx(4.0)
        assert report.simulated_speedup <= 1.05  # no parallelism available

    def test_even_keys_low_skew(self):
        __, report = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 4, key_fn=lambda v: v[1]
        ).run(iter(records(n=400)))
        assert report.skew < 1.3

    def test_on_end_flushed_per_task(self):
        class Flusher(KeyedProcessOperator):
            def __init__(self):
                super().__init__(key_fn=lambda v: v)

            def process_keyed(self, record, state):
                state["last"] = record.value
                return ()

            def flush_key(self, key, state):
                return (Record(event_time=0.0, value=("flushed", key)),)

        outputs, __ = ParallelKeyedRunner(Flusher, 3, key_fn=lambda v: v).run(
            Record(event_time=float(i), value=f"k{i}") for i in range(6)
        )
        assert len(outputs) == 6
        assert all(v[0] == "flushed" for v in (r.value for r in outputs))

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelKeyedRunner(lambda: MapOperator(lambda v: v), 0, key_fn=id)


class TestReportEdgeCases:
    """skew / simulated_speedup at the degenerate corners."""

    def test_zero_records(self):
        outputs, report = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 4, key_fn=lambda v: v
        ).run(iter(()))
        assert outputs == []
        assert report.records_in == 0
        assert report.records_out == 0
        assert report.per_task_records == [0, 0, 0, 0]
        # No routed records: skew must report perfectly even, not divide by 0.
        assert report.skew == 1.0
        assert report.simulated_speedup >= 1.0

    def test_empty_report_defaults(self):
        report = ParallelRunReport(n_tasks=3)
        assert report.per_task_records == []
        assert report.skew == 1.0
        # makespan 0 → speedup defined as 1.0, never a ZeroDivisionError.
        assert report.simulated_speedup == 1.0

    def test_single_task(self):
        outputs, report = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 1, key_fn=lambda v: v[0]
        ).run(iter(records(n=100)))
        assert len(outputs) == 100
        assert report.n_tasks == 1
        assert report.per_task_records == [100]
        assert report.skew == 1.0
        # One slot cannot beat itself; shuffle overhead makes it slightly worse.
        assert report.simulated_speedup <= 1.0

    def test_all_records_on_one_key(self):
        outputs, report = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 8, key_fn=lambda v: "hot"
        ).run(iter(records(n=80)))
        assert len(outputs) == 80
        # One task got everything: worst-case skew is exactly n_tasks.
        assert report.skew == pytest.approx(8.0)
        assert sorted(report.per_task_records, reverse=True)[0] == 80
        assert sum(1 for n in report.per_task_records if n > 0) == 1
        assert report.simulated_speedup <= 1.05

    def test_zero_records_single_task(self):
        __, report = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 1, key_fn=lambda v: v
        ).run(iter(()))
        assert report.skew == 1.0
        assert report.records_in == 0

"""Checkpoint/recovery: snapshot protocol, stores, and runner resume."""

import pytest

from repro.streams.chaos import CrashInjector, InjectedCrash
from repro.streams.checkpoint import (
    Checkpoint,
    FileCheckpointStore,
    InMemoryCheckpointStore,
)
from repro.streams.operators import CollectSink, KeyedProcessOperator, MapOperator
from repro.streams.records import Record, Watermark
from repro.streams.replay import ReplayLog
from repro.streams.topology import StreamRunner, Topology
from repro.streams.watermarks import BoundedOutOfOrdernessWatermarks
from repro.streams.windows import TumblingWindowAssigner, WindowedAggregateOperator


class _RunningSum(KeyedProcessOperator):
    def __init__(self):
        super().__init__(key_fn=lambda v: v[0], name="running_sum")

    def process_keyed(self, record, state):
        state["sum"] = state.get("sum", 0) + record.value[1]
        return (record.with_value((record.value[0], state["sum"])),)


class TestSnapshotProtocol:
    def test_stateless_operator_snapshot_is_none(self):
        op = MapOperator(lambda v: v)
        assert op.snapshot() is None
        op.restore(None)  # no-op
        with pytest.raises(ValueError):
            op.restore({"unexpected": 1})

    def test_keyed_state_round_trip(self):
        op = _RunningSum()
        op.process(Record(event_time=0.0, value=("a", 5)))
        op.process(Record(event_time=1.0, value=("b", 7)))
        state = op.snapshot()
        op.process(Record(event_time=2.0, value=("a", 100)))

        fresh = _RunningSum()
        fresh.restore(state)
        (out,) = fresh.process(Record(event_time=2.0, value=("a", 1)))
        assert out.value == ("a", 6)  # 5 from the snapshot, not 105

    def test_snapshot_is_not_aliased_to_live_state(self):
        op = _RunningSum()
        op.process(Record(event_time=0.0, value=("a", 1)))
        state = op.snapshot()
        op.process(Record(event_time=1.0, value=("a", 10)))
        fresh = _RunningSum()
        fresh.restore(state)
        (out,) = fresh.process(Record(event_time=2.0, value=("a", 0)))
        assert out.value == ("a", 1)

    def test_window_operator_round_trip(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k", assigner=TumblingWindowAssigner(10.0)
        )
        op.process(Record(event_time=1.0, value="x"))
        op.process(Record(event_time=12.0, value="y"))
        list(op.on_watermark(Watermark(10.0)))
        state = op.snapshot()

        fresh = WindowedAggregateOperator(
            key_fn=lambda v: "k", assigner=TumblingWindowAssigner(10.0)
        )
        fresh.restore(state)
        assert fresh.open_panes == 1
        # The restored watermark still classifies old records as late.
        fresh.process(Record(event_time=3.0, value="late"))
        assert fresh.late_records == 1

    def test_watermark_generator_round_trip(self):
        gen = BoundedOutOfOrdernessWatermarks(5.0)
        gen.observe(100.0)
        state = gen.snapshot()
        fresh = BoundedOutOfOrdernessWatermarks(5.0)
        fresh.restore(state)
        assert fresh.current == 95.0
        # A smaller event time does not regress the restored watermark.
        assert fresh.observe(90.0) is None

    def test_collect_sink_round_trip(self):
        sink = CollectSink()
        sink.process(Record(event_time=0.0, value="a"))
        state = sink.snapshot()
        fresh = CollectSink()
        fresh.restore(state)
        assert fresh.items == ["a"]


class TestCheckpointStores:
    def _checkpoint(self, cid, offset=0):
        return Checkpoint(checkpoint_id=cid, source_offset=offset, states={"s": cid})

    def test_in_memory_retention_and_latest(self):
        store = InMemoryCheckpointStore(retain=2)
        for cid in range(5):
            store.save(self._checkpoint(cid, offset=cid * 10))
        assert store.checkpoint_ids() == [3, 4]
        assert store.latest().source_offset == 40
        with pytest.raises(KeyError):
            store.load(0)

    def test_next_id_monotone(self):
        store = InMemoryCheckpointStore()
        assert store.next_id() == 0
        store.save(self._checkpoint(store.next_id()))
        store.save(self._checkpoint(store.next_id()))
        assert store.next_id() == 2

    def test_file_store_round_trip(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path), retain=2)
        for cid in range(4):
            store.save(self._checkpoint(cid, offset=cid))
        assert store.checkpoint_ids() == [2, 3]
        # A fresh store over the same directory sees the survivors.
        reopened = FileCheckpointStore(str(tmp_path))
        assert reopened.checkpoint_ids() == [2, 3]
        assert reopened.latest().states == {"s": 3}
        assert reopened.next_id() == 4

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            Checkpoint(checkpoint_id=0, source_offset=-1, states={})


def _build_topology():
    topo = Topology()
    head = topo.add_source_stage(MapOperator(lambda v: v, name="ingest"))
    win = topo.chain(
        head,
        WindowedAggregateOperator(
            key_fn=lambda v: v % 3,
            assigner=TumblingWindowAssigner(10.0),
            aggregate_fn=lambda p: (p.key, p.start, sum(p.values)),
        ),
    )
    sink = CollectSink()
    topo.chain(win, sink)
    return topo, sink


@pytest.fixture(scope="module")
def source_log():
    # Mildly out-of-order input so watermark state actually matters.
    times = [(i, float(i + (3 if i % 7 == 0 else 0))) for i in range(600)]
    return ReplayLog(Record(event_time=t, value=v) for v, t in times)


class TestRunnerRecovery:
    def test_crash_resume_outputs_identical(self, source_log):
        topo_a, sink_a = _build_topology()
        StreamRunner(topo_a, watermark_interval=25, max_out_of_orderness_s=5.0).run(
            source_log
        )

        store = InMemoryCheckpointStore()
        topo_b, __ = _build_topology()
        runner_b = StreamRunner(
            topo_b,
            watermark_interval=25,
            max_out_of_orderness_s=5.0,
            checkpoint_store=store,
            checkpoint_interval=100,
        )
        with pytest.raises(InjectedCrash):
            runner_b.run(CrashInjector(source_log, 437))
        assert store.latest().source_offset == 400

        topo_c, sink_c = _build_topology()
        runner_c = StreamRunner(topo_c, watermark_interval=25, max_out_of_orderness_s=5.0)
        runner_c.run(source_log, resume_from=store.latest())

        assert sink_c.items == sink_a.items
        assert sink_c.records == sink_a.records
        # Metric counts also line up with the uninterrupted run.
        in_a = {k: v["records_in"] for k, v in topo_a.metrics_summary().items()}
        in_c = {k: v["records_in"] for k, v in topo_c.metrics_summary().items()}
        assert in_a == in_c

    def test_resume_via_file_store_across_instances(self, source_log, tmp_path):
        topo_a, sink_a = _build_topology()
        StreamRunner(topo_a, watermark_interval=25).run(source_log)

        store = FileCheckpointStore(str(tmp_path))
        topo_b, __ = _build_topology()
        runner_b = StreamRunner(
            topo_b, watermark_interval=25, checkpoint_store=store, checkpoint_interval=50
        )
        with pytest.raises(InjectedCrash):
            runner_b.run(CrashInjector(source_log, 333))

        # Simulates a process restart: a brand-new store over the directory.
        topo_c, sink_c = _build_topology()
        StreamRunner(topo_c, watermark_interval=25).run(
            source_log, resume_from=FileCheckpointStore(str(tmp_path)).latest()
        )
        assert sink_c.items == sink_a.items

    def test_resume_from_mismatched_topology_rejected(self, source_log):
        store = InMemoryCheckpointStore()
        topo, __ = _build_topology()
        runner = StreamRunner(
            topo, watermark_interval=25, checkpoint_store=store, checkpoint_interval=100
        )
        with pytest.raises(InjectedCrash):
            runner.run(CrashInjector(source_log, 150))

        other = Topology()
        other.add_source_stage(MapOperator(lambda v: v, name="different"))
        with pytest.raises(KeyError):
            StreamRunner(other).run(source_log, resume_from=store.latest())

    def test_store_without_interval_rejected(self):
        topo, __ = _build_topology()
        with pytest.raises(ValueError):
            StreamRunner(topo, checkpoint_store=InMemoryCheckpointStore())


class TestReplayLog:
    def test_read_from_offset(self):
        log = ReplayLog.from_timed_values([(0.0, "a"), (1.0, "b"), (2.0, "c")])
        assert len(log) == 3
        assert [r.value for r in log.read(1)] == ["b", "c"]
        assert [r.value for r in log] == ["a", "b", "c"]
        assert list(log.read(3)) == []

    def test_negative_offset_rejected(self):
        log = ReplayLog([1, 2, 3])
        with pytest.raises(ValueError):
            list(log.read(-1))

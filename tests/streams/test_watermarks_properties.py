"""Property-based tests for watermark generation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.streams.watermarks import BoundedOutOfOrdernessWatermarks

finite_times = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestWatermarkProperties:
    @given(
        times=st.lists(finite_times, min_size=1, max_size=200),
        bound=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_emitted_watermarks_strictly_increase(self, times, bound):
        """Monotonicity under arbitrary out-of-order input."""
        gen = BoundedOutOfOrdernessWatermarks(bound)
        emitted = [wm for t in times if (wm := gen.observe(t)) is not None]
        for prev, cur in zip(emitted, emitted[1:]):
            assert cur > prev

    @given(
        times=st.lists(finite_times, min_size=1, max_size=200),
        bound=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_final_watermark_lags_max_by_bound(self, times, bound):
        gen = BoundedOutOfOrdernessWatermarks(bound)
        for t in times:
            gen.observe(t)
        assert gen.current == max(times) - bound

    @given(
        times=st.lists(finite_times, min_size=1, max_size=200),
        bound=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_no_observed_time_behind_watermark_plus_bound(self, times, bound):
        """The lateness contract: wm never passes max_seen - bound."""
        gen = BoundedOutOfOrdernessWatermarks(bound)
        max_seen = float("-inf")
        for t in times:
            max_seen = max(max_seen, t)
            gen.observe(t)
            assert gen.current <= max_seen - bound

    @given(
        times=st.lists(finite_times, min_size=1, max_size=200),
        bound=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_order_of_prefix_permutation_is_irrelevant_at_the_end(self, times, bound):
        """The final watermark depends only on the *set* of observed times."""
        forward = BoundedOutOfOrdernessWatermarks(bound)
        backward = BoundedOutOfOrdernessWatermarks(bound)
        for t in times:
            forward.observe(t)
        for t in reversed(times):
            backward.observe(t)
        assert forward.current == backward.current

    @given(
        times=st.lists(finite_times, min_size=1, max_size=200),
        bound=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_snapshot_restore_preserves_behavior(self, times, bound):
        """A restored generator emits exactly what the original would."""
        half = len(times) // 2
        original = BoundedOutOfOrdernessWatermarks(bound)
        for t in times[:half]:
            original.observe(t)
        clone = BoundedOutOfOrdernessWatermarks(bound)
        clone.restore(original.snapshot())
        for t in times[half:]:
            assert original.observe(t) == clone.observe(t)
        assert original.current == clone.current
"""Window assigners and windowed aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.records import Record, Watermark
from repro.streams.windows import (
    SessionWindowAssigner,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowedAggregateOperator,
    WindowPane,
)


class TestTumbling:
    def test_assignment(self):
        w = TumblingWindowAssigner(10.0)
        assert w.assign(0.0) == [(0.0, 10.0)]
        assert w.assign(9.99) == [(0.0, 10.0)]
        assert w.assign(10.0) == [(10.0, 20.0)]

    @given(t=st.floats(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_event_inside_its_window(self, t):
        w = TumblingWindowAssigner(7.5)
        ((start, end),) = w.assign(t)
        assert start <= t < end
        assert end - start == pytest.approx(7.5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TumblingWindowAssigner(0.0)


class TestSliding:
    def test_assignment_count(self):
        w = SlidingWindowAssigner(10.0, 5.0)
        windows = w.assign(12.0)
        assert windows == [(5.0, 15.0), (10.0, 20.0)]

    @given(t=st.floats(0, 1000))
    @settings(max_examples=100, deadline=None)
    def test_every_window_contains_event(self, t):
        w = SlidingWindowAssigner(30.0, 10.0)
        windows = w.assign(t)
        assert len(windows) == 3
        for start, end in windows:
            assert start <= t < end

    def test_slide_greater_than_size_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowAssigner(10.0, 20.0)


class TestSession:
    def test_seed_window(self):
        w = SessionWindowAssigner(5.0)
        assert w.assign(3.0) == [(3.0, 8.0)]
        assert w.merging


def feed(op, timed_values, watermark=None):
    out = []
    for t, v in timed_values:
        out.extend(op.process(Record(event_time=t, value=v)))
    if watermark is not None:
        out.extend(op.on_watermark(Watermark(watermark)))
    else:
        out.extend(op.on_end())
    return out


class TestWindowedAggregate:
    def test_tumbling_sums_per_key(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: v[0],
            assigner=TumblingWindowAssigner(10.0),
            aggregate_fn=lambda pane: (pane.key, sum(x[1] for x in pane.values)),
        )
        out = feed(op, [(1, ("a", 1)), (2, ("b", 5)), (3, ("a", 2)), (11, ("a", 10))])
        assert set(r.value for r in out) == {("a", 3), ("b", 5), ("a", 10)}

    def test_watermark_fires_only_complete_windows(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k",
            assigner=TumblingWindowAssigner(10.0),
            aggregate_fn=lambda pane: len(pane.values),
        )
        out = feed(op, [(1, "x"), (12, "y")], watermark=10.0)
        assert [r.value for r in out] == [1]
        assert op.open_panes == 1

    def test_pane_metadata(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k", assigner=TumblingWindowAssigner(10.0)
        )
        out = feed(op, [(3, "x")])
        (record,) = out
        pane = record.value
        assert isinstance(pane, WindowPane)
        assert pane.start == 0.0 and pane.end == 10.0
        assert record.event_time == pane.end

    def test_session_merging(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k",
            assigner=SessionWindowAssigner(5.0),
            aggregate_fn=lambda pane: (pane.start, pane.end, len(pane.values)),
        )
        out = feed(op, [(1, "a"), (3, "b"), (20, "c")])
        assert [r.value for r in out] == [(1, 8, 2), (20, 25, 1)]

    def test_sliding_duplicates_events(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k",
            assigner=SlidingWindowAssigner(20.0, 10.0),
            aggregate_fn=lambda pane: len(pane.values),
        )
        out = feed(op, [(15, "x")])
        # The event lands in two sliding windows.
        assert [r.value for r in out] == [1, 1]

    def test_late_records_counted_and_dropped(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k",
            assigner=TumblingWindowAssigner(10.0),
            aggregate_fn=lambda pane: len(pane.values),
        )
        out = feed(op, [(1, "x")], watermark=10.0)  # window [0,10) fires
        assert [r.value for r in out] == [1]
        # A record for the already-fired window is late: dropped + counted.
        assert list(op.process(Record(event_time=3.0, value="late"))) == []
        assert op.late_records == 1
        assert op.open_panes == 0

    def test_sliding_late_record_partially_live(self):
        # With sliding windows, a record may be late for one window but
        # live for a later overlapping one: it is NOT late then.
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k",
            assigner=SlidingWindowAssigner(20.0, 10.0),
            aggregate_fn=lambda pane: len(pane.values),
        )
        op.on_watermark(Watermark(20.0))  # windows ending <= 20 are closed
        op.process(Record(event_time=15.0, value="x"))  # [10,30) still live
        assert op.late_records == 0
        assert op.open_panes == 1

    def test_deterministic_firing_order(self):
        op = WindowedAggregateOperator(
            key_fn=lambda v: v, assigner=TumblingWindowAssigner(10.0)
        )
        out = feed(op, [(1, "b"), (2, "a"), (15, "a")])
        ends = [r.event_time for r in out]
        assert ends == sorted(ends)

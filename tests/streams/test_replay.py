"""Replay sources."""

import pytest

from repro.streams.replay import replay, replay_instant


class TestReplayInstant:
    def test_wraps_pairs(self):
        records = list(replay_instant([(1.0, "a"), (2.0, "b")]))
        assert [r.event_time for r in records] == [1.0, 2.0]
        assert [r.value for r in records] == ["a", "b"]


class TestReplayPaced:
    def test_sleeps_proportionally(self):
        now = [100.0]
        naps = []

        def clock():
            return now[0]

        def sleep(duration):
            naps.append(duration)
            now[0] += duration

        records = list(
            replay([(0.0, "a"), (120.0, "b"), (240.0, "c")],
                   speedup=60.0, max_sleep_s=10.0, clock=clock, sleep=sleep)
        )
        assert len(records) == 3
        # 120 event-seconds at 60x = 2 wall seconds per step.
        assert naps == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_sleep_capped(self):
        now = [0.0]
        naps = []

        def clock():
            return now[0]

        def sleep(duration):
            naps.append(duration)
            now[0] += duration

        list(replay([(0.0, "a"), (36_000.0, "b")], speedup=60.0,
                    max_sleep_s=1.0, clock=clock, sleep=sleep))
        assert all(n <= 1.0 for n in naps)

    def test_no_sleep_when_behind(self):
        now = [0.0]
        naps = []

        def clock():
            # Wall clock jumps far ahead: replay is already late.
            now[0] += 100.0
            return now[0]

        list(replay([(0.0, "a"), (60.0, "b")], speedup=60.0,
                    clock=clock, sleep=lambda d: naps.append(d)))
        assert naps == []

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            list(replay([(0.0, "a")], speedup=0.0))

"""Chaos layer: crash/fault injection, retry with backoff, dead letters."""

import random

import pytest

from repro.streams.chaos import (
    CrashInjector,
    DeadLetter,
    DeadLetterQueue,
    InjectedCrash,
    RetryPolicy,
    RetryingOperator,
    TransientFault,
    TransientFaultInjector,
)
from repro.streams.operators import MapOperator, Operator
from repro.streams.records import Record


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, jitter=0.0, max_delay_s=10.0)
        rng = random.Random(0)
        delays = [policy.backoff_s(k, rng) for k in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_backoff_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=10.0, jitter=0.0, max_delay_s=0.5)
        rng = random.Random(0)
        assert policy.backoff_s(5, rng) == 0.5

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.5, max_delay_s=1.0)
        rng = random.Random(7)
        for __ in range(100):
            delay = policy.backoff_s(0, rng)
            assert 0.5 <= delay <= 1.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCrashInjector:
    def test_crashes_after_exact_count(self):
        injector = CrashInjector(range(100), crash_after=7)
        consumed = []
        with pytest.raises(InjectedCrash):
            for item in injector:
                consumed.append(item)
        assert consumed == list(range(7))
        assert injector.delivered == 7

    def test_no_crash_when_stream_shorter(self):
        assert list(CrashInjector(range(3), crash_after=10)) == [0, 1, 2]


class TestTransientFaultInjector:
    def test_deterministic_for_seed(self):
        def fault_pattern(seed):
            injector = TransientFaultInjector(0.5, seed=seed)
            pattern = []
            for __ in range(50):
                try:
                    injector.maybe_fail("s")
                    pattern.append(False)
                except TransientFault:
                    pattern.append(True)
            return pattern

        assert fault_pattern(3) == fault_pattern(3)
        assert fault_pattern(3) != fault_pattern(4)

    def test_stage_filter(self):
        injector = TransientFaultInjector(1.0, stages={"rdf"})
        injector.maybe_fail("clean")  # never fails: not a targeted stage
        with pytest.raises(TransientFault):
            injector.maybe_fail("rdf")


class _FailNTimes(Operator):
    """Raises TransientFault the first ``n`` process calls per value."""

    name = "flaky"

    def __init__(self, n):
        self._n = n
        self._attempts = {}

    def process(self, record):
        seen = self._attempts.get(record.value, 0)
        self._attempts[record.value] = seen + 1
        if seen < self._n:
            raise TransientFault(f"attempt {seen}")
        return (record,)


class TestRetryingOperator:
    def test_recovers_within_budget(self):
        op = RetryingOperator(_FailNTimes(2), policy=RetryPolicy(max_retries=3))
        out = list(op.process(Record(event_time=0.0, value="a")))
        assert [r.value for r in out] == ["a"]
        assert op.failures == 2
        assert op.retries == 2
        assert op.recovered == 1
        assert len(op.dlq) == 0
        assert op.total_backoff_s > 0

    def test_exhausted_record_lands_in_dlq(self):
        dlq = DeadLetterQueue()
        op = RetryingOperator(_FailNTimes(99), policy=RetryPolicy(max_retries=2), dlq=dlq)
        out = list(op.process(Record(event_time=5.0, value="poison")))
        assert out == []
        (letter,) = dlq.items
        assert letter.value == "poison"
        assert letter.event_time == 5.0
        assert letter.attempts == 3  # 1 initial + 2 retries
        assert dlq.counts_by_stage() == {"retry(flaky)": 1}

    def test_stream_keeps_flowing_past_poison_records(self):
        op = RetryingOperator(_FailNTimes(99), policy=RetryPolicy(max_retries=1))
        good = RetryingOperator(MapOperator(lambda v: v), policy=RetryPolicy())
        outputs = []
        for i in range(5):
            outputs.extend(op.process(Record(event_time=float(i), value=i)))
            outputs.extend(good.process(Record(event_time=float(i), value=i)))
        assert [r.value for r in outputs] == [0, 1, 2, 3, 4]
        assert len(op.dlq) == 5

    def test_injected_faults_recovered_by_retries(self):
        injector = TransientFaultInjector(0.3, seed=11)
        op = RetryingOperator(
            MapOperator(lambda v: v),
            policy=RetryPolicy(max_retries=5),
            injector=injector,
        )
        n = 2000
        delivered = 0
        for i in range(n):
            delivered += len(list(op.process(Record(event_time=float(i), value=i))))
        # The acceptance bar: >= 99% of transiently-failing records recover,
        # the remainder is parked in the DLQ — nothing is silently lost.
        assert delivered + len(op.dlq) == n
        troubled = op.recovered + len(op.dlq)
        assert troubled > 0
        assert op.recovered / troubled >= 0.99

    def test_snapshot_restore_round_trip(self):
        op = RetryingOperator(_FailNTimes(1), policy=RetryPolicy(max_retries=2))
        list(op.process(Record(event_time=0.0, value="a")))
        state = op.snapshot()
        fresh = RetryingOperator(_FailNTimes(1), policy=RetryPolicy(max_retries=2))
        fresh.restore(state)
        assert fresh.failures == 1
        assert fresh.recovered == 1


class TestDeadLetterQueue:
    def test_counts_by_stage(self):
        dlq = DeadLetterQueue()
        dlq.append(DeadLetter("a", 1, 0.0, "boom", 2))
        dlq.append(DeadLetter("a", 2, 1.0, "boom", 2))
        dlq.append(DeadLetter("b", 3, 2.0, "boom", 2))
        assert len(dlq) == 3
        assert dlq.counts_by_stage() == {"a": 2, "b": 1}

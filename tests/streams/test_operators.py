"""Dataflow operators."""

import pytest

from repro.streams.operators import (
    CollectSink,
    FilterOperator,
    FlatMapOperator,
    KeyedProcessOperator,
    MapOperator,
)
from repro.streams.records import Record


def run_op(op, values):
    out = []
    for t, v in values:
        out.extend(op.process(Record(event_time=t, value=v)))
    out.extend(op.on_end())
    return out


class TestStatelessOperators:
    def test_map(self):
        out = run_op(MapOperator(lambda x: x * 10), [(0, 1), (1, 2)])
        assert [r.value for r in out] == [10, 20]
        assert [r.event_time for r in out] == [0, 1]

    def test_filter(self):
        out = run_op(FilterOperator(lambda x: x % 2 == 0), [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert [r.value for r in out] == [2, 4]

    def test_flat_map(self):
        out = run_op(FlatMapOperator(lambda x: range(x)), [(0, 3), (1, 0), (2, 2)])
        assert [r.value for r in out] == [0, 1, 2, 0, 1]

    def test_map_preserves_key(self):
        op = MapOperator(lambda x: x + 1)
        (out,) = op.process(Record(event_time=0, value=1, key="k"))
        assert out.key == "k"


class _Accumulator(KeyedProcessOperator):
    def __init__(self):
        super().__init__(key_fn=lambda v: v[0])

    def process_keyed(self, record, state):
        state["sum"] = state.get("sum", 0) + record.value[1]
        return ()

    def flush_key(self, key, state):
        return (Record(event_time=0.0, value=(key, state["sum"])),)


class TestKeyedProcess:
    def test_per_key_state_isolated(self):
        op = _Accumulator()
        values = [(0, ("a", 1)), (1, ("b", 10)), (2, ("a", 2)), (3, ("b", 20))]
        out = run_op(op, values)
        assert dict(r.value for r in out) == {"a": 3, "b": 30}

    def test_keys_listed(self):
        op = _Accumulator()
        run_op(op, [(0, ("a", 1)), (1, ("b", 1))])
        assert sorted(op.keys) == ["a", "b"]

    def test_record_gets_key(self):
        class Echo(KeyedProcessOperator):
            def __init__(self):
                super().__init__(key_fn=lambda v: v)

            def process_keyed(self, record, state):
                return (record,)

        op = Echo()
        (out,) = op.process(Record(event_time=0, value="z"))
        assert out.key == "z"


class TestCollectSink:
    def test_collects_values_and_records(self):
        sink = CollectSink()
        sink.process(Record(event_time=5.0, value="a"))
        sink.process(Record(event_time=6.0, value="b"))
        assert sink.items == ["a", "b"]
        assert [r.event_time for r in sink.records] == [5.0, 6.0]

    def test_sink_emits_nothing(self):
        sink = CollectSink()
        assert list(sink.process(Record(event_time=0, value=1))) == []

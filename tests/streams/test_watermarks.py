"""Bounded out-of-orderness watermark generation."""

import pytest

from repro.streams.watermarks import BoundedOutOfOrdernessWatermarks


class TestWatermarks:
    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedOutOfOrdernessWatermarks(-1.0)

    def test_advances_with_max_event_time(self):
        gen = BoundedOutOfOrdernessWatermarks(5.0)
        assert gen.observe(10.0) == 5.0
        assert gen.observe(20.0) == 15.0

    def test_no_regression_on_late_events(self):
        gen = BoundedOutOfOrdernessWatermarks(5.0)
        gen.observe(100.0)
        assert gen.observe(50.0) is None
        assert gen.current == 95.0

    def test_only_emits_on_advance(self):
        gen = BoundedOutOfOrdernessWatermarks(0.0)
        assert gen.observe(10.0) == 10.0
        assert gen.observe(10.0) is None

    def test_initial_current_is_minus_inf(self):
        gen = BoundedOutOfOrdernessWatermarks(1.0)
        assert gen.current == float("-inf")

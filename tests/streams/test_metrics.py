"""Metrics: counters and the latency histogram's deterministic reservoir."""

import random

import pytest

from repro.streams.metrics import Counter, LatencyHistogram


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)


def _fill(hist, n):
    for i in range(n):
        hist.record((i % 37) * 1e-4)


class TestReservoirDeterminism:
    def test_thinning_is_reproducible_across_runs(self):
        """Regression: reservoir thinning must not touch the global RNG.

        Long benchmark runs previously drew from the unseeded ``random``
        module, so percentiles differed run to run. Two histograms fed the
        same samples must now retain identical reservoirs regardless of
        global RNG state.
        """
        a = LatencyHistogram(max_samples=100)
        random.seed(1)  # scramble the global RNG differently each time
        _fill(a, 5000)
        b = LatencyHistogram(max_samples=100)
        random.seed(99999)
        _fill(b, 5000)
        assert a.samples == b.samples
        assert a.summary() == b.summary()

    def test_thinning_does_not_disturb_global_rng(self):
        random.seed(7)
        expected = [random.random() for __ in range(5)]
        random.seed(7)
        hist = LatencyHistogram(max_samples=10)
        _fill(hist, 1000)  # 990 thinning draws
        assert [random.random() for __ in range(5)] == expected

    def test_distinct_seeds_thin_differently(self):
        a = LatencyHistogram(max_samples=100, seed=1)
        b = LatencyHistogram(max_samples=100, seed=2)
        _fill(a, 5000)
        _fill(b, 5000)
        assert a.samples != b.samples
        assert a.count == b.count == 5000

    def test_reservoir_bounded_and_count_exact(self):
        hist = LatencyHistogram(max_samples=50)
        _fill(hist, 10_000)
        assert len(hist.samples) == 50
        assert hist.count == 10_000
        assert hist.summary()["count"] == 10_000.0

    def test_below_capacity_keeps_everything(self):
        hist = LatencyHistogram(max_samples=100)
        _fill(hist, 30)
        assert len(hist.samples) == 30
        assert hist.percentile_ms(100) == max(hist.samples) * 1000.0

"""Property-based tests for window assigners and the windowed operator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.records import Record, Watermark
from repro.streams.windows import (
    SessionWindowAssigner,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowedAggregateOperator,
)

# Integer event times and integer slide steps keep // arithmetic exact,
# so coverage-count properties hold with equality, not approximately.
event_times = st.integers(min_value=-(10**6), max_value=10**6).map(float)


class TestTumblingProperties:
    @given(t=event_times, size=st.integers(min_value=1, max_value=500))
    def test_exactly_one_window_contains_the_event(self, t, size):
        windows = TumblingWindowAssigner(float(size)).assign(t)
        assert len(windows) == 1
        ((start, end),) = windows
        assert start <= t < end
        assert end - start == size
        assert start % size == 0


class TestSlidingProperties:
    @given(
        t=event_times,
        slide=st.integers(min_value=1, max_value=50),
        factor=st.integers(min_value=1, max_value=10),
    )
    def test_event_covered_exactly_size_over_slide_times(self, t, slide, factor):
        """With slide | size, every event lands in exactly size/slide windows."""
        size = slide * factor
        windows = SlidingWindowAssigner(float(size), float(slide)).assign(t)
        assert len(windows) == factor
        for start, end in windows:
            assert start <= t < end
            assert end - start == size
            assert start % slide == 0
        # Windows are distinct and sorted by start.
        starts = [start for start, __ in windows]
        assert starts == sorted(set(starts))

    @given(t=event_times, slide=st.integers(min_value=1, max_value=50))
    def test_slide_equal_size_degenerates_to_tumbling(self, t, slide):
        sliding = SlidingWindowAssigner(float(slide), float(slide)).assign(t)
        tumbling = TumblingWindowAssigner(float(slide)).assign(t)
        assert sliding == tumbling


sessions_input = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=0, max_value=2000).map(float),
    ),
    min_size=1,
    max_size=60,
)


class TestSessionProperties:
    @given(items=sessions_input, gap=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60)
    def test_open_session_panes_never_overlap_per_key(self, items, gap):
        op = WindowedAggregateOperator(
            key_fn=lambda v: v[0], assigner=SessionWindowAssigner(float(gap))
        )
        for key, t in sorted(items, key=lambda kv: kv[1]):
            op.process(Record(event_time=t, value=(key, t)))
        for key, intervals in op.pane_intervals().items():
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2, f"sessions overlap for {key}: {intervals}"

    @given(items=sessions_input, gap=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60)
    def test_no_event_lost_or_duplicated_across_sessions(self, items, gap):
        op = WindowedAggregateOperator(
            key_fn=lambda v: v[0],
            assigner=SessionWindowAssigner(float(gap)),
            aggregate_fn=lambda pane: pane,
        )
        ordered = sorted(items, key=lambda kv: kv[1])
        for key, t in ordered:
            op.process(Record(event_time=t, value=(key, t)))
        fired = list(op.on_end())
        emitted = sorted(v for r in fired for v in r.value.values)
        assert emitted == sorted(ordered)
        # Each pane spans its events: every value inside [start, end).
        for record in fired:
            pane = record.value
            for __, t in pane.values:
                assert pane.start <= t < pane.end


class TestWindowedOperatorProperties:
    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=1000).map(float),
            min_size=1,
            max_size=80,
        ),
        size=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=60)
    def test_tumbling_fire_conserves_in_order_events(self, times, size):
        """In-order input + final flush: every event fires exactly once."""
        op = WindowedAggregateOperator(
            key_fn=lambda v: "k", assigner=TumblingWindowAssigner(float(size))
        )
        ordered = sorted(times)
        for t in ordered:
            op.process(Record(event_time=t, value=t))
        mid = list(op.on_watermark(Watermark(ordered[len(ordered) // 2])))
        tail = list(op.on_end())
        emitted = sorted(v for r in mid + tail for v in r.value.values)
        assert emitted == ordered
        assert op.late_records == 0
        assert op.open_panes == 0

"""Shared fixtures: small, deterministic traffic samples and worlds."""

from __future__ import annotations

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.trajectory import Trajectory
from repro.sources.generators import (
    AviationTrafficGenerator,
    MaritimeTrafficGenerator,
    TrafficSample,
)


@pytest.fixture(scope="session")
def maritime_sample() -> TrafficSample:
    """A small deterministic maritime sample shared across tests."""
    generator = MaritimeTrafficGenerator(seed=42)
    return generator.generate(n_vessels=6, max_duration_s=3600.0)


@pytest.fixture(scope="session")
def aviation_sample() -> TrafficSample:
    """A small deterministic aviation sample shared across tests."""
    generator = AviationTrafficGenerator(seed=43)
    return generator.generate(n_flights=4)


@pytest.fixture(scope="session")
def aegean_grid(maritime_sample: TrafficSample) -> GeoGrid:
    """A 16x16 grid over the maritime world."""
    return GeoGrid(bbox=maritime_sample.world.bbox, nx=16, ny=16)


@pytest.fixture()
def straight_track() -> Trajectory:
    """A simple eastbound 2D track: 10 samples, 60 s apart, ~0.01° steps."""
    n = 10
    return Trajectory(
        "T1",
        [60.0 * i for i in range(n)],
        [24.0 + 0.01 * i for i in range(n)],
        [37.0] * n,
    )


@pytest.fixture()
def climb_track() -> Trajectory:
    """A 3D track climbing 100 m per sample."""
    n = 8
    return Trajectory(
        "F1",
        [30.0 * i for i in range(n)],
        [10.0 + 0.02 * i for i in range(n)],
        [45.0 + 0.01 * i for i in range(n)],
        [1000.0 + 100.0 * i for i in range(n)],
    )


@pytest.fixture()
def unit_bbox() -> BBox:
    """A 1°x1° box used by geometry tests."""
    return BBox(24.0, 37.0, 25.0, 38.0)

"""Simple and complex event model."""

import pytest

from repro.model.events import ComplexEvent, EventSeverity, SimpleEvent


class TestSimpleEvent:
    def test_valid(self):
        e = SimpleEvent("zone_entry", "V1", 10.0, 24.0, 37.0)
        assert e.severity is EventSeverity.INFO

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            SimpleEvent("", "V1", 0.0, 24.0, 37.0)

    def test_empty_entity_rejected(self):
        with pytest.raises(ValueError):
            SimpleEvent("x", "", 0.0, 24.0, 37.0)

    def test_attributes_payload(self):
        e = SimpleEvent("proximity", "V1", 0.0, 24.0, 37.0, attributes={"other": "V2"})
        assert e.attributes["other"] == "V2"


class TestComplexEvent:
    def test_duration(self):
        e = ComplexEvent("collision_risk", ("V1", "V2"), 10.0, 40.0)
        assert e.duration == pytest.approx(30.0)

    def test_time_order_enforced(self):
        with pytest.raises(ValueError):
            ComplexEvent("x", ("V1",), 40.0, 10.0)

    def test_needs_entities(self):
        with pytest.raises(ValueError):
            ComplexEvent("x", (), 0.0, 1.0)

    def test_severity_ordering(self):
        assert EventSeverity.ALARM > EventSeverity.WARNING > EventSeverity.INFO

"""Trajectory container: invariants, interpolation, slicing, resampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.errors import EmptyTrajectoryError, TimeOrderError
from repro.model.points import Domain, STPoint
from repro.model.trajectory import Trajectory


class TestConstruction:
    def test_time_order_enforced(self):
        with pytest.raises(TimeOrderError):
            Trajectory("x", [0, 10, 5], [24, 24.1, 24.2], [37, 37, 37])

    def test_equal_timestamps_rejected(self):
        with pytest.raises(TimeOrderError):
            Trajectory("x", [0, 10, 10], [24, 24.1, 24.2], [37, 37, 37])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Trajectory("x", [0, 10], [24.0], [37.0, 37.1])

    def test_alt_length_mismatch(self):
        with pytest.raises(ValueError):
            Trajectory("x", [0, 10], [24, 24.1], [37, 37], [100])

    def test_from_points_mixed_alt_drops_altitude(self):
        points = [STPoint(0, 24, 37, alt=100.0), STPoint(10, 24.1, 37)]
        t = Trajectory.from_points("x", points)
        assert not t.is_3d

    def test_arrays_read_only(self, straight_track):
        with pytest.raises(ValueError):
            straight_track.lon[0] = 0.0

    def test_empty_allowed(self):
        t = Trajectory("x", [], [], [])
        assert len(t) == 0
        with pytest.raises(EmptyTrajectoryError):
            __ = t.start_time


class TestDerived:
    def test_duration_and_span(self, straight_track):
        assert straight_track.duration == pytest.approx(540.0)
        assert straight_track.start_time == 0.0
        assert straight_track.end_time == 540.0

    def test_length_positive_and_additive(self, straight_track):
        total = straight_track.length_m()
        assert total > 0
        first = straight_track.slice_index(0, 5).length_m()
        second = straight_track.slice_index(4, 10).length_m()
        assert first + second == pytest.approx(total, rel=1e-9)

    def test_speeds_constant_for_uniform_track(self, straight_track):
        speeds = straight_track.speeds_mps()
        assert len(speeds) == len(straight_track) - 1
        assert np.allclose(speeds, speeds[0], rtol=1e-3)

    def test_headings_eastbound(self, straight_track):
        headings = straight_track.headings_deg()
        assert np.allclose(headings, 90.0, atol=0.5)

    def test_bbox_covers_all_samples(self, straight_track):
        box = straight_track.bbox()
        for p in straight_track:
            assert box.contains(p.lon, p.lat)

    def test_equality(self, straight_track):
        clone = Trajectory(
            straight_track.entity_id,
            straight_track.t,
            straight_track.lon,
            straight_track.lat,
        )
        assert clone == straight_track


class TestInterpolation:
    def test_at_sample_times_exact(self, straight_track):
        p = straight_track.at_time(120.0)
        assert p == straight_track[2]

    def test_midpoint_interpolation(self, straight_track):
        p = straight_track.at_time(30.0)
        assert p.lon == pytest.approx(24.005)
        assert p.lat == pytest.approx(37.0)

    def test_clamps_outside_span(self, straight_track):
        before = straight_track.at_time(-100.0)
        after = straight_track.at_time(10_000.0)
        assert before == straight_track[0]
        assert after == straight_track[len(straight_track) - 1]

    def test_3d_interpolates_altitude(self, climb_track):
        p = climb_track.at_time(45.0)
        assert p.alt == pytest.approx(1150.0)

    @given(t=st.floats(0.0, 540.0))
    @settings(max_examples=50, deadline=None)
    def test_interpolated_point_within_bbox(self, t):
        n = 10
        track = Trajectory(
            "T1",
            [60.0 * i for i in range(n)],
            [24.0 + 0.01 * i for i in range(n)],
            [37.0] * n,
        )
        p = track.at_time(t)
        assert track.bbox().contains(p.lon, p.lat)


class TestSlicingAndResampling:
    def test_slice_time_inclusive(self, straight_track):
        part = straight_track.slice_time(60.0, 180.0)
        assert len(part) == 3
        assert part.start_time == 60.0
        assert part.end_time == 180.0

    def test_resample_spans_same_interval(self, straight_track):
        resampled = straight_track.resample(45.0)
        assert resampled.start_time == straight_track.start_time
        assert resampled.end_time == straight_track.end_time
        dt = np.diff(resampled.t)
        assert np.all(dt > 0)

    def test_resample_invalid_period(self, straight_track):
        with pytest.raises(ValueError):
            straight_track.resample(0.0)

    def test_gaps_detection(self):
        t = Trajectory("x", [0, 10, 500, 510], [24, 24, 24.1, 24.1], [37] * 4)
        gaps = t.gaps(min_gap_s=60.0)
        assert gaps == [(10.0, 500.0)]

    def test_append_happy_path(self, straight_track):
        later = Trajectory("T1", [600, 660], [24.2, 24.21], [37.0, 37.0])
        combined = straight_track.append(later)
        assert len(combined) == len(straight_track) + 2
        assert combined.end_time == 660

    def test_append_overlapping_rejected(self, straight_track):
        overlap = Trajectory("T1", [100, 200], [24.0, 24.1], [37.0, 37.0])
        with pytest.raises(TimeOrderError):
            straight_track.append(overlap)

    def test_append_other_entity_rejected(self, straight_track):
        other = Trajectory("OTHER", [600], [24.0], [37.0])
        with pytest.raises(ValueError):
            straight_track.append(other)

    def test_distance_to_point(self, straight_track):
        d = straight_track.distance_to_point_m(24.0, 37.0)
        assert d == pytest.approx(0.0, abs=1.0)

"""STPoint and Domain."""

import math

import pytest

from repro.model.points import Domain, STPoint


class TestSTPoint:
    def test_valid_2d(self):
        p = STPoint(10.0, 24.0, 37.0)
        assert not p.is_3d
        assert p.as_tuple() == (10.0, 24.0, 37.0, None)

    def test_valid_3d(self):
        p = STPoint(0.0, 24.0, 37.0, alt=10_000.0)
        assert p.is_3d

    @pytest.mark.parametrize("lon", [-180.1, 180.1, float("nan")])
    def test_bad_longitude(self, lon):
        with pytest.raises(ValueError):
            STPoint(0.0, lon, 37.0)

    @pytest.mark.parametrize("lat", [-90.1, 90.1])
    def test_bad_latitude(self, lat):
        with pytest.raises(ValueError):
            STPoint(0.0, 24.0, lat)

    def test_bad_time(self):
        with pytest.raises(ValueError):
            STPoint(float("inf"), 24.0, 37.0)

    def test_bad_altitude(self):
        with pytest.raises(ValueError):
            STPoint(0.0, 24.0, 37.0, alt=float("nan"))

    def test_with_time(self):
        p = STPoint(0.0, 24.0, 37.0, alt=5.0)
        q = p.with_time(99.0)
        assert q.t == 99.0
        assert (q.lon, q.lat, q.alt) == (p.lon, p.lat, p.alt)

    def test_frozen(self):
        p = STPoint(0.0, 24.0, 37.0)
        with pytest.raises(AttributeError):
            p.lon = 25.0

    def test_hashable(self):
        assert len({STPoint(0.0, 24.0, 37.0), STPoint(0.0, 24.0, 37.0)}) == 1


class TestDomain:
    def test_dimensionality(self):
        assert Domain.AVIATION.is_3d
        assert not Domain.MARITIME.is_3d

"""Entities and the registry."""

import pytest

from repro.model.entities import Aircraft, EntityRegistry, MovingEntity, Vessel
from repro.model.errors import UnknownEntityError
from repro.model.points import Domain


class TestEntities:
    def test_vessel_defaults(self):
        v = Vessel("V1", "MV Test")
        assert v.domain is Domain.MARITIME
        assert v.vessel_type == "cargo"
        assert v.max_speed_mps == pytest.approx(13.0)

    def test_aircraft_defaults(self):
        a = Aircraft("F1", "FLT001")
        assert a.domain is Domain.AVIATION
        assert a.cruise_alt_m == pytest.approx(10_000.0)

    def test_vessel_wrong_domain_rejected(self):
        with pytest.raises(ValueError):
            Vessel("V1", "x", domain=Domain.AVIATION)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            MovingEntity("", "x", Domain.MARITIME)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ValueError):
            MovingEntity("e", "x", Domain.MARITIME, max_speed_mps=0.0)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Vessel("V1", "x", length_m=-5.0)


class TestRegistry:
    def test_add_get_contains(self):
        reg = EntityRegistry()
        reg.add(Vessel("V1", "a"))
        assert "V1" in reg
        assert reg.get("V1").name == "a"
        assert len(reg) == 1

    def test_get_unknown_raises(self):
        reg = EntityRegistry()
        with pytest.raises(UnknownEntityError):
            reg.get("nope")
        assert reg.get_or_none("nope") is None

    def test_replace(self):
        reg = EntityRegistry()
        reg.add(Vessel("V1", "old"))
        reg.add(Vessel("V1", "new"))
        assert reg.get("V1").name == "new"
        assert len(reg) == 1

    def test_by_domain(self):
        reg = EntityRegistry()
        reg.add(Vessel("V1", "a"))
        reg.add(Aircraft("F1", "b"))
        maritime = reg.by_domain(Domain.MARITIME)
        assert [e.entity_id for e in maritime] == ["V1"]

    def test_iteration(self):
        reg = EntityRegistry()
        reg.add(Vessel("V1", "a"))
        reg.add(Vessel("V2", "b"))
        assert sorted(e.entity_id for e in reg) == ["V1", "V2"]

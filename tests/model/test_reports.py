"""PositionReport validation and helpers."""

import pytest

from repro.model.points import Domain
from repro.model.reports import PositionReport, ReportSource


def make(**kwargs):
    defaults = dict(entity_id="V1", t=10.0, lon=24.0, lat=37.0)
    defaults.update(kwargs)
    return PositionReport(**defaults)


class TestValidation:
    def test_minimal(self):
        r = make()
        assert r.source is ReportSource.SYNTHETIC
        assert r.domain is Domain.MARITIME

    def test_empty_entity_rejected(self):
        with pytest.raises(ValueError):
            make(entity_id="")

    def test_heading_range(self):
        make(heading=0.0)
        make(heading=359.9)
        with pytest.raises(ValueError):
            make(heading=360.0)
        with pytest.raises(ValueError):
            make(heading=-1.0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            make(speed=-0.1)

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            make(t=float("nan"))


class TestHelpers:
    def test_point_projection(self):
        r = make(alt=9000.0)
        p = r.point()
        assert (p.t, p.lon, p.lat, p.alt) == (10.0, 24.0, 37.0, 9000.0)

    def test_replace_time_preserves_rest(self):
        r = make(speed=5.0, heading=45.0, extras={"nav": "underway"})
        shifted = r.replace_time(99.0)
        assert shifted.t == 99.0
        assert shifted.speed == 5.0
        assert shifted.heading == 45.0
        assert shifted.extras == {"nav": "underway"}

    def test_frozen(self):
        r = make()
        with pytest.raises(AttributeError):
            r.t = 11.0

"""Backpressure: bounded queues, admission control, shed accounting."""

import queue as queue_mod

import pytest

from repro.runtime.backpressure import AdmissionConfig, AdmissionController
from repro.runtime.supervisor import RuntimeConfig, Supervisor


class TestAdmissionController:
    def test_starts_wide_open(self):
        controller = AdmissionController()
        assert controller.admit_rate == 1.0
        assert all(controller.admit() for __ in range(100))
        assert controller.admitted == 100
        assert controller.shed == 0

    def test_pressure_lowers_rate(self):
        controller = AdmissionController(AdmissionConfig(window=8))
        for __ in range(8):
            controller.observe_put(blocked=True)
        assert controller.admit_rate < 1.0

    def test_step_is_clamped(self):
        config = AdmissionConfig(window=4, max_step=1.4)
        controller = AdmissionController(config)
        for __ in range(4):
            controller.observe_put(blocked=True)
        # One fully-blocked window can shrink the rate by at most 1/max_step.
        assert controller.admit_rate == pytest.approx(1.0 / config.max_step)

    def test_sustained_pressure_hits_floor_not_zero(self):
        config = AdmissionConfig(window=4, min_admit_rate=0.05)
        controller = AdmissionController(config)
        for __ in range(400):
            controller.observe_put(blocked=True)
        assert controller.admit_rate == config.min_admit_rate
        admitted = sum(controller.admit() for __ in range(2000))
        # Degraded progress continues even under total overload.
        assert admitted > 0

    def test_recovers_when_pressure_clears(self):
        config = AdmissionConfig(window=4)
        controller = AdmissionController(config)
        for __ in range(40):
            controller.observe_put(blocked=True)
        depressed = controller.admit_rate
        assert depressed < 1.0
        for __ in range(400):
            controller.observe_put(blocked=False)
        assert controller.admit_rate == 1.0
        assert controller.admit_rate > depressed

    def test_shedding_is_seeded(self):
        def decisions(seed):
            controller = AdmissionController(AdmissionConfig(window=4, seed=seed))
            for __ in range(12):
                controller.observe_put(blocked=True)
            return [controller.admit() for __ in range(200)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_accounting_is_exact(self):
        controller = AdmissionController(AdmissionConfig(window=4))
        for __ in range(20):
            controller.observe_put(blocked=True)
        outcomes = [controller.admit() for __ in range(500)]
        assert controller.admitted == sum(outcomes)
        assert controller.shed == len(outcomes) - sum(outcomes)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(min_admit_rate=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_step=1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(window=0)
        with pytest.raises(ValueError):
            AdmissionConfig(gain=-1.0)


class TestBoundedQueues:
    def test_input_queue_never_exceeds_capacity(self, runtime_spec, tmp_path):
        """A stalled worker's queue fills to its bound, then puts block."""
        from repro.runtime.pool import WorkerPool
        from repro.runtime.worker import WorkerSpec

        capacity = 2
        pool = WorkerPool(queue_capacity=capacity)
        spec = WorkerSpec(
            shard_id=0,
            pipeline=runtime_spec,
            checkpoint_dir=str(tmp_path / "shard-000"),
            service_time_s=30.0,  # effectively stalls after the first record
        )
        try:
            handle = pool.spawn(spec)
            kind, __, __ = handle.out_queue.get(timeout=30.0)
            assert kind == "ready"
            accepted = 0
            saw_full = False
            for __ in range(capacity + 5):
                try:
                    handle.in_queue.put([f"batch-{accepted}"], timeout=0.25)
                    accepted += 1
                except queue_mod.Full:
                    saw_full = True
                    break
            assert saw_full, "bounded queue never reported Full"
            # The bound: capacity in the queue plus at most one batch
            # already pulled into the worker.
            assert accepted <= capacity + 1
        finally:
            pool.shutdown()


class TestAdaptiveShedding:
    @pytest.fixture(scope="class")
    def shed_run(self, runtime_spec, runtime_reports):
        config = RuntimeConfig(
            n_workers=2,
            batch_size=8,
            queue_capacity=2,
            checkpoint_interval=10_000,
            shed_policy="adaptive",
            admission=AdmissionConfig(window=8, seed=11),
            put_timeout_s=0.01,
            service_time_s=0.004,  # slow downstream → queues fill → shed
        )
        supervisor = Supervisor(runtime_spec, config)
        result = supervisor.run(runtime_reports)
        return supervisor, result

    def test_overloaded_run_sheds(self, shed_run):
        __, result = shed_run
        assert result.shed_total > 0
        for shard in result.shards:
            assert shard.final_admit_rate < 1.0

    def test_shed_accounting_is_exact(self, shed_run, runtime_reports):
        """Every routed record is either processed or counted as shed."""
        __, result = shed_run
        assert sum(s.records_routed for s in result.shards) == len(runtime_reports)
        for shard in result.shards:
            assert shard.result.reports_in == shard.records_routed - shard.shed
        assert result.reports_in == len(runtime_reports) - result.shed_total

    def test_shed_counts_land_in_obs(self, shed_run):
        """Shedding is an explicit degraded mode: visible in the registry."""
        supervisor, result = shed_run
        snapshot = supervisor.metrics.as_dict()
        for shard in result.shards:
            name = f"runtime.shard{shard.shard_id}"
            assert snapshot["counters"][f"{name}.shed"] == shard.shed
            assert (
                snapshot["counters"][f"{name}.admitted"]
                == shard.records_routed - shard.shed
            )
            assert snapshot["gauges"][f"{name}.admit_rate"] == pytest.approx(
                shard.final_admit_rate
            )
        assert result.metrics["counters"]["runtime.shard0.shed"] == result.shards[0].shed

    def test_admit_rate_never_below_floor(self, shed_run):
        config = AdmissionConfig()
        __, result = shed_run
        for shard in result.shards:
            assert shard.final_admit_rate >= config.min_admit_rate

    def test_block_policy_is_lossless(self, runtime_spec, runtime_reports):
        """The default policy trades latency, never records."""
        subset = runtime_reports[:300]
        config = RuntimeConfig(
            n_workers=2,
            batch_size=16,
            queue_capacity=1,
            checkpoint_interval=10_000,
            service_time_s=0.002,
        )
        result = Supervisor(runtime_spec, config).run(subset)
        assert result.shed_total == 0
        assert result.reports_in == len(subset)

"""Shared fixtures for the multi-process runtime suite."""

import pytest

from repro.core.pipeline import PipelineSpec
from repro.sources.generators import MaritimeTrafficGenerator


@pytest.fixture(scope="session")
def runtime_sample():
    return MaritimeTrafficGenerator(seed=77).generate(
        n_vessels=8, max_duration_s=2400.0
    )


@pytest.fixture(scope="session")
def runtime_reports(runtime_sample):
    return sorted(runtime_sample.reports, key=lambda r: r.t)


@pytest.fixture(scope="session")
def runtime_spec(runtime_sample):
    return PipelineSpec(
        bbox=runtime_sample.world.bbox,
        registry=runtime_sample.registry,
        zones=tuple(runtime_sample.world.zones),
    )

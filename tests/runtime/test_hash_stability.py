"""PYTHONHASHSEED independence — the acceptance criterion for routing.

Every place the repo once used the salted builtin ``hash()`` (stream/task
routing, scripted-scenario RNG seeds, SVG trajectory colours) must now
produce identical output in interpreters started with different hash
seeds. Each test runs the same probe in two subprocesses with different
``PYTHONHASHSEED`` values and compares digests.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

ROUTING_PROBE = """
import hashlib, json
from repro.hashing import stable_hash
from repro.model.reports import PositionReport
from repro.runtime.sharding import ShardRouter
from repro.streams.parallel import ParallelKeyedRunner
from repro.streams.operators import MapOperator

keys = [f"V{i:04d}" for i in range(500)] + ["", "HOT", "\\u00e5\\u00e4\\u00f6"]
router = ShardRouter(7)
runner = ParallelKeyedRunner(lambda: MapOperator(lambda v: v), 7, key_fn=lambda v: v)
payload = {
    "hashes": [stable_hash(k) for k in keys],
    "shards": [router.shard_of_key(k) for k in keys],
    "tasks": [runner._route(k) for k in keys],
}
print(hashlib.sha256(json.dumps(payload).encode()).hexdigest())
"""

SCENARIO_PROBE = """
import hashlib
from repro.sources.scenarios import rendezvous_scenario

digest = hashlib.sha256()
scenario = rendezvous_scenario(seed=13)
for r in scenario.reports:
    digest.update(f"{r.entity_id},{r.t:.3f},{r.lon:.9f},{r.lat:.9f};".encode())
print(digest.hexdigest())
"""

SVG_PROBE = """
import hashlib
from repro.geo.bbox import BBox
from repro.sources.scenarios import rendezvous_scenario
from repro.viz.svg import SvgMap

scenario = rendezvous_scenario(seed=13)
points = [
    (lon, lat)
    for t in scenario.truth.values()
    for lon, lat in zip(t.lon, t.lat)
]
svg = SvgMap(BBox.from_points(points), width_px=400)
for trajectory in sorted(scenario.truth.values(), key=lambda t: t.entity_id):
    svg.add_trajectory(trajectory)
print(hashlib.sha256(svg.render().encode()).hexdigest())
"""


def run_probe(probe: str, hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
    completed = subprocess.run(
        [sys.executable, "-c", probe],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout.strip()


def assert_seed_independent(probe: str) -> None:
    digests = {seed: run_probe(probe, seed) for seed in ("0", "1", "4242")}
    assert len(set(digests.values())) == 1, digests


def test_builtin_hash_actually_varies_across_seeds():
    """Sanity check: the salt is real, so passing probes mean something."""
    probe = "print(hash('V001'))"
    assert run_probe(probe, "1") != run_probe(probe, "2")


def test_routing_is_hash_seed_independent():
    assert_seed_independent(ROUTING_PROBE)


def test_scenario_data_is_hash_seed_independent():
    assert_seed_independent(SCENARIO_PROBE)


def test_svg_output_is_hash_seed_independent():
    assert_seed_independent(SVG_PROBE)

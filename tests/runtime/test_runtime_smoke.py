"""Multi-process runs vs the single-process pipeline, elasticity, spawn."""

import pytest

from repro.model.reports import PositionReport
from repro.runtime import RuntimeConfig, Supervisor


@pytest.fixture(scope="module")
def single_process(runtime_spec, runtime_reports):
    return runtime_spec.build().run(runtime_reports)


@pytest.fixture(scope="module")
def two_worker(runtime_spec, runtime_reports):
    config = RuntimeConfig(n_workers=2, checkpoint_interval=500)
    supervisor = Supervisor(runtime_spec, config)
    return supervisor, supervisor.run(runtime_reports)


class TestShardInvariantCounts:
    """What sharding must preserve: per-record counts and losslessness.

    Event counts are *not* compared across worker counts — event-time
    clocks and cross-entity detectors are per-shard, so those streams
    legitimately differ between n=1 and n=2 (see docs/runtime.md).
    """

    def test_every_record_processed_exactly_once(
        self, single_process, two_worker, runtime_reports
    ):
        __, merged = two_worker
        assert merged.reports_in == single_process.reports_in == len(runtime_reports)
        assert merged.reports_clean == single_process.reports_clean
        assert merged.reports_kept == single_process.reports_kept

    def test_no_loss_no_restarts_in_a_calm_run(self, two_worker):
        __, merged = two_worker
        assert merged.dead_letter_count == 0
        assert merged.shed_total == 0
        assert merged.restarts_total == 0

    def test_summary_shape(self, two_worker):
        __, merged = two_worker
        summary = merged.summary()
        assert summary["n_workers"] == 2.0
        assert summary["reports_in"] == float(merged.reports_in)
        assert merged.as_dict()["kind"] == "runtime"

    def test_repeat_run_is_byte_identical(self, runtime_spec, runtime_reports):
        config = RuntimeConfig(n_workers=2, checkpoint_interval=500)
        first = Supervisor(runtime_spec, config).run(runtime_reports)
        second = Supervisor(runtime_spec, config).run(runtime_reports)
        assert first.deterministic_bytes() == second.deterministic_bytes()
        assert first.deterministic_digest() == second.deterministic_digest()


class TestMergedObservability:
    def test_aggregate_and_per_worker_namespaces(self, two_worker):
        supervisor, merged = two_worker
        counters = merged.metrics["counters"]
        # Aggregate namespace: totals comparable with a 1-process run.
        assert counters["cep.simple_events"] == len(merged.simple_events)
        # Per-worker namespace via the same prefix-merge API.
        per_worker = [
            counters[f"worker{s.shard_id}.store.triples"] for s in merged.shards
        ]
        assert sum(per_worker) == counters["store.triples"]
        assert merged.metrics["gauges"]["runtime.throughput_rps"] > 0

    def test_supervisor_side_shard_counters(self, two_worker, runtime_reports):
        supervisor, merged = two_worker
        counters = supervisor.metrics.as_dict()["counters"]
        routed = [
            counters[f"runtime.shard{s.shard_id}.routed"] for s in merged.shards
        ]
        assert sum(routed) == len(runtime_reports)


class TestElasticity:
    def test_idle_shards_never_spawn(self, runtime_spec):
        """A 2-entity stream on 8 shards costs at most 2 processes."""
        reports = [
            PositionReport(entity_id=eid, t=float(i * 10), lon=24.5, lat=37.5)
            for i in range(40)
            for eid in ("ONLY-A", "ONLY-B")
        ]
        config = RuntimeConfig(n_workers=8, checkpoint_interval=10_000)
        supervisor = Supervisor(runtime_spec, config)
        result = supervisor.run(reports)
        occupied = {supervisor.router.shard_of_key(e) for e in ("ONLY-A", "ONLY-B")}
        assert result.workers_spawned == len(occupied)
        assert {s.shard_id for s in result.shards} == occupied
        assert result.reports_in == len(reports)


class TestSpawnStartMethod:
    def test_spawn_workers_agree_with_default(
        self, runtime_spec, runtime_reports, single_process
    ):
        """Everything ships by pickle: spawn (fresh interpreter) works."""
        subset = runtime_reports[:400]
        config = RuntimeConfig(
            n_workers=1, checkpoint_interval=10_000, start_method="spawn"
        )
        result = Supervisor(runtime_spec, config).run(subset)
        baseline = runtime_spec.build().run(subset)
        assert result.reports_in == baseline.reports_in == 400
        assert result.reports_clean == baseline.reports_clean
        assert result.reports_kept == baseline.reports_kept

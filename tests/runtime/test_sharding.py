"""Routing properties: stability, totality, resharding, skew."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import stable_hash, stable_shard
from repro.model.reports import PositionReport
from repro.runtime.sharding import ShardRouter, entity_key

keys = st.one_of(
    st.text(max_size=30),
    st.integers(),
    st.binary(max_size=30),
    st.tuples(st.text(max_size=10), st.integers()),
)


def report(entity_id: str, t: float = 0.0) -> PositionReport:
    return PositionReport(entity_id=entity_id, t=t, lon=24.5, lat=37.5)


class TestStableHash:
    def test_known_values(self):
        """Pinned CRC-32 values: any interpreter must reproduce these."""
        assert stable_hash("V001") == 1708219451
        assert stable_hash(b"V001") == 1708219451
        assert stable_hash("") == 0
        assert stable_hash(7) == stable_hash("7")

    def test_bool_not_conflated_with_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_unhashable_types_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(3.14)
        with pytest.raises(TypeError):
            stable_hash(["list"])

    @given(keys)
    @settings(max_examples=200)
    def test_deterministic_within_process(self, key):
        assert stable_hash(key) == stable_hash(key)

    @given(keys, st.integers(min_value=1, max_value=64))
    @settings(max_examples=200)
    def test_shard_in_range(self, key, n):
        assert 0 <= stable_shard(key, n) < n

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            stable_shard("x", 0)


class TestShardRouter:
    @given(
        st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_partition_is_total_and_order_preserving(self, ids, n):
        """Every record lands in exactly one shard; shard order = arrival order."""
        reports = [report(e, t=float(i)) for i, e in enumerate(ids)]
        parts = ShardRouter(n).partition(reports)
        assert len(parts) == n
        flat = [r for part in parts for r in part]
        assert sorted(flat, key=lambda r: r.t) == reports
        assert len(flat) == len(reports)
        for part in parts:
            assert [r.t for r in part] == sorted(r.t for r in part)

    @given(
        st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_total_under_resharding(self, ids, n1, n2):
        """Resharding redistributes keys but never loses or duplicates one."""
        reports = [report(e, t=float(i)) for i, e in enumerate(ids)]
        router = ShardRouter(n1)
        resharded = router.reshard(n2)
        assert resharded.n_shards == n2
        assert resharded.key_fn is router.key_fn
        count_a = sum(len(p) for p in router.partition(reports))
        count_b = sum(len(p) for p in resharded.partition(reports))
        assert count_a == count_b == len(reports)

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_key_affinity(self, ids):
        """All of one entity's records land on the same shard."""
        reports = [report(e, t=float(i)) for i, e in enumerate(ids)]
        router = ShardRouter(4)
        for part_idx, part in enumerate(router.partition(reports)):
            for r in part:
                assert router.route(r) == part_idx
                assert router.shard_of_key(r.entity_id) == part_idx

    def test_agrees_with_simulated_runner_routing(self):
        """Real and simulated parallelism share one routing function."""
        from repro.streams.parallel import ParallelKeyedRunner
        from repro.streams.operators import MapOperator

        runner = ParallelKeyedRunner(
            lambda: MapOperator(lambda v: v), 4, key_fn=entity_key
        )
        router = ShardRouter(4)
        for i in range(50):
            r = report(f"V{i:03d}")
            assert runner._route(r) == router.route(r)

    def test_single_shard_takes_everything(self):
        reports = [report(f"V{i}") for i in range(20)]
        parts = ShardRouter(1).partition(reports)
        assert [len(p) for p in parts] == [20]

    def test_skew_of_even_and_degenerate_streams(self):
        even = [report(f"V{i:04d}") for i in range(400)]
        assert ShardRouter(4).skew(even) < 2.0
        hot = [report("HOT") for __ in range(100)]
        assert ShardRouter(4).skew(hot) == 4.0

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--vessels", "3", "--hours", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "compression" in out
        assert "throughput" in out


class TestQuery:
    def test_valid_query(self, capsys):
        code = main([
            "query",
            "SELECT ?n WHERE { ?n rdf:type dac:SemanticNode . }",
            "--vessels", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows" in out

    def test_invalid_query_exit_code(self, capsys):
        code = main(["query", "THIS IS NOT A QUERY", "--vessels", "2"])
        assert code == 2
        assert "query error" in capsys.readouterr().err


class TestScenarios:
    def test_scorecard(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("collision_course", "loitering", "zone_intrusion", "rendezvous"):
            assert name in out


class TestReport:
    def test_writes_html(self, tmp_path, capsys):
        out_file = tmp_path / "situation.html"
        assert main(["report", "--out", str(out_file), "--vessels", "3"]) == 0
        assert out_file.read_text().startswith("<!DOCTYPE html>")


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

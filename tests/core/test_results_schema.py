"""The :class:`repro.core.results.ResultSchema` contract and its envelope.

Three run-report classes implement the protocol — PipelineResult,
ExecutionReport, RuntimeResult — and the versioned document round-trips
through JSON with its content digest verified on the way back in.
"""

import json

import pytest

from repro.core.pipeline import MobilityPipeline, PipelineResult
from repro.core.results import (
    RESULT_SCHEMA_VERSION,
    ResultSchema,
    canonical_bytes,
    digest_of,
    load_result_document,
    result_document,
)
from repro.query.executor import ExecutionReport
from repro.runtime.merge import ResultMerger, RuntimeResult, ShardOutcome
from repro.sources.generators import MaritimeTrafficGenerator


@pytest.fixture(scope="module")
def pipeline_result():
    sample = MaritimeTrafficGenerator(seed=42).generate(
        n_vessels=3, max_duration_s=900.0
    )
    pipeline = MobilityPipeline(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=sample.world.zones,
    )
    return pipeline.run(sample.reports)


@pytest.fixture(scope="module")
def runtime_result(pipeline_result):
    merger = ResultMerger()
    return merger.merge(
        [ShardOutcome(shard_id=0, result=pipeline_result)],
        n_workers=1,
        wall_time_s=1.0,
    )


class TestProtocolConformance:
    def test_pipeline_result_implements_schema(self, pipeline_result):
        assert isinstance(pipeline_result, ResultSchema)

    def test_execution_report_implements_schema(self):
        assert isinstance(ExecutionReport(), ResultSchema)

    def test_runtime_result_implements_schema(self, runtime_result):
        assert isinstance(runtime_result, ResultSchema)

    def test_empty_result_is_not_mistaken_for_schema(self):
        assert not isinstance(object(), ResultSchema)


class TestDeterministicDigest:
    def test_digest_matches_canonical_encoding(self, pipeline_result):
        assert pipeline_result.deterministic_bytes() == canonical_bytes(
            pipeline_result.deterministic_payload()
        )
        assert pipeline_result.deterministic_digest() == digest_of(
            pipeline_result.deterministic_payload()
        )

    def test_execution_report_digest_ignores_timing(self):
        fast = ExecutionReport(n_results=5, partitions_total=4, total_s=0.001)
        slow = ExecutionReport(n_results=5, partitions_total=4, total_s=9.999)
        assert fast.deterministic_digest() == slow.deterministic_digest()

    def test_execution_report_digest_sees_content(self):
        a = ExecutionReport(n_results=5)
        b = ExecutionReport(n_results=6)
        assert a.deterministic_digest() != b.deterministic_digest()

    def test_pipeline_result_digest_ignores_wall_time(self, pipeline_result):
        digest = pipeline_result.deterministic_digest()
        pipeline_result.wall_time_s += 100.0
        assert pipeline_result.deterministic_digest() == digest

    def test_runtime_digest_tracks_shard_payloads(self, pipeline_result):
        one = RuntimeResult(
            n_workers=2, shards=[ShardOutcome(shard_id=0, result=pipeline_result)]
        )
        two = RuntimeResult(
            n_workers=2,
            shards=[
                ShardOutcome(shard_id=0, result=pipeline_result),
                ShardOutcome(shard_id=1, result=PipelineResult()),
            ],
        )
        assert one.deterministic_digest() != two.deterministic_digest()


class TestResultDocument:
    @pytest.mark.parametrize("kind", ["pipeline", "query", "runtime"])
    def test_round_trip(self, kind, pipeline_result, runtime_result):
        source = {
            "pipeline": pipeline_result,
            "query": ExecutionReport(n_results=3, partitions_total=2),
            "runtime": runtime_result,
        }[kind]
        doc = result_document(source)
        loaded = load_result_document(json.dumps(doc))
        assert loaded["kind"] == kind
        assert loaded["schema_version"] == RESULT_SCHEMA_VERSION
        assert loaded["digest"] == source.deterministic_digest()
        assert loaded["summary"] == pytest.approx(source.summary())

    def test_tampered_payload_rejected(self, pipeline_result):
        doc = result_document(pipeline_result)
        doc["deterministic"]["reports_in"] += 1
        with pytest.raises(ValueError, match="digest mismatch"):
            load_result_document(json.dumps(doc))

    def test_unknown_version_rejected(self, pipeline_result):
        doc = result_document(pipeline_result)
        doc["schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported result schema version"):
            load_result_document(doc)

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing keys"):
            load_result_document({"schema_version": RESULT_SCHEMA_VERSION})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            load_result_document(json.dumps([1, 2, 3]))

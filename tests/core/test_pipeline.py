"""End-to-end pipeline behaviour."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MobilityPipeline
from repro.insitu.synopses import SynopsesConfig
from repro.model.points import Domain


@pytest.fixture(scope="module")
def pipeline_run(maritime_sample_module):
    sample = maritime_sample_module
    pipeline = MobilityPipeline(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=sample.world.zones,
    )
    result = pipeline.run(sample.reports)
    return (pipeline, result, sample)


@pytest.fixture(scope="module")
def maritime_sample_module():
    from repro.sources.generators import MaritimeTrafficGenerator

    return MaritimeTrafficGenerator(seed=42).generate(n_vessels=6, max_duration_s=3600.0)


class TestCounters:
    def test_every_report_accounted(self, pipeline_run):
        __, result, sample = pipeline_run
        assert result.reports_in == len(sample.reports)
        assert result.reports_clean == result.reports_in  # generator is clean
        assert 0 < result.reports_kept < result.reports_clean

    def test_compression_substantial(self, pipeline_run):
        __, result, __s = pipeline_run
        assert result.compression_ratio > 0.5

    def test_triples_stored(self, pipeline_run):
        pipeline, result, __ = pipeline_run
        assert result.triples_stored > 0
        # Store also contains entity + zone documents loaded up front.
        assert len(pipeline.store) >= result.triples_stored

    def test_latency_summaries_present(self, pipeline_run):
        __, result, __s = pipeline_run
        assert set(result.stage_latency) == {"clean", "synopses", "rdf", "events", "detectors"}
        assert result.end_to_end["count"] == result.reports_in
        assert result.end_to_end["p95_ms"] > 0.0

    def test_throughput_positive(self, pipeline_run):
        __, result, __s = pipeline_run
        assert result.throughput_rps > 100.0


class TestStoredData:
    def test_trajectory_queryable(self, pipeline_run):
        pipeline, __, sample = pipeline_run
        entity_id = next(iter(sample.truth))
        trajectory = pipeline.executor.entity_trajectory(entity_id)
        assert len(trajectory) >= 2
        truth = sample.truth[entity_id]
        assert trajectory.start_time >= truth.start_time - 1.0
        assert trajectory.end_time <= truth.end_time + 1.0

    def test_synopsis_close_to_truth(self, pipeline_run):
        from repro.geo.geodesy import haversine_m

        pipeline, __, sample = pipeline_run
        entity_id = next(iter(sample.truth))
        stored = pipeline.executor.entity_trajectory(entity_id)
        truth = sample.truth[entity_id]
        mid = (stored.start_time + stored.end_time) / 2.0
        a = stored.at_time(mid)
        b = truth.at_time(mid)
        assert haversine_m(a.lon, a.lat, b.lon, b.lat) < 500.0


class TestConfigVariants:
    def test_rdf_disabled(self, maritime_sample_module):
        sample = maritime_sample_module
        pipeline = MobilityPipeline(
            bbox=sample.world.bbox,
            config=PipelineConfig(persist_rdf=False),
            registry=sample.registry,
        )
        result = pipeline.run(sample.reports[:500])
        assert result.triples_stored == 0
        assert len(pipeline.store) == 0

    def test_raw_persistence_stores_more(self, maritime_sample_module):
        sample = maritime_sample_module
        reports = sample.reports[:800]

        def run(persist_raw):
            pipeline = MobilityPipeline(
                bbox=sample.world.bbox,
                config=PipelineConfig(persist_raw_reports=persist_raw),
                registry=sample.registry,
            )
            return pipeline.run(list(reports)).triples_stored

        assert run(True) > run(False)

    @pytest.mark.parametrize("partitioner", ["hash", "grid", "hilbert"])
    def test_all_partitioners_work(self, maritime_sample_module, partitioner):
        sample = maritime_sample_module
        pipeline = MobilityPipeline(
            bbox=sample.world.bbox,
            config=PipelineConfig(partitioner=partitioner, n_partitions=4),
            registry=sample.registry,
        )
        result = pipeline.run(sample.reports[:400])
        assert result.triples_stored > 0

    def test_invalid_partitioner_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(partitioner="mystery")

    def test_synopses_threshold_controls_storage(self, maritime_sample_module):
        sample = maritime_sample_module

        def kept(threshold):
            pipeline = MobilityPipeline(
                bbox=sample.world.bbox,
                config=PipelineConfig(
                    synopses=SynopsesConfig(dr_error_threshold_m=threshold)
                ),
                registry=sample.registry,
            )
            return pipeline.run(list(sample.reports)).reports_kept

        assert kept(30.0) > kept(500.0)


class TestAdaptiveSynopses:
    def test_keep_rate_target_respected(self, maritime_sample_module):
        sample = maritime_sample_module
        target = 0.15
        pipeline = MobilityPipeline(
            bbox=sample.world.bbox,
            config=PipelineConfig(adaptive_keep_rate=target),
            registry=sample.registry,
        )
        result = pipeline.run(list(sample.reports))
        achieved = result.reports_kept / result.reports_clean
        # The controller needs a few adjustment periods to converge; the
        # whole-run average still lands near the target.
        assert achieved == pytest.approx(target, abs=0.1)

    def test_adaptive_and_fixed_both_answer_queries(self, maritime_sample_module):
        sample = maritime_sample_module
        pipeline = MobilityPipeline(
            bbox=sample.world.bbox,
            config=PipelineConfig(adaptive_keep_rate=0.1),
            registry=sample.registry,
        )
        pipeline.run(list(sample.reports))
        entity_id = next(iter(sample.truth))
        assert len(pipeline.executor.entity_trajectory(entity_id)) >= 2


class TestStreamingHotspots:
    def test_hotspot_stage_optional(self, maritime_sample_module):
        sample = maritime_sample_module
        off = MobilityPipeline(bbox=sample.world.bbox)
        off_result = off.run(list(sample.reports))
        assert not [e for e in off_result.complex_events if e.event_type == "hotspot"]

    def test_hotspot_events_emitted_when_enabled(self):
        from repro.sources.generators import MaritimeTrafficGenerator

        sample = MaritimeTrafficGenerator(seed=8).generate(
            n_vessels=15, max_duration_s=3600.0
        )
        pipeline = MobilityPipeline(
            bbox=sample.world.bbox,
            config=PipelineConfig(hotspots=True, hotspot_z_threshold=2.0),
            registry=sample.registry,
        )
        result = pipeline.run(sample.reports)
        hotspots = [e for e in result.complex_events if e.event_type == "hotspot"]
        assert hotspots
        assert all(e.attributes["entity_count"] >= 3 for e in hotspots)


class TestAviationPipeline:
    def test_capacity_detector_active(self):
        from repro.sources.generators import AviationTrafficGenerator

        sample = AviationTrafficGenerator(seed=3).generate(n_flights=8)
        pipeline = MobilityPipeline(
            bbox=sample.world.bbox,
            config=PipelineConfig(capacity_limit=2, capacity_window_s=1800.0),
            registry=sample.registry,
            zones=sample.world.sectors,
            domain=Domain.AVIATION,
        )
        result = pipeline.run(sample.reports)
        overloads = [
            e for e in result.complex_events if e.event_type == "capacity_overload"
        ]
        assert overloads  # 8 flights over sectors with capacity 2

"""RecordBatch edge cases and the dict↔columnar round-trip property.

The columnar hot path trusts this structure completely — segment layout,
NaN encoding of optional fields, offsets — so the degenerate shapes
(empty, singleton, one entity, all-None optionals) and a generative
round-trip are pinned here, independent of any pipeline.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recordbatch import RecordBatch, recordbatches
from repro.model.reports import PositionReport


def _report(eid="v1", t=0.0, lon=0.0, lat=0.0, **kw):
    return PositionReport(entity_id=eid, t=t, lon=lon, lat=lat, **kw)


class TestEdgeCases:
    def test_empty_batch(self):
        batch = RecordBatch.empty(offset=7)
        assert len(batch) == 0
        assert batch.n_entities == 0
        assert batch.offset == 7
        assert batch.to_reports() == ()
        assert list(batch.segments()) == []
        assert batch.t.shape == (0,)

    def test_single_record(self):
        batch = RecordBatch.from_reports([_report(t=5.0, speed=3.0)])
        assert len(batch) == 1
        assert batch.n_entities == 1
        assert batch.vocabulary == ("v1",)
        assert batch.t[0] == 5.0
        assert batch.speed[0] == 3.0
        [(code, eid, positions)] = batch.segments()
        assert (code, eid) == (0, "v1")
        assert positions.tolist() == [0]

    def test_all_one_entity_is_one_segment_in_stream_order(self):
        reports = [_report(t=float(i), lon=float(i)) for i in range(10)]
        batch = RecordBatch.from_reports(reports)
        assert batch.n_entities == 1
        assert batch.positions_of(0).tolist() == list(range(10))

    def test_vocabulary_is_first_seen_order(self):
        batch = RecordBatch.from_reports(
            [_report("b"), _report("a"), _report("b"), _report("c")]
        )
        assert batch.vocabulary == ("b", "a", "c")
        assert batch.positions_of(0).tolist() == [0, 2]
        assert batch.positions_of(1).tolist() == [1]
        assert batch.positions_of(2).tolist() == [3]

    def test_none_optionals_become_nan(self):
        batch = RecordBatch.from_reports([_report()])
        assert math.isnan(batch.speed[0])
        assert math.isnan(batch.heading[0])
        assert math.isnan(batch.alt[0])
        # NaN never compares true — the vector analogue of `is None` skips.
        assert not (batch.speed > 0).any()

    def test_implausible_values_survive_verbatim(self):
        # The batch is a faithful transport: validation lives in
        # PositionReport; extreme-but-legal values pass through untouched.
        r = _report(t=-1e12, lon=180.0, lat=-90.0, speed=1e9, heading=359.999)
        batch = RecordBatch.from_reports([r])
        assert batch.t[0] == -1e12
        assert batch.lon[0] == 180.0
        assert batch.lat[0] == -90.0
        assert batch.speed[0] == 1e9
        assert batch.to_reports() == (r,)

    def test_slice_shifts_offset(self):
        reports = [_report(t=float(i)) for i in range(8)]
        batch = RecordBatch.from_reports(reports, offset=100)
        part = batch.slice(3, 6)
        assert part.offset == 103
        assert part.reports == tuple(reports[3:6])

    def test_columns_are_float64(self):
        batch = RecordBatch.from_reports([_report(speed=1.0)])
        for column in (batch.t, batch.lon, batch.lat, batch.speed,
                       batch.heading, batch.alt):
            assert column.dtype == np.float64
        assert batch.entity_codes.dtype == np.int32


_ENTITY_IDS = st.sampled_from(["a", "b", "c", "d"])
_COORD = st.floats(-180.0, 180.0, allow_nan=False)
_OPTIONAL = st.none() | st.floats(0.0, 1e4, allow_nan=False)
_HEADING = st.none() | st.floats(0.0, 359.999, allow_nan=False)


_REPORTS = st.lists(
    st.builds(
        PositionReport,
        entity_id=_ENTITY_IDS,
        t=st.floats(0.0, 1e6, allow_nan=False),
        lon=_COORD,
        lat=st.floats(-90.0, 90.0, allow_nan=False),
        alt=_OPTIONAL,
        speed=_OPTIONAL,
        heading=_HEADING,
    ),
    min_size=0,
    max_size=40,
)


class TestRoundTripProperties:
    @given(reports=_REPORTS)
    @settings(max_examples=150, deadline=None)
    def test_reports_round_trip_exactly(self, reports):
        batch = RecordBatch.from_reports(reports)
        assert batch.to_reports() == tuple(reports)

    @given(reports=_REPORTS)
    @settings(max_examples=150, deadline=None)
    def test_segments_partition_the_batch(self, reports):
        batch = RecordBatch.from_reports(reports)
        seen: list[int] = []
        for code, entity_id, positions in batch.segments():
            expected = [
                i for i, r in enumerate(reports) if r.entity_id == entity_id
            ]
            assert positions.tolist() == expected  # stream order per entity
            seen.extend(positions.tolist())
        assert sorted(seen) == list(range(len(reports)))

    @given(reports=_REPORTS, start=st.integers(0, 40), length=st.integers(0, 40))
    @settings(max_examples=100, deadline=None)
    def test_slice_equals_rebuild(self, reports, start, length):
        batch = RecordBatch.from_reports(reports, offset=11)
        part = batch.slice(start, start + length)
        rebuilt = RecordBatch.from_reports(
            reports[start : start + length], offset=11 + start
        )
        assert part.reports == rebuilt.reports
        assert part.offset == rebuilt.offset
        assert part.vocabulary == rebuilt.vocabulary

    @given(reports=_REPORTS, size=st.integers(1, 7))
    @settings(max_examples=100, deadline=None)
    def test_recordbatches_cover_the_stream(self, reports, size):
        slices = [reports[i : i + size] for i in range(0, len(reports), size)]
        batches = list(recordbatches(slices, start_offset=3))
        flattened = [r for b in batches for r in b.reports]
        assert flattened == reports
        offset = 3
        for batch in batches:
            assert batch.offset == offset
            offset += len(batch)

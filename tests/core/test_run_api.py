"""The unified ``MobilityPipeline.run`` entry point and its option types.

``run(source, *, batch, checkpoints)`` replaces four deprecated methods;
these tests pin (a) result equivalence between the new spellings and the
old ones, (b) that every deprecated entry point still works but warns,
and (c) the option dataclasses' validation.
"""

import warnings

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import BatchOptions, CheckpointOptions, MobilityPipeline
from repro.core.recordbatch import RecordBatch, recordbatches
from repro.sources.generators import MaritimeTrafficGenerator
from repro.streams.chaos import CrashInjector, InjectedCrash
from repro.streams.checkpoint import InMemoryCheckpointStore
from repro.streams.replay import ReplayLog


@pytest.fixture(scope="module")
def sample():
    return MaritimeTrafficGenerator(seed=42).generate(
        n_vessels=4, max_duration_s=1200.0
    )


def _pipeline(sample):
    return MobilityPipeline(
        bbox=sample.world.bbox,
        config=PipelineConfig(),
        registry=sample.registry,
        zones=sample.world.zones,
    )


class TestUnifiedRun:
    def test_batch_options_match_scalar_path(self, sample):
        scalar = _pipeline(sample).run(sample.reports)
        batched = _pipeline(sample).run(
            sample.reports, batch=BatchOptions(size=64)
        )
        assert batched.deterministic_digest() == scalar.deterministic_digest()

    def test_recordbatch_source_matches_batch_options(self, sample):
        via_options = _pipeline(sample).run(
            sample.reports, batch=BatchOptions(size=64)
        )
        via_batches = _pipeline(sample).run(sample.record_batches(64))
        assert (
            via_batches.deterministic_digest()
            == via_options.deterministic_digest()
        )

    def test_empty_source_finalizes(self, sample):
        result = _pipeline(sample).run([])
        assert result.reports_in == 0

    def test_checkpoints_saved_at_interval(self, sample):
        store = InMemoryCheckpointStore(retain=100)
        result = _pipeline(sample).run(
            sample.reports,
            checkpoints=CheckpointOptions(store=store, interval=50),
        )
        assert result.reports_in == len(sample.reports)
        latest = store.latest()
        assert latest is not None
        assert latest.source_offset == len(sample.reports) // 50 * 50

    def test_batched_checkpoints_land_on_batch_boundaries(self, sample):
        store = InMemoryCheckpointStore(retain=100)
        _pipeline(sample).run(
            sample.reports,
            batch=BatchOptions(size=64),
            checkpoints=CheckpointOptions(store=store, interval=100),
        )
        latest = store.latest()
        assert latest is not None
        assert latest.source_offset % 64 == 0

    def test_crash_and_resume_matches_uninterrupted(self, sample):
        full = _pipeline(sample).run(sample.reports)
        store = InMemoryCheckpointStore(retain=2)
        crash_at = len(sample.reports) * 2 // 3
        with pytest.raises(InjectedCrash):
            _pipeline(sample).run(
                CrashInjector(sample.reports, crash_at),
                checkpoints=CheckpointOptions(store=store, interval=40),
            )
        resumed = _pipeline(sample).run(
            ReplayLog(sample.reports),
            checkpoints=CheckpointOptions(store=store, resume=True),
        )
        assert resumed.deterministic_digest() == full.deterministic_digest()

    def test_resume_from_recordbatch_source(self, sample):
        """Resume flattens a RecordBatch source to skip the covered prefix."""
        full = _pipeline(sample).run(sample.reports)
        store = InMemoryCheckpointStore(retain=2)
        crash_at = len(sample.reports) * 2 // 3
        with pytest.raises(InjectedCrash):
            _pipeline(sample).run(
                CrashInjector(sample.reports, crash_at),
                checkpoints=CheckpointOptions(store=store, interval=40),
            )
        resumed = _pipeline(sample).run(
            list(sample.record_batches(64)),
            checkpoints=CheckpointOptions(store=store, resume=True),
        )
        assert resumed.deterministic_digest() == full.deterministic_digest()

    def test_resume_without_checkpoint_raises(self, sample):
        with pytest.raises(ValueError, match="no checkpoint"):
            _pipeline(sample).run(
                sample.reports,
                checkpoints=CheckpointOptions(
                    store=InMemoryCheckpointStore(), resume=True
                ),
            )


class TestDeprecatedShims:
    def test_run_batched_warns_and_matches(self, sample):
        new = _pipeline(sample).run(sample.reports, batch=BatchOptions(size=64))
        pipeline = _pipeline(sample)
        with pytest.warns(DeprecationWarning, match="run_batched"):
            old = pipeline.run_batched(sample.reports, batch_size=64)
        assert old.deterministic_digest() == new.deterministic_digest()

    def test_run_with_checkpoints_warns_and_matches(self, sample):
        new_store = InMemoryCheckpointStore(retain=100)
        new = _pipeline(sample).run(
            sample.reports,
            checkpoints=CheckpointOptions(store=new_store, interval=50),
        )
        old_store = InMemoryCheckpointStore(retain=100)
        pipeline = _pipeline(sample)
        with pytest.warns(DeprecationWarning, match="run_with_checkpoints"):
            old = pipeline.run_with_checkpoints(sample.reports, old_store, 50)
        assert old.deterministic_digest() == new.deterministic_digest()
        assert old_store.latest().source_offset == new_store.latest().source_offset

    def test_run_batches_with_checkpoints_warns_and_matches(self, sample):
        batches = [
            sample.reports[i : i + 64] for i in range(0, len(sample.reports), 64)
        ]
        new = _pipeline(sample).run(
            recordbatches(batches),
            checkpoints=CheckpointOptions(
                store=InMemoryCheckpointStore(retain=100), interval=100
            ),
        )
        pipeline = _pipeline(sample)
        with pytest.warns(DeprecationWarning, match="run_batches_with_checkpoints"):
            old = pipeline.run_batches_with_checkpoints(
                batches, InMemoryCheckpointStore(retain=100), 100
            )
        assert old.deterministic_digest() == new.deterministic_digest()

    def test_resume_from_checkpoint_warns(self, sample):
        store = InMemoryCheckpointStore(retain=2)
        with pytest.raises(InjectedCrash):
            _pipeline(sample).run(
                CrashInjector(sample.reports, len(sample.reports) // 2),
                checkpoints=CheckpointOptions(store=store, interval=40),
            )
        full = _pipeline(sample).run(sample.reports)
        pipeline = _pipeline(sample)
        with pytest.warns(DeprecationWarning, match="resume_from_checkpoint"):
            resumed = pipeline.resume_from_checkpoint(store, ReplayLog(sample.reports))
        assert resumed.deterministic_digest() == full.deterministic_digest()

    def test_deprecated_validation_messages_survive(self, sample):
        pipeline = _pipeline(sample)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="batch_size must be positive"):
                pipeline.run_batched(sample.reports, batch_size=0)
            with pytest.raises(ValueError, match="checkpoint_interval must be positive"):
                pipeline.run_with_checkpoints(
                    sample.reports, InMemoryCheckpointStore(), 0
                )


class TestOptionValidation:
    def test_batch_options_reject_nonpositive(self):
        with pytest.raises(ValueError, match="batch size"):
            BatchOptions(size=0)

    def test_checkpoint_options_reject_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            CheckpointOptions(store=InMemoryCheckpointStore(), interval=0)

    def test_checkpoint_options_require_interval_or_resume(self):
        with pytest.raises(ValueError, match="interval, resume=True"):
            CheckpointOptions(store=InMemoryCheckpointStore())

    def test_checkpoint_options_reject_negative_offset(self):
        with pytest.raises(ValueError, match="start_offset"):
            CheckpointOptions(
                store=InMemoryCheckpointStore(), interval=10, start_offset=-1
            )


class TestRecordBatchSources:
    def test_record_batches_offsets_are_consecutive(self, sample):
        batches = list(sample.record_batches(64))
        assert sum(len(b) for b in batches) == len(sample.reports)
        offset = 0
        for batch in batches:
            assert batch.offset == offset
            offset += len(batch)

    def test_record_batches_rejects_nonpositive_size(self, sample):
        with pytest.raises(ValueError, match="batch_size"):
            list(sample.record_batches(0))

    def test_recordbatches_helper_drops_empty_batches(self, sample):
        reports = sample.reports[:10]
        batches = list(recordbatches([reports[:4], [], reports[4:]], start_offset=5))
        assert [(b.offset, len(b)) for b in batches] == [(5, 4), (9, 6)]
        assert all(isinstance(b, RecordBatch) for b in batches)

"""Link scoring."""

import pytest

from repro.linkage.evaluation import score_links
from repro.linkage.relations import Link, LinkRelation


def near(a, b):
    return Link(a, b, LinkRelation.NEAR)


class TestScoreLinks:
    def test_perfect(self):
        links = [near("a", "b"), near("c", "d")]
        score = score_links(links, links)
        assert score.precision == 1.0 and score.recall == 1.0

    def test_partial(self):
        found = [near("a", "b"), near("x", "y")]
        reference = [near("a", "b"), near("c", "d")]
        score = score_links(found, reference)
        assert score.true_positives == 1
        assert score.false_positives == 1
        assert score.false_negatives == 1
        assert score.precision == 0.5
        assert score.recall == 0.5

    def test_symmetric_canonicalisation(self):
        score = score_links([near("b", "a")], [near("a", "b")])
        assert score.recall == 1.0

    def test_empty_sets(self):
        score = score_links([], [])
        assert score.precision == 1.0 and score.recall == 1.0

    def test_pruning_ratio(self):
        score = score_links([], [], candidates_compared=100, candidates_baseline=1000)
        assert score.pruning_ratio == pytest.approx(0.9)

    def test_pruning_unknown(self):
        score = score_links([], [])
        assert score.pruning_ratio == 0.0

    def test_within_zone_not_canonicalised(self):
        # Containment is directional: reversed ids are different links.
        found = [Link("zone1", "item1", LinkRelation.WITHIN_ZONE)]
        reference = [Link("item1", "zone1", LinkRelation.WITHIN_ZONE)]
        score = score_links(found, reference)
        assert score.true_positives == 0

"""Trajectory-level link discovery."""

import pytest

from repro.linkage.relations import LinkRelation
from repro.linkage.trajectory_links import (
    co_movement_links,
    same_route_links,
    to_rdf_links,
)
from repro.model.trajectory import Trajectory
from repro.sources.kinematics import simulate_route
from repro.sources.world import RouteSpec

ROUTE_A = RouteSpec("A", ((24.0, 37.0), (24.5, 37.0)), speed_mps=10.0)
ROUTE_B = RouteSpec("B", ((24.0, 38.0), (24.5, 38.0)), speed_mps=10.0)


def voyage(entity, route, start=0.0):
    return simulate_route(entity, route, start_time=start, dt_s=10.0)


class TestSameRoute:
    def test_same_lane_links(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V2", ROUTE_A, start=5_000.0)  # hours apart, same lane
        links = same_route_links([a, b])
        assert len(links) == 1
        assert links[0].relation == "same_route"
        assert (links[0].source_id, links[0].target_id) == ("V1", "V2")

    def test_different_lanes_do_not_link(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V2", ROUTE_B)
        assert same_route_links([a, b]) == []

    def test_reciprocal_direction_does_not_link(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V2", ROUTE_A.reversed())
        assert same_route_links([a, b], max_shape_distance_m=5_000.0) == []

    def test_same_entity_skipped(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V1", ROUTE_A, start=9_999.0)
        assert same_route_links([a, b]) == []


class TestCoMovement:
    def test_convoy_links(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V2", ROUTE_A, start=30.0)  # 300 m behind at 10 m/s
        links = co_movement_links([a, b], radius_m=2_000.0)
        assert len(links) == 1
        assert links[0].relation == "co_movement"
        assert links[0].score > 0.6

    def test_time_disjoint_voyages_do_not_link(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V2", ROUTE_A, start=a.end_time + 1_000.0)
        assert co_movement_links([a, b]) == []

    def test_same_lane_hours_apart_not_co_moving(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V2", ROUTE_A, start=3_000.0)
        links = co_movement_links([a, b], radius_m=2_000.0,
                                  min_overlap_fraction=0.6)
        assert links == []


class TestRdfLowering:
    def test_lowering(self):
        a = voyage("V1", ROUTE_A)
        b = voyage("V2", ROUTE_A, start=30.0)
        links = co_movement_links([a, b], radius_m=2_000.0)
        lowered = to_rdf_links(links)
        assert len(lowered) == 1
        assert lowered[0].relation is LinkRelation.NEAR

"""Trajectory weather enrichment."""

import pytest

from repro.geo.bbox import BBox
from repro.linkage.enrichment import enrich_trajectory, weather_exposure
from repro.model.trajectory import Trajectory
from repro.sources.weather import WeatherGridSource


@pytest.fixture()
def weather():
    return WeatherGridSource(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=8, ny=8)


def long_track(n=200):
    return Trajectory(
        "V1",
        [30.0 * i for i in range(n)],
        [23.0 + 0.01 * i for i in range(n)],
        [37.0] * n,
    )


class TestEnrichTrajectory:
    def test_samples_cover_track(self, weather):
        track = long_track()
        samples = enrich_trajectory(track, weather, sample_period_s=300.0)
        assert samples
        assert samples[0].t == track.start_time
        assert samples[-1].t == track.end_time
        # 300 s sampling over ~5970 s ≈ 21 samples.
        assert 15 <= len(samples) <= 25

    def test_weather_matches_direct_lookup(self, weather):
        track = long_track()
        samples = enrich_trajectory(track, weather)
        mid = samples[len(samples) // 2]
        direct = weather.observation_at(mid.lon, mid.lat, mid.t)
        assert mid.weather == direct

    def test_short_track_not_resampled(self, weather):
        dot = Trajectory("V1", [0.0, 10.0], [23.0, 23.001], [37.0, 37.0])
        samples = enrich_trajectory(dot, weather)
        assert len(samples) == 2

    def test_empty_track(self, weather):
        assert enrich_trajectory(Trajectory("V1", [], [], []), weather) == []


class TestWeatherExposure:
    def test_summary_statistics(self, weather):
        samples = enrich_trajectory(long_track(), weather)
        exposure = weather_exposure(samples)
        assert exposure.n_samples == len(samples)
        assert 0.0 <= exposure.mean_wind_mps <= exposure.max_wind_mps
        assert 0.0 <= exposure.mean_wave_m <= exposure.max_wave_m
        assert 0.0 <= exposure.rough_fraction <= 1.0

    def test_rough_threshold_monotone(self, weather):
        samples = enrich_trajectory(long_track(), weather)
        lenient = weather_exposure(samples, rough_wave_m=0.0).rough_fraction
        strict = weather_exposure(samples, rough_wave_m=10.0).rough_fraction
        assert lenient == 1.0
        assert strict <= lenient

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weather_exposure([])

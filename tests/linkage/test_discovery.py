"""Link discovery: blocked methods must match naive baselines exactly."""

import numpy as np
import pytest

from repro.geo.polygon import Polygon
from repro.linkage.discovery import (
    SpatialItem,
    items_from_reports,
    proximity_links_blocked,
    proximity_links_naive,
    weather_links,
    zone_links_blocked,
    zone_links_naive,
)
from repro.linkage.evaluation import score_links
from repro.linkage.relations import Link, LinkRelation
from repro.model.reports import PositionReport


def random_items(n=120, seed=0, spread=0.5):
    rng = np.random.default_rng(seed)
    return [
        SpatialItem(
            item_id=f"i{k}",
            entity_id=f"E{k % 15}",
            lon=24.0 + float(rng.uniform(-spread, spread)),
            lat=37.0 + float(rng.uniform(-spread, spread)),
            t=float(rng.uniform(0, 1800)),
        )
        for k in range(n)
    ]


class TestItemsFromReports:
    def test_wrapping(self):
        reports = [PositionReport(entity_id="V1", t=10.0, lon=24.0, lat=37.0)]
        (item,) = items_from_reports(reports)
        assert item.entity_id == "V1"
        assert item.item_id == "V1@10.000"


class TestProximity:
    def test_same_entity_never_linked(self):
        items = [
            SpatialItem("a", "E1", 24.0, 37.0, 0.0),
            SpatialItem("b", "E1", 24.0, 37.0, 1.0),
        ]
        links, __ = proximity_links_naive(items, 1000.0, 60.0)
        assert links == []

    def test_temporal_window_respected(self):
        items = [
            SpatialItem("a", "E1", 24.0, 37.0, 0.0),
            SpatialItem("b", "E2", 24.0, 37.0, 1000.0),
        ]
        links, __ = proximity_links_naive(items, 1000.0, 60.0)
        assert links == []
        links, __ = proximity_links_naive(items, 1000.0, 2000.0)
        assert len(links) == 1

    def test_distance_threshold_respected(self):
        items = [
            SpatialItem("a", "E1", 24.0, 37.0, 0.0),
            SpatialItem("b", "E2", 24.05, 37.0, 0.0),  # ~4.4 km
        ]
        links, __ = proximity_links_naive(items, 1000.0, 60.0)
        assert links == []
        links, __ = proximity_links_naive(items, 5000.0, 60.0)
        assert len(links) == 1
        assert links[0].value == pytest.approx(4430, rel=0.05)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_blocked_equals_naive(self, seed):
        items = random_items(seed=seed)
        naive, n_naive = proximity_links_naive(items, 3000.0, 120.0)
        blocked, n_blocked = proximity_links_blocked(items, 3000.0, 120.0)
        score = score_links(blocked, naive, n_blocked, n_naive)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_blocking_prunes(self):
        items = random_items(n=200, spread=1.5)
        __, n_naive = proximity_links_naive(items, 2000.0, 60.0)
        __, n_blocked = proximity_links_blocked(items, 2000.0, 60.0)
        assert n_blocked < n_naive * 0.5

    def test_canonical_symmetric(self):
        a = Link("x", "y", LinkRelation.NEAR, 5.0)
        b = Link("y", "x", LinkRelation.NEAR, 5.0)
        assert a.canonical() == b.canonical()

    def test_empty_input(self):
        assert proximity_links_blocked([], 1000.0, 60.0) == ([], 0)


class TestZones:
    ZONES = [
        Polygon("inner", ((23.9, 36.9), (24.1, 36.9), (24.1, 37.1), (23.9, 37.1))),
        Polygon("far", ((30.0, 40.0), (30.5, 40.0), (30.5, 40.5), (30.0, 40.5))),
    ]

    def test_containment_found(self):
        items = [SpatialItem("a", "E1", 24.0, 37.0, 0.0)]
        links, __ = zone_links_naive(items, self.ZONES)
        assert [l.target_id for l in links] == ["inner"]

    def test_blocked_equals_naive(self):
        items = random_items(n=150)
        naive, n_naive = zone_links_naive(items, self.ZONES)
        blocked, n_blocked = zone_links_blocked(items, self.ZONES)
        score = score_links(blocked, naive, n_blocked, n_naive)
        assert score.precision == 1.0 and score.recall == 1.0
        assert n_blocked < n_naive


class TestWeather:
    def test_every_item_gets_exactly_one_link(self, maritime_sample):
        from repro.sources.weather import WeatherGridSource

        weather = WeatherGridSource(bbox=maritime_sample.world.bbox)
        items = items_from_reports(maritime_sample.reports[:50])
        links = weather_links(items, weather)
        assert len(links) == 50
        assert all(l.relation is LinkRelation.HAS_WEATHER for l in links)

    def test_link_matches_lookup(self, maritime_sample):
        from repro.sources.weather import WeatherGridSource

        weather = WeatherGridSource(bbox=maritime_sample.world.bbox)
        item = items_from_reports(maritime_sample.reports[:1])[0]
        (link,) = weather_links([item], weather)
        cell = weather.observation_at(item.lon, item.lat, item.t)
        assert link.target_id == f"weather/{cell.cell_id}/{cell.t_start:.0f}"

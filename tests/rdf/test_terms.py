"""RDF terms, triples and namespaces."""

import pytest

from repro.rdf.terms import IRI, BlankNode, Literal, Namespace, Triple


class TestTerms:
    def test_iri_str(self):
        assert str(IRI("http://x#a")) == "<http://x#a>"

    def test_empty_iri_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_literal_plain(self):
        assert str(Literal("hello")) == '"hello"'

    def test_literal_typed(self):
        lit = Literal(3.5, "http://www.w3.org/2001/XMLSchema#double")
        assert str(lit) == '"3.5"^^<http://www.w3.org/2001/XMLSchema#double>'

    def test_literal_escaping(self):
        lit = Literal('say "hi"\nplease')
        assert str(lit) == '"say \\"hi\\"\\nplease"'

    def test_literal_boolean_lexical(self):
        assert str(Literal(True)) == '"true"'

    def test_blank_node(self):
        assert str(BlankNode("b1")) == "_:b1"
        with pytest.raises(ValueError):
            BlankNode("")

    def test_terms_hashable(self):
        assert len({IRI("a"), IRI("a"), Literal(1), Literal(1)}) == 2


class TestTriple:
    def test_str_form(self):
        t = Triple(IRI("s"), IRI("p"), Literal("o"))
        assert str(t) == '<s> <p> "o" .'

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("x"), IRI("p"), IRI("o"))

    def test_non_iri_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("s"), BlankNode("b"), IRI("o"))

    def test_blank_subject_allowed(self):
        Triple(BlankNode("b"), IRI("p"), IRI("o"))


class TestNamespace:
    def test_attribute_and_item_access(self):
        ns = Namespace("http://x#")
        assert ns.Thing == IRI("http://x#Thing")
        assert ns["Thing"] == ns.Thing

    def test_contains_and_local(self):
        ns = Namespace("http://x#")
        iri = ns.Vessel
        assert iri in ns
        assert ns.local(iri) == "Vessel"
        assert IRI("http://other#y") not in ns
        with pytest.raises(ValueError):
            ns.local(IRI("http://other#y"))

    def test_underscore_attribute_raises(self):
        ns = Namespace("http://x#")
        with pytest.raises(AttributeError):
            __ = ns._private

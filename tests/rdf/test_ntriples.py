"""N-Triples serialization round trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import vocabulary as V
from repro.rdf.ntriples import parse_ntriples, to_ntriples
from repro.rdf.terms import IRI, BlankNode, Literal, Triple


def safe_text():
    return st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=' _-."\\'
        ),
        min_size=0,
        max_size=30,
    )


class TestRoundTrip:
    def test_basic(self):
        triples = [
            Triple(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o")),
            Triple(IRI("http://x/s"), IRI("http://x/q"), Literal("plain")),
            Triple(BlankNode("b1"), IRI("http://x/p"), Literal(3.5, V.XSD_DOUBLE)),
            Triple(IRI("http://x/s"), IRI("http://x/n"), Literal(42, V.XSD_LONG)),
            Triple(IRI("http://x/s"), IRI("http://x/b"), Literal(True, V.XSD_BOOLEAN)),
        ]
        text = to_ntriples(triples)
        assert list(parse_ntriples(text)) == triples

    def test_datatype_revival(self):
        text = to_ntriples([Triple(IRI("s"), IRI("p"), Literal(7, V.XSD_LONG))])
        (back,) = parse_ntriples(text)
        assert isinstance(back.o.value, int)

    def test_escaped_quotes_and_newlines(self):
        lit = Literal('line1\nwith "quotes"', V.XSD_STRING)
        text = to_ntriples([Triple(IRI("s"), IRI("p"), lit)])
        (back,) = parse_ntriples(text)
        assert back.o.value == 'line1\nwith "quotes"'

    @given(value=safe_text())
    @settings(max_examples=100, deadline=None)
    def test_string_literal_roundtrip(self, value):
        triple = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal(value, V.XSD_STRING))
        (back,) = parse_ntriples(to_ntriples([triple]))
        assert back.o.value == value

    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_double_literal_roundtrip(self, value):
        triple = Triple(IRI("s"), IRI("p"), Literal(value, V.XSD_DOUBLE))
        (back,) = parse_ntriples(to_ntriples([triple]))
        assert back.o.value == pytest.approx(value, rel=1e-12)


class TestParserRobustness:
    def test_blank_lines_and_comments_skipped(self):
        text = '\n# a comment\n<s> <p> <o> .\n\n'
        assert len(list(parse_ntriples(text))) == 1

    def test_garbage_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            list(parse_ntriples("<s> <p> <o> .\nnot a triple\n"))

    def test_real_transformer_output_parses(self):
        from repro.model.reports import PositionReport
        from repro.rdf.transform import RdfTransformer

        transformer = RdfTransformer()
        triples = transformer.report_to_triples(
            PositionReport(entity_id="V1", t=10.0, lon=24.0, lat=37.0, speed=5.0)
        )
        assert list(parse_ntriples(to_ntriples(triples))) == triples

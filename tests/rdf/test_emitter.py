"""Compiled id-level emitter: round-trip equivalence with the transformer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.insitu.critical import AnnotatedReport, CriticalPointType
from repro.model.reports import Domain, PositionReport, ReportSource
from repro.rdf import vocabulary as V
from repro.rdf.emitter import CompiledReportEmitter
from repro.rdf.terms import Triple
from repro.rdf.transform import RdfTransformer
from repro.store.dictionary import TermDictionary
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import GridPartitioner, HashPartitioner

WORLD = BBox(22.0, 35.0, 29.0, 41.0)


def make_grid():
    return GeoGrid(bbox=WORLD, nx=16, ny=16)


def make_emitter(st_grid="default", time_bucket_s=3600.0):
    grid = make_grid() if st_grid == "default" else st_grid
    transformer = RdfTransformer(st_grid=grid, time_bucket_s=time_bucket_s)
    dictionary = TermDictionary()
    emitter = CompiledReportEmitter(transformer, dictionary)
    return transformer, dictionary, emitter


# Optional fields cycle through present/absent; t is bounded so the
# vectorised key kernel stays on its fast path (the overflow fallback has
# its own test below). Coordinates deliberately overshoot the grid bbox on
# both sides to probe the clamping branches.
def report_strategy():
    return st.builds(
        lambda e, t, lon, lat, alt, speed, heading, vrate, src, dom: PositionReport(
            entity_id=f"V{e}",
            t=t,
            lon=lon,
            lat=lat,
            alt=alt,
            speed=speed,
            heading=heading,
            vertical_rate=vrate,
            source=src,
            domain=dom,
        ),
        e=st.integers(0, 4),
        t=st.floats(-1e6, 1e9, allow_nan=False),
        lon=st.floats(20.0, 31.0, allow_nan=False),
        lat=st.floats(33.0, 43.0, allow_nan=False),
        alt=st.none() | st.floats(0.0, 12_000.0, allow_nan=False),
        speed=st.none() | st.floats(0.0, 300.0, allow_nan=False),
        heading=st.none() | st.floats(0.0, 359.99, allow_nan=False),
        vrate=st.none() | st.floats(-50.0, 50.0, allow_nan=False),
        src=st.sampled_from(list(ReportSource)),
        dom=st.sampled_from(list(Domain)),
    )


def item_strategy():
    """A report, possibly annotated with critical-point types."""
    critical = st.lists(
        st.sampled_from(list(CriticalPointType)), max_size=3, unique=True
    )
    return report_strategy() | st.builds(
        lambda r, c: AnnotatedReport(report=r, critical=tuple(c)),
        r=report_strategy(),
        c=critical,
    )


def decoded(dictionary, ids):
    decode = dictionary.decode
    return [Triple(decode(s), decode(p), decode(o)) for s, p, o in ids]


def emit_decoded(transformer, dictionary, emitter, item):
    report = item.report if isinstance(item, AnnotatedReport) else item
    keys = emitter.st_keys(
        np.array([report.lon]), np.array([report.lat]), np.array([report.t])
    )
    key = int(keys[0]) if keys is not None else None
    __, ids = emitter.emit_ids(item, key)
    return decoded(dictionary, ids)


class TestRoundTrip:
    """Decoded compiled output == report_to_triples, triple for triple."""

    @given(items=st.lists(item_strategy(), min_size=1, max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_decoded_equals_transformer(self, items):
        transformer, dictionary, emitter = make_emitter()
        assert emitter.engaged
        for item in items:
            expected = transformer.report_to_triples(item)
            assert emit_decoded(transformer, dictionary, emitter, item) == expected

    @given(items=st.lists(item_strategy(), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_decoded_equals_transformer_without_grid(self, items):
        # The E8 ablation: no grid, no st-key triples.
        transformer, dictionary, emitter = make_emitter(st_grid=None)
        assert emitter.engaged
        assert emitter.st_keys(np.zeros(1), np.zeros(1), np.zeros(1)) is None
        for item in items:
            expected = transformer.report_to_triples(item)
            assert all(t.p != V.PROP_ST_KEY for t in expected)
            assert emit_decoded(transformer, dictionary, emitter, item) == expected

    def test_duplicate_reports_reuse_interned_ids(self):
        transformer, dictionary, emitter = make_emitter()
        report = PositionReport(entity_id="V1", t=60.0, lon=24.0, lat=37.0)
        keys = emitter.st_keys(
            np.array([report.lon]), np.array([report.lat]), np.array([report.t])
        )
        first = emitter.emit_ids(report, int(keys[0]))
        second = emitter.emit_ids(report, int(keys[0]))
        assert first == second


class TestStKeys:
    """The vectorised key kernel against the scalar st_key."""

    @given(
        lon=st.lists(st.floats(20.0, 31.0, allow_nan=False), min_size=1, max_size=64),
        t=st.floats(-1e9, 1e9, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar(self, lon, t):
        transformer, __, emitter = make_emitter()
        lons = np.array(lon)
        lats = np.linspace(33.0, 43.0, len(lon))
        ts = np.linspace(t, t + 7200.0, len(lon))
        keys = emitter.st_keys(lons, lats, ts)
        expected = [
            transformer.st_key(float(x), float(y), float(tt))
            for x, y, tt in zip(lons, lats, ts)
        ]
        assert keys.tolist() == expected

    def test_overflow_quotient_falls_back_to_scalar(self):
        # |t // bucket| >= 2**62 cannot round-trip through int64; the
        # kernel must replay through the scalar path (Python ints).
        transformer, __, emitter = make_emitter(time_bucket_s=1e-3)
        t = 2.0**63
        keys = emitter.st_keys(np.array([24.0]), np.array([37.0]), np.array([t]))
        assert int(keys[0]) == transformer.st_key(24.0, 37.0, t)


class TestProbeVerification:
    """A transformer shape change must demote the emitter, never diverge."""

    def test_lying_transformer_refuses_to_engage(self):
        class ReorderedTransformer(RdfTransformer):
            def report_to_triples(self, item):
                return list(reversed(super().report_to_triples(item)))

        transformer = ReorderedTransformer(st_grid=make_grid())
        emitter = CompiledReportEmitter(transformer, TermDictionary())
        assert not emitter.engaged
        with pytest.raises(RuntimeError):
            emitter.emit_ids(PositionReport(entity_id="V1", t=0.0, lon=24.0, lat=37.0), None)
        with pytest.raises(RuntimeError):
            emitter.zone_id("z")

    def test_extra_triple_refuses_to_engage(self):
        class PaddedTransformer(RdfTransformer):
            def report_to_triples(self, item):
                triples = super().report_to_triples(item)
                return triples + [Triple(triples[0].s, V.PROP_NAME, triples[0].o)]

        emitter = CompiledReportEmitter(
            PaddedTransformer(st_grid=make_grid()), TermDictionary()
        )
        assert not emitter.engaged

    def test_probe_failure_leaves_store_dictionary_untouched(self):
        class ReorderedTransformer(RdfTransformer):
            def report_to_triples(self, item):
                return list(reversed(super().report_to_triples(item)))

        dictionary = TermDictionary()
        CompiledReportEmitter(ReorderedTransformer(st_grid=make_grid()), dictionary)
        # Verification runs on scratch dictionaries only.
        assert len(dictionary) == 0

    def test_healthy_transformer_engages(self):
        __, __, emitter = make_emitter()
        assert emitter.engaged


def all_triples(store):
    found = []
    for partition in store.partitions:
        for s, p, o in partition.match(None, None, None):
            found.append(
                Triple(
                    store.dictionary.decode(s),
                    store.dictionary.decode(p),
                    store.dictionary.decode(o),
                )
            )
    return found


class TestStoreRouting:
    """add_id_documents mirrors add_documents: placement, pruning, contents."""

    @given(reports=st.lists(report_strategy(), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_routing_equivalent_to_object_path(self, reports):
        # Per-partition placement is only comparable across stores for a
        # key-routed partitioner: hash routing keys on the subject's
        # *dictionary id*, and the emitter's pre-bound constants shift id
        # assignment, so hash stores compare as whole-store multisets.
        grid = make_grid()
        for make_part, per_partition in (
            (lambda: GridPartitioner(grid, 4), True),
            (lambda: HashPartitioner(4), False),
        ):
            obj_store = ParallelRDFStore(make_part())
            id_store = ParallelRDFStore(make_part())
            transformer = RdfTransformer(st_grid=grid)
            emitter = CompiledReportEmitter(transformer, id_store.dictionary)
            assert emitter.engaged

            obj_store.add_documents(
                [transformer.report_to_triples(r) for r in reports]
            )
            docs = []
            for r in reports:
                keys = emitter.st_keys(
                    np.array([r.lon]), np.array([r.lat]), np.array([r.t])
                )
                sid, ids = emitter.emit_ids(r, int(keys[0]))
                docs.append((sid, ids, int(keys[0]), True))
            id_store.add_id_documents(docs)

            assert len(obj_store) == len(id_store)
            if per_partition:
                for i in range(obj_store.n_partitions):
                    assert sorted(map(repr, all_triples_of(obj_store, i))) == sorted(
                        map(repr, all_triples_of(id_store, i))
                    )
            else:
                assert sorted(map(repr, all_triples(obj_store))) == sorted(
                    map(repr, all_triples(id_store))
                )
            assert (
                obj_store._spatial_pruning_sound == id_store._spatial_pruning_sound
            )

    def test_keyless_position_doc_voids_pruning(self):
        grid = make_grid()
        store = ParallelRDFStore(GridPartitioner(grid, 4))
        transformer = RdfTransformer(st_grid=grid)
        emitter = CompiledReportEmitter(transformer, store.dictionary)
        report = PositionReport(entity_id="V1", t=0.0, lon=24.0, lat=37.0)
        sid, ids = emitter.emit_ids(report, None)
        assert store._spatial_pruning_sound
        store.add_id_documents([(sid, ids, None, True)])
        assert not store._spatial_pruning_sound

    def test_keyless_non_position_doc_keeps_pruning(self):
        grid = make_grid()
        store = ParallelRDFStore(GridPartitioner(grid, 4))
        transformer = RdfTransformer(st_grid=grid)
        emitter = CompiledReportEmitter(transformer, store.dictionary)
        sid = store.dictionary.encode(V.CLASS_ZONE)
        link = (sid, emitter.prop_within_zone_id, emitter.zone_id("z1"))
        store.add_id_documents([(sid, [link], None, False)])
        assert store._spatial_pruning_sound

    def test_empty_id_document_rejected(self):
        store = ParallelRDFStore(HashPartitioner(2))
        with pytest.raises(ValueError):
            store.add_id_documents([(1, [], None, False)])


def all_triples_of(store, partition_idx):
    decode = store.dictionary.decode
    return [
        Triple(decode(s), decode(p), decode(o))
        for s, p, o in store.partitions[partition_idx].match(None, None, None)
    ]

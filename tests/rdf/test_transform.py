"""Record → triples transformers and the position round trip."""

import pytest

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.insitu.critical import AnnotatedReport, CriticalPointType
from repro.model.entities import Aircraft, Vessel
from repro.model.events import ComplexEvent, EventSeverity, SimpleEvent
from repro.model.reports import PositionReport, ReportSource
from repro.rdf import vocabulary as V
from repro.rdf.terms import Literal
from repro.rdf.transform import (
    RdfTransformer,
    entity_iri,
    parse_position_node,
    position_node_iri,
)
from repro.sources.weather import WeatherGridSource


@pytest.fixture()
def grid():
    return GeoGrid(bbox=BBox(22.0, 35.0, 29.0, 41.0), nx=16, ny=16)


@pytest.fixture()
def transformer(grid):
    return RdfTransformer(st_grid=grid, time_bucket_s=3600.0)


def sample_report(**kwargs):
    defaults = dict(
        entity_id="V1", t=120.5, lon=24.1, lat=37.2, speed=8.2, heading=45.0,
        source=ReportSource.AIS_TERRESTRIAL,
    )
    defaults.update(kwargs)
    return PositionReport(**defaults)


class TestStKey:
    def test_roundtrip(self, transformer):
        key = transformer.st_key(24.1, 37.2, 7250.0)
        cell, bucket = transformer.decode_st_key(key)
        assert cell == transformer.st_grid.cell_id(24.1, 37.2)
        assert bucket == 2

    def test_requires_grid(self):
        bare = RdfTransformer(st_grid=None)
        with pytest.raises(ValueError):
            bare.st_key(24.0, 37.0, 0.0)

    def test_invalid_bucket_width(self, grid):
        with pytest.raises(ValueError):
            RdfTransformer(st_grid=grid, time_bucket_s=0.0)


class TestReportTransform:
    def test_core_triples_present(self, transformer):
        triples = transformer.report_to_triples(sample_report())
        preds = {t.p for t in triples}
        assert {V.PROP_TYPE, V.PROP_LON, V.PROP_LAT, V.PROP_TIMESTAMP,
                V.PROP_OF_MOVING_OBJECT, V.PROP_ST_KEY} <= preds

    def test_one_subject_per_document(self, transformer):
        triples = transformer.report_to_triples(sample_report())
        assert len({t.s for t in triples}) == 1
        assert triples[0].s == position_node_iri("V1", 120.5)

    def test_no_st_key_without_grid(self):
        bare = RdfTransformer(st_grid=None)
        triples = bare.report_to_triples(sample_report())
        assert all(t.p != V.PROP_ST_KEY for t in triples)

    def test_annotated_report_carries_node_types(self, transformer):
        annotated = AnnotatedReport(
            report=sample_report(),
            critical=(CriticalPointType.TURN, CriticalPointType.STOP_START),
        )
        triples = transformer.report_to_triples(annotated)
        node_types = {t.o.value for t in triples if t.p == V.PROP_NODE_TYPE}
        assert node_types == {"turn", "stop_start"}

    def test_3d_report_has_altitude(self, transformer):
        triples = transformer.report_to_triples(sample_report(alt=9800.0))
        alts = [t for t in triples if t.p == V.PROP_ALT]
        assert len(alts) == 1
        assert alts[0].o.value == pytest.approx(9800.0)

    def test_roundtrip_parse(self, transformer):
        report = sample_report(alt=500.0, vertical_rate=3.0)
        back = parse_position_node(transformer.report_to_triples(report))
        assert back.entity_id == report.entity_id
        assert back.t == report.t
        assert back.lon == pytest.approx(report.lon)
        assert back.lat == pytest.approx(report.lat)
        assert back.alt == pytest.approx(500.0)
        assert back.speed == pytest.approx(report.speed)
        assert back.source is ReportSource.AIS_TERRESTRIAL

    def test_parse_rejects_non_node(self, transformer):
        entity_doc = transformer.entity_to_triples(Vessel("V1", "x"))
        with pytest.raises(ValueError):
            parse_position_node(entity_doc)


class TestEntityAndZoneTransform:
    def test_vessel_class(self, transformer):
        triples = transformer.entity_to_triples(Vessel("V1", "MV Alpha"))
        types = [t.o for t in triples if t.p == V.PROP_TYPE]
        assert types == [V.CLASS_VESSEL]

    def test_aircraft_class(self, transformer):
        triples = transformer.entity_to_triples(Aircraft("F1", "FLT1"))
        types = [t.o for t in triples if t.p == V.PROP_TYPE]
        assert types == [V.CLASS_AIRCRAFT]

    def test_zone_document(self, transformer):
        zone = Polygon("z1", ((24.0, 37.0), (25.0, 37.0), (25.0, 38.0)))
        triples = transformer.zone_to_triples(zone)
        assert any(t.o == V.CLASS_ZONE for t in triples)
        names = [t.o.value for t in triples if t.p == V.PROP_NAME]
        assert names == ["z1"]


class TestEventTransform:
    def test_simple_event(self, transformer):
        event = SimpleEvent("zone_entry", "V1", 100.0, 24.0, 37.0,
                            severity=EventSeverity.WARNING)
        triples = transformer.event_to_triples(event)
        assert any(t.p == V.PROP_EVENT_TYPE and t.o.value == "zone_entry" for t in triples)
        assert any(t.p == V.PROP_INVOLVES and t.o == entity_iri("V1") for t in triples)
        assert any(t.p == V.PROP_ST_KEY for t in triples)

    def test_complex_event_involves_all(self, transformer):
        event = ComplexEvent("collision_risk", ("V1", "V2"), 10.0, 20.0)
        triples = transformer.event_to_triples(event)
        involved = {t.o for t in triples if t.p == V.PROP_INVOLVES}
        assert involved == {entity_iri("V1"), entity_iri("V2")}


class TestWeatherTransform:
    def test_weather_document(self, transformer, grid):
        source = WeatherGridSource(bbox=grid.bbox, nx=4, ny=4)
        cell = source.observation_at(24.0, 37.0, 0.0)
        triples = transformer.weather_to_triples(cell)
        assert any(t.o == V.CLASS_WEATHER_CONDITION for t in triples)
        winds = [t.o.value for t in triples if t.p == V.PROP_WIND_SPEED]
        assert winds == [pytest.approx(cell.wind_speed_mps)]

"""The repro.streams.metrics import shim warns but keeps working."""

import warnings

import pytest


class TestShim:
    def test_moved_names_warn_and_resolve_to_obs_classes(self):
        import repro.obs
        import repro.streams.metrics as shim

        for name in ("Counter", "Gauge", "LatencyHistogram", "OperatorMetrics"):
            with pytest.warns(DeprecationWarning, match=f"repro.obs.{name}"):
                moved = getattr(shim, name)
            assert moved is getattr(repro.obs, name)

    def test_unknown_attribute_still_raises(self):
        import repro.streams.metrics as shim

        with pytest.raises(AttributeError):
            shim.DoesNotExist

    def test_internal_streams_imports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import importlib

            import repro.streams
            import repro.streams.topology

            importlib.reload(repro.streams.topology)

    def test_shimmed_counter_is_functional(self):
        with pytest.warns(DeprecationWarning):
            from repro.streams.metrics import Counter
        c = Counter()
        c.inc(2)
        assert c.value == 2

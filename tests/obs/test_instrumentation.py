"""One registry sees every tier: pipeline, streams, store, chaos."""

import random

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MobilityPipeline
from repro.geo.bbox import BBox
from repro.model.reports import PositionReport
from repro.obs import DEFAULT_E2_BUDGETS, MetricsRegistry, SLOChecker
from repro.streams.chaos import RetryingOperator, TransientFaultInjector
from repro.streams.operators import CollectSink, MapOperator
from repro.streams.topology import StreamRunner, Topology

BBOX = BBox(-2.0, 49.0, 2.0, 52.0)


def make_reports(n=150, n_entities=5, seed=42):
    rng = random.Random(seed)
    return [
        PositionReport(
            entity_id=f"v{i % n_entities}",
            t=1000.0 + i * 10.0,
            lon=rng.uniform(-1.0, 1.0),
            lat=rng.uniform(50.0, 51.0),
            speed=rng.uniform(0.0, 10.0),
        )
        for i in range(n)
    ]


@pytest.fixture()
def run():
    metrics = MetricsRegistry(seed=1)
    pipeline = MobilityPipeline(
        BBOX, config=PipelineConfig(trace_every_n=10), metrics=metrics
    )
    result = pipeline.run(make_reports())
    return metrics, pipeline, result


class TestPipelineInstrumentation:
    def test_stage_histograms_cover_every_report(self, run):
        metrics, _, result = run
        # Clean sees every raw report; synopses every clean one; the
        # persistence/analytics stages run for each kept report.
        assert metrics.histogram("pipeline.clean").count == result.reports_in
        assert metrics.histogram("pipeline.synopses").count == result.reports_clean
        for stage in ("rdf", "events", "detectors"):
            assert metrics.histogram(f"pipeline.{stage}").count == result.reports_kept
        assert metrics.histogram("pipeline.end_to_end").count == result.reports_in

    def test_cross_tier_metrics_land_on_one_registry(self, run):
        metrics, _, result = run
        counters = metrics.counters()
        assert counters["insitu.synopses.seen"] == result.reports_clean
        assert counters["store.documents"] > 0
        assert counters["store.triples"] == result.triples_stored
        assert metrics.histogram("store.add_document").count > 0

    def test_sampled_trace_builds_record_trees(self, run):
        metrics, _, result = run
        roots = [s for s in metrics.tracer.roots() if s.name == "pipeline.record"]
        # Every 10th record is traced.
        assert len(roots) == result.reports_in // 10 + (1 if result.reports_in % 10 else 0)
        child_names = {s.name for s in metrics.tracer.children_of(roots[0].span_id)}
        assert "pipeline.clean" in child_names
        assert "pipeline.synopses" in child_names

    def test_result_carries_registry_snapshot(self, run):
        metrics, _, result = run
        assert result.metrics["counters"] == metrics.counters()
        assert result.as_dict()["kind"] == "pipeline"
        assert set(result.as_dict()) == {"kind", "summary", "metrics"}
        summary = result.summary()
        assert summary["reports_in"] == float(result.reports_in)
        assert "end_to_end_p99_ms" in summary

    def test_default_slo_budgets_hold_on_the_reference_run(self, run):
        metrics, _, _ = run
        SLOChecker(DEFAULT_E2_BUDGETS).assert_ok(metrics)

    def test_throughput_gauge_set(self, run):
        metrics, _, result = run
        assert metrics.gauges()["pipeline.throughput_rps"] == pytest.approx(
            result.throughput_rps
        )


class TestTracingModes:
    def test_tracing_disabled_by_zero_sampling(self):
        metrics = MetricsRegistry(seed=1)
        pipeline = MobilityPipeline(
            BBOX, config=PipelineConfig(trace_every_n=0), metrics=metrics
        )
        result = pipeline.run(make_reports(n=40))
        assert not any(s.name == "pipeline.record" for s in metrics.spans)
        # Histograms stay on regardless of span sampling.
        assert metrics.histogram("pipeline.end_to_end").count == result.reports_in

    def test_disabled_registry_records_nothing(self):
        metrics = MetricsRegistry(enabled=False)
        pipeline = MobilityPipeline(BBOX, metrics=metrics)
        result = pipeline.run(make_reports(n=40))
        assert result.reports_in == 40
        assert metrics.counters() == {}
        assert metrics.spans == ()
        assert result.metrics == {}

    def test_default_pipeline_is_instrumented(self):
        pipeline = MobilityPipeline(BBOX)
        result = pipeline.run(make_reports(n=30))
        assert pipeline.metrics.enabled
        assert result.metrics["counters"]["insitu.synopses.seen"] > 0


class TestCheckpointSharing:
    def test_snapshot_restore_preserves_registry_identity(self):
        metrics = MetricsRegistry(seed=1)
        pipeline = MobilityPipeline(BBOX, metrics=metrics)
        reports = make_reports(n=60)
        for r in reports[:30]:
            pipeline.process_report(r)
        state = pipeline.snapshot()
        for r in reports[30:]:
            pipeline.process_report(r)
        pipeline.restore(state)
        # The restored registry is one shared object again: the store and
        # executor must write into pipeline.metrics, not a detached copy.
        assert pipeline.store.metrics is pipeline.metrics
        assert pipeline.executor.metrics is pipeline.metrics
        assert pipeline.metrics.histogram("pipeline.end_to_end").count == 30


class TestStreamsInstrumentation:
    def test_runner_absorbs_operator_metrics(self):
        metrics = MetricsRegistry(seed=2)
        topo = Topology()
        head = topo.add_source_stage(MapOperator(lambda x: x * 2, name="double"))
        sink = CollectSink()
        topo.chain(head, sink)
        StreamRunner(topo, track_latency=True, metrics=metrics).run_values(
            [(float(i), i) for i in range(20)]
        )
        counters = metrics.counters()
        assert counters["streams.double.records_in"] == 20
        assert counters["streams.double.records_out"] == 20
        assert metrics.histogram("streams.double.latency").count == 20
        assert any(s.name == "streams.run" for s in metrics.spans)

    def test_chaos_counters(self):
        metrics = MetricsRegistry(seed=3)
        flaky = RetryingOperator(
            MapOperator(lambda x: x, name="inner"),
            injector=TransientFaultInjector(fail_prob=0.3, seed=13),
            name="flaky",
            metrics=metrics,
        )
        topo = Topology()
        head = topo.add_source_stage(flaky)
        topo.chain(head, CollectSink())
        StreamRunner(topo).run_values([(float(i), i) for i in range(200)])
        counters = metrics.counters()
        assert counters.get("chaos.flaky.failures", 0) > 0
        assert counters.get("chaos.flaky.recovered", 0) > 0

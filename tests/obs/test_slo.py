"""Latency-SLO gating against the registry."""

import pytest

from repro.obs import (
    DEFAULT_E2_BUDGETS,
    MetricsRegistry,
    SLOBudget,
    SLOChecker,
    SLOViolationError,
)


def registry_with(name, samples_ms):
    r = MetricsRegistry(seed=5)
    h = r.histogram(name)
    for ms in samples_ms:
        h.record(ms / 1000.0)
    return r


class TestCheck:
    def test_compliant_registry_has_no_violations(self):
        r = registry_with("pipeline.end_to_end", [1.0] * 100)
        checker = SLOChecker([SLOBudget("pipeline.end_to_end", p50_ms=5.0, p99_ms=10.0)])
        assert checker.check(r) == []

    def test_exceeded_percentile_is_reported(self):
        r = registry_with("pipeline.end_to_end", [20.0] * 100)
        checker = SLOChecker([SLOBudget("pipeline.end_to_end", p50_ms=5.0)])
        (violation,) = checker.check(r)
        assert violation.metric == "pipeline.end_to_end"
        assert violation.percentile == "p50_ms"
        assert violation.observed_ms == pytest.approx(20.0)
        assert violation.budget_ms == 5.0
        assert "exceeds budget" in str(violation)

    def test_tail_only_breach(self):
        # p50 fine, p99 blown: 99 fast samples and a handful of slow ones.
        r = registry_with("op", [1.0] * 95 + [100.0] * 5)
        checker = SLOChecker([SLOBudget("op", p50_ms=5.0, p99_ms=50.0)])
        (violation,) = checker.check(r)
        assert violation.percentile == "p99_ms"

    def test_missing_required_metric_is_a_violation(self):
        r = MetricsRegistry()
        checker = SLOChecker([SLOBudget("never.recorded", p50_ms=1.0, required=True)])
        (violation,) = checker.check(r)
        assert violation.percentile == "missing"
        assert "missing" in str(violation)

    def test_missing_optional_metric_is_skipped(self):
        r = MetricsRegistry()
        checker = SLOChecker([SLOBudget("never.recorded", p50_ms=1.0)])
        assert checker.check(r) == []

    def test_none_caps_are_not_evaluated(self):
        r = registry_with("op", [100.0] * 10)
        checker = SLOChecker([SLOBudget("op", p99_ms=200.0)])  # no p50 cap
        assert checker.check(r) == []


class TestAssertOk:
    def test_raises_on_violation_and_is_assertion_error(self):
        r = registry_with("op", [100.0] * 10)
        checker = SLOChecker([SLOBudget("op", p50_ms=1.0)])
        with pytest.raises(AssertionError) as excinfo:
            checker.assert_ok(r)
        assert isinstance(excinfo.value, SLOViolationError)
        assert len(excinfo.value.violations) == 1

    def test_passes_silently_when_compliant(self):
        r = registry_with("op", [0.5] * 10)
        SLOChecker([SLOBudget("op", p50_ms=1.0)]).assert_ok(r)


class TestReport:
    def test_plain_data_shape(self):
        r = registry_with("op", [100.0] * 10)
        report = SLOChecker([SLOBudget("op", p50_ms=1.0)]).report(r)
        assert report["ok"] is False
        assert report["budgets"] == 1
        assert report["violations"][0]["metric"] == "op"

    def test_ok_report(self):
        r = registry_with("op", [0.5] * 10)
        report = SLOChecker([SLOBudget("op", p50_ms=1.0)]).report(r)
        assert report == {"budgets": 1, "violations": [], "ok": True}


class TestDefaultBudgets:
    def test_cover_every_pipeline_stage_and_end_to_end(self):
        metrics = {b.metric for b in DEFAULT_E2_BUDGETS}
        assert {
            "pipeline.clean",
            "pipeline.synopses",
            "pipeline.events",
            "pipeline.detectors",
            "pipeline.end_to_end",
        } <= metrics

    def test_end_to_end_budget_is_required(self):
        (e2e,) = [b for b in DEFAULT_E2_BUDGETS if b.metric == "pipeline.end_to_end"]
        assert e2e.required
        assert e2e.p99_ms is not None

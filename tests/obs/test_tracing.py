"""Hierarchical span tracing: nesting, ordering, bounded buffers."""

import pytest

from repro.obs import MetricsRegistry, Tracer


class TestNesting:
    def test_parent_child_links_and_depth(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                with t.span("grandchild"):
                    pass
        by_name = {s.name: s for s in t.spans}
        root, child, grand = by_name["root"], by_name["child"], by_name["grandchild"]
        assert root.parent_id is None and root.depth == 0
        assert child.parent_id == root.span_id and child.depth == 1
        assert grand.parent_id == child.span_id and grand.depth == 2

    def test_completion_order_children_before_parents(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        t = Tracer()
        with t.span("root") as root:
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        children = t.children_of(root.span_id)
        assert [s.name for s in children] == ["a", "b"]
        assert all(s.depth == 1 for s in children)

    def test_roots(self):
        t = Tracer()
        with t.span("first"):
            with t.span("nested"):
                pass
        with t.span("second"):
            pass
        assert [s.name for s in t.roots()] == ["first", "second"]

    def test_span_ids_are_unique_and_ordered(self):
        t = Tracer()
        for _ in range(5):
            with t.span("op"):
                pass
        ids = [s.span_id for s in t.spans]
        assert ids == sorted(ids) and len(set(ids)) == 5


class TestSpanData:
    def test_duration_is_positive_and_ms_property(self):
        t = Tracer()
        with t.span("timed"):
            sum(range(1000))
        (span,) = t.spans
        assert span.duration_s > 0
        assert span.duration_ms == pytest.approx(span.duration_s * 1000.0)

    def test_start_offsets_increase(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        a, b = t.spans
        assert b.start_s >= a.start_s >= 0.0

    def test_add_records(self):
        t = Tracer()
        with t.span("batch", records=2) as span:
            span.add_records(3)
        (record,) = t.spans
        assert record.records == 5


class TestBounds:
    def test_overflow_is_counted_not_silent(self):
        t = Tracer(max_spans=3)
        for _ in range(10):
            with t.span("op"):
                pass
        assert len(t.spans) == 3
        assert t.dropped == 7

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_reset_clears_everything(self):
        t = Tracer(max_spans=2)
        for _ in range(5):
            with t.span("op"):
                pass
        t.reset()
        assert t.spans == () and t.dropped == 0
        with t.span("fresh"):
            pass
        assert t.spans[0].span_id == 0


class TestRegistryIntegration:
    def test_registry_span_delegates_to_tracer(self):
        r = MetricsRegistry()
        with r.span("outer"):
            with r.span("inner"):
                pass
        assert [s.name for s in r.spans] == ["inner", "outer"]
        assert r.spans == r.tracer.spans

    def test_spans_do_not_touch_histograms(self):
        # Stage latencies are recorded explicitly; spans only trace.
        r = MetricsRegistry()
        with r.span("pipeline.clean"):
            pass
        assert list(r.histogram_names()) == []

"""Exporter round-trips: JSON-lines durability, prometheus text."""

import pytest

from repro.obs import (
    InMemoryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    PrometheusTextExporter,
)


@pytest.fixture()
def populated():
    r = MetricsRegistry(seed=11, max_samples=64)
    r.counter("store.documents").inc(42)
    r.gauge("pipeline.throughput_rps").set(1234.5)
    h = r.histogram("pipeline.end_to_end")
    for i in range(500):  # overflows the 64-slot reservoir
        h.record((i % 37 + 1) * 1e-4)
    with r.span("pipeline.record", records=1):
        with r.span("pipeline.clean"):
            pass
    return r


class TestJsonLines:
    def test_round_trip_identical_percentiles(self, populated, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        JsonLinesExporter().export(populated, path)
        reloaded = JsonLinesExporter().load(path)
        original = populated.histogram("pipeline.end_to_end")
        clone = reloaded.histogram("pipeline.end_to_end")
        assert clone.count == original.count
        assert clone.samples == original.samples
        for q in (50, 90, 95, 99, 99.9):
            assert clone.percentile_ms(q) == original.percentile_ms(q)

    def test_round_trip_counters_gauges_spans(self, populated, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        JsonLinesExporter().export(populated, path)
        reloaded = JsonLinesExporter().load(path)
        assert reloaded.counters() == populated.counters()
        assert reloaded.gauges() == populated.gauges()
        assert [s.name for s in reloaded.spans] == [s.name for s in populated.spans]
        assert [s.parent_id for s in reloaded.spans] == [
            s.parent_id for s in populated.spans
        ]

    def test_round_trip_preserves_seed_and_capacity(self, populated, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        JsonLinesExporter().export(populated, path)
        reloaded = JsonLinesExporter().load(path)
        assert reloaded.seed == populated.seed
        hist = reloaded.histogram("pipeline.end_to_end")
        assert hist.seed == populated.histogram("pipeline.end_to_end").seed

    def test_line_count_matches_contents(self, populated, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        n = JsonLinesExporter().export(populated, path)
        with open(path) as fh:
            assert sum(1 for _ in fh) == n
        # meta + 1 counter + 1 gauge + 1 histogram + 2 spans
        assert n == 6

    def test_unknown_line_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="mystery"):
            JsonLinesExporter().load(str(path))


class TestPrometheusText:
    def test_render_contains_all_instrument_kinds(self, populated):
        text = PrometheusTextExporter().render(populated)
        assert "# TYPE store_documents counter" in text
        assert "store_documents_total 42" in text
        assert "pipeline_throughput_rps 1234.5" in text
        assert 'pipeline_end_to_end_ms{quantile="0.99"}' in text
        assert "pipeline_end_to_end_ms_count 500" in text

    def test_dots_sanitized(self, populated):
        text = PrometheusTextExporter().render(populated)
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split(" ")[0].split("{")[0]

    def test_export_writes_file(self, populated, tmp_path):
        path = str(tmp_path / "metrics.prom")
        PrometheusTextExporter().export(populated, path)
        with open(path) as fh:
            assert fh.read() == PrometheusTextExporter().render(populated)


class TestInMemory:
    def test_retains_snapshots(self, populated):
        exporter = InMemoryExporter()
        snap = exporter.export(populated)
        assert exporter.snapshots == [snap]
        assert snap["counters"]["store.documents"] == 42

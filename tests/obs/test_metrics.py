"""The unified metrics registry: instruments, merging, disabled mode."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    NULL_SPAN,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    OperatorMetrics,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(7)
        a.merge(b)
        assert a.value == 10


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge()
        g.set(2.5)
        g.inc(-0.5)
        assert g.value == 2.0


class TestLatencyHistogram:
    def test_percentiles(self):
        h = LatencyHistogram()
        for i in range(1, 101):
            h.record(i / 1000.0)  # 1..100 ms
        assert h.count == 100
        assert h.percentile_ms(50) == pytest.approx(50.5)
        assert h.percentile_ms(99) == pytest.approx(99.01)
        assert h.mean_ms() == pytest.approx(50.5)

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile_ms(99) == 0.0

    def test_reservoir_bounds_memory_and_counts_all(self):
        h = LatencyHistogram(max_samples=50, seed=1)
        for i in range(1000):
            h.record(i / 1000.0)
        assert len(h.samples) == 50
        assert h.count == 1000

    def test_reservoir_is_seed_deterministic(self):
        def run(seed):
            h = LatencyHistogram(max_samples=32, seed=seed)
            for i in range(500):
                h.record(i * 1e-4)
            return h.samples

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_merge_unions_samples_and_counts(self):
        a = LatencyHistogram(seed=1)
        b = LatencyHistogram(seed=2)
        for i in range(10):
            a.record(0.001)
            b.record(0.003)
        a.merge(b)
        assert a.count == 20
        assert sorted(a.samples) == [0.001] * 10 + [0.003] * 10
        assert a.percentile_ms(50) == pytest.approx(2.0)

    def test_merge_preserves_total_count_past_reservoir(self):
        a = LatencyHistogram(max_samples=16, seed=1)
        b = LatencyHistogram(max_samples=16, seed=2)
        for i in range(100):
            b.record(i * 1e-4)
        a.merge(b)
        # b retained 16 samples but saw 100; the merged count keeps all.
        assert a.count == 100
        assert len(a.samples) == 16

    def test_from_samples_restores_reservoir_verbatim(self):
        h = LatencyHistogram(max_samples=8, seed=3)
        for i in range(50):
            h.record(i * 1e-3)
        clone = LatencyHistogram.from_samples(
            list(h.samples), count=h.count, max_samples=h.max_samples, seed=h.seed
        )
        assert clone.samples == h.samples
        assert clone.count == h.count
        for q in (50, 95, 99):
            assert clone.percentile_ms(q) == h.percentile_ms(q)


class TestRegistry:
    def test_get_or_create_caches_by_name(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")
        assert r.counter("a") is not r.counter("b")

    def test_histogram_seeds_derive_from_registry_seed_and_name(self):
        r1 = MetricsRegistry(seed=42)
        r2 = MetricsRegistry(seed=42)
        assert r1.histogram("x").seed == r2.histogram("x").seed
        assert r1.histogram("x").seed != r1.histogram("y").seed

    def test_same_seed_registries_build_identical_reservoirs(self):
        def run():
            r = MetricsRegistry(seed=9, max_samples=32)
            h = r.histogram("pipeline.clean")
            for i in range(500):
                h.record(i * 1e-4)
            return h.samples

        assert run() == run()

    def test_timer_records_into_histogram(self):
        r = MetricsRegistry()
        with r.timer("op"):
            pass
        assert r.histogram("op").count == 1

    def test_absorb_operator(self):
        r = MetricsRegistry()
        op = OperatorMetrics("clean")
        op.records_in.inc(10)
        op.records_out.inc(8)
        op.processing_latency.record(0.002)
        r.absorb_operator(op)
        assert r.counters()["streams.clean.records_in"] == 10
        assert r.counters()["streams.clean.records_out"] == 8
        assert r.histogram("streams.clean.latency").count == 1

    def test_as_dict_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(1.0)
        r.histogram("h").record(0.001)
        with r.span("s"):
            pass
        snap = r.as_dict()
        assert set(snap) == {"counters", "gauges", "histograms", "trace"}
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.0}
        assert set(snap["histograms"]["h"]) == {
            "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"
        }
        assert snap["trace"] == {"spans": 1, "spans_dropped": 0}

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        with r.span("s"):
            pass
        r.reset()
        assert r.counters() == {}
        assert r.spans == ()


class TestRegistryMerge:
    """Folding parallel-worker registries into one (the E4 shape)."""

    def _worker(self, seed, latency_s, n):
        w = MetricsRegistry(seed=seed)
        w.counter("docs").inc(n)
        w.gauge("rate").set(float(seed))
        h = w.histogram("insert")
        for _ in range(n):
            h.record(latency_s)
        return w

    def test_counters_add_and_histograms_union(self):
        main = MetricsRegistry(seed=0)
        w1 = self._worker(1, 0.001, 50)
        w2 = self._worker(2, 0.003, 50)
        main.merge(w1)
        main.merge(w2)
        assert main.counters()["docs"] == 100
        assert main.histogram("insert").count == 100
        assert main.histogram("insert").percentile_ms(50) == pytest.approx(2.0)

    def test_gauges_take_latest(self):
        main = MetricsRegistry()
        main.merge(self._worker(1, 0.001, 1))
        main.merge(self._worker(2, 0.001, 1))
        assert main.gauges()["rate"] == 2.0

    def test_prefix_namespaces_incoming(self):
        main = MetricsRegistry()
        main.merge(self._worker(1, 0.001, 5), prefix="worker1.")
        assert main.counters() == {"worker1.docs": 5}
        assert list(main.histogram_names()) == ["worker1.insert"]

    def test_merge_is_deterministic(self):
        def combined():
            main = MetricsRegistry(seed=0, max_samples=16)
            for s in (1, 2, 3):
                main.merge(self._worker(s, s * 0.001, 40))
            return main.histogram("insert").samples

        assert combined() == combined()


class TestDisabledRegistry:
    def test_null_instruments_are_shared_and_inert(self):
        r = MetricsRegistry(enabled=False)
        assert r.counter("a") is r.counter("b")
        assert r.histogram("x") is r.histogram("y")
        r.counter("a").inc(5)
        r.gauge("g").set(9.0)
        assert r.counters() == {}
        assert r.gauges() == {}

    def test_no_samples_ever_allocated(self):
        r = MetricsRegistry(enabled=False)
        h = r.histogram("hot.path")
        for _ in range(10_000):
            h.record(0.001)
        assert h.samples == ()
        assert h.count == 0

    def test_span_is_shared_null_context(self):
        r = MetricsRegistry(enabled=False)
        span = r.span("x")
        assert span is NULL_SPAN
        with span as s:
            s.add_records(3)
        assert r.spans == ()

    def test_null_registry_singleton_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.as_dict()["counters"] == {}

    def test_merge_into_disabled_is_noop(self):
        src = MetricsRegistry()
        src.counter("c").inc()
        r = MetricsRegistry(enabled=False)
        r.merge(src)
        assert r.counters() == {}

"""Automaton-based event forecasting."""

import pytest

from repro.cep.forecast import PatternForecaster
from repro.cep.nfa import PatternEngine
from repro.cep.patterns import Atom, Neg, Seq
from repro.model.events import SimpleEvent


def ev(event_type, t, entity="X"):
    return SimpleEvent(event_type, entity, t, 24.0, 37.0)


def training_stream(pattern_frac=0.5, n=200):
    """A stream where 'a' is often followed by 'b' (completion prob high)."""
    out = []
    t = 0.0
    for i in range(n):
        t += 1.0
        if i % 2 == 0:
            out.append(ev("a", t))
        elif (i // 2) % int(1 / pattern_frac) == 0:
            out.append(ev("b", t))
        else:
            out.append(ev("noise", t))
    return out


@pytest.fixture()
def ab_engine():
    return PatternEngine(Atom("a").then(Atom("b")), window_s=1e6, name="ab")


class TestTraining:
    def test_fit_required(self, ab_engine):
        forecaster = PatternForecaster(ab_engine)
        with pytest.raises(RuntimeError):
            forecaster.forecast_for_key("X", 0.0)

    def test_empty_training_rejected(self, ab_engine):
        with pytest.raises(ValueError):
            PatternForecaster(ab_engine).fit([])

    def test_parameter_validation(self, ab_engine):
        with pytest.raises(ValueError):
            PatternForecaster(ab_engine, horizon_events=0)
        with pytest.raises(ValueError):
            PatternForecaster(ab_engine, threshold=0.0)


class TestReachProbabilities:
    def test_accept_state_probability_one(self, ab_engine):
        forecaster = PatternForecaster(ab_engine, horizon_events=3).fit(training_stream())
        accept = next(iter(ab_engine.nfa.accepts))
        assert forecaster.completion_probability(accept) == 1.0

    def test_probability_increases_with_horizon(self):
        engine_short = PatternEngine(Atom("a").then(Atom("b")), window_s=1e6)
        engine_long = PatternEngine(Atom("a").then(Atom("b")), window_s=1e6)
        stream = training_stream()
        near = PatternForecaster(engine_short, horizon_events=1).fit(stream)
        far = PatternForecaster(engine_long, horizon_events=10).fit(stream)
        # State 1 = after 'a', waiting for 'b'.
        assert far.completion_probability(1) >= near.completion_probability(1)

    def test_rare_event_low_probability(self):
        engine = PatternEngine(Atom("a").then(Atom("rare")), window_s=1e6)
        stream = training_stream() + [ev("rare", 9_999.0)]
        forecaster = PatternForecaster(engine, horizon_events=2).fit(stream)
        assert forecaster.completion_probability(1) < 0.05

    def test_negation_reduces_probability(self):
        plain_engine = PatternEngine(Atom("a").then(Atom("b")), window_s=1e6)
        negated = Seq((Atom("a"), Neg(Atom("noise")), Atom("b")))
        neg_engine = PatternEngine(negated, window_s=1e6)
        stream = training_stream()
        p_plain = PatternForecaster(plain_engine, horizon_events=5).fit(stream)
        p_neg = PatternForecaster(neg_engine, horizon_events=5).fit(stream)
        assert p_neg.completion_probability(1) < p_plain.completion_probability(1)


class TestRuntimeForecasts:
    def test_forecast_after_partial_match(self, ab_engine):
        forecaster = PatternForecaster(
            ab_engine, horizon_events=5, threshold=0.3
        ).fit(training_stream())
        forecasts = forecaster.process(ev("a", 1.0, entity="Y"))
        assert len(forecasts) == 1
        forecast = forecasts[0]
        assert forecast.pattern_name == "ab"
        assert forecast.key == "Y"
        assert 0.3 <= forecast.probability <= 1.0

    def test_no_forecast_without_partial_match(self, ab_engine):
        forecaster = PatternForecaster(ab_engine, threshold=0.1).fit(training_stream())
        assert forecaster.process(ev("noise", 1.0, entity="Z")) == []

    def test_threshold_suppresses(self):
        engine = PatternEngine(Atom("a").then(Atom("rare")), window_s=1e6)
        stream = training_stream() + [ev("rare", 9_999.0)]
        forecaster = PatternForecaster(engine, threshold=0.9).fit(stream)
        assert forecaster.process(ev("a", 1.0, entity="Q")) == []

    def test_expected_by_derived_from_cadence(self, ab_engine):
        # Training events for key X arrive 1 s apart (see training_stream),
        # so horizon×1s is the expected completion window.
        forecaster = PatternForecaster(
            ab_engine, horizon_events=5, threshold=0.2
        ).fit(training_stream())
        (forecast,) = forecaster.process(ev("a", 100.0, entity="Y"))
        assert forecaster.mean_interevent_s == pytest.approx(1.0)
        assert forecast.expected_by == pytest.approx(105.0)

    def test_expected_by_none_without_cadence(self, ab_engine):
        # One training event per key: types are learnable but no key has
        # two timestamps, so there is no measurable cadence.
        training = [
            ev("a" if i % 2 else "b", 0.0, entity=f"K{i}") for i in range(20)
        ]
        forecaster = PatternForecaster(
            ab_engine, horizon_events=5, threshold=0.2
        ).fit(training)
        assert forecaster.mean_interevent_s is None
        (forecast,) = forecaster.process(ev("a", 1.0, entity="Z"))
        assert forecast.expected_by is None

    def test_refractory_suppresses_repeats(self, ab_engine):
        forecaster = PatternForecaster(
            ab_engine, threshold=0.2, refractory_events=100
        ).fit(training_stream())
        first = forecaster.process(ev("a", 1.0, entity="R"))
        assert len(first) == 1
        again = forecaster.process(ev("noise", 2.0, entity="R"))
        assert again == []

"""Domain complex-event detectors on scripted scenarios."""

import pytest

from repro.cep.detectors import (
    CapacityDemandDetector,
    CollisionRiskDetector,
    LoiteringDetector,
    RendezvousDetector,
)
from repro.cep.evaluation import match_events, promote
from repro.cep.simple import SimpleEventExtractor
from repro.geo.bbox import BBox
from repro.geo.polygon import Polygon
from repro.model.reports import PositionReport
from repro.sources.scenarios import (
    aviation_near_miss_scenario,
    collision_course_scenario,
    loitering_scenario,
    rendezvous_scenario,
    zone_intrusion_scenario,
)


class TestCollisionRisk:
    def test_scripted_scenario_detected(self):
        scenario = collision_course_scenario()
        detector = CollisionRiskDetector()
        detections = []
        for report in scenario.reports:
            detections.extend(detector.process(report))
        score = match_events(detections, scenario.expected)
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_parallel_traffic_no_alert(self):
        detector = CollisionRiskDetector(cpa_threshold_m=500.0)
        # Two vessels 5 km apart on the same eastbound course.
        reports = []
        for i in range(30):
            t = 10.0 * i
            reports.append(PositionReport(
                entity_id="A", t=t, lon=24.0 + 0.001 * i, lat=37.00,
                speed=8.0, heading=90.0))
            reports.append(PositionReport(
                entity_id="B", t=t + 1.0, lon=24.0 + 0.001 * i, lat=37.045,
                speed=8.0, heading=90.0))
        detections = []
        for report in reports:
            detections.extend(detector.process(report))
        assert detections == []

    def test_refractory_limits_alerts(self):
        scenario = collision_course_scenario()
        detector = CollisionRiskDetector(refractory_s=1e9)
        detections = []
        for report in scenario.reports:
            detections.extend(detector.process(report))
        assert len(detections) == 1

    def test_severity_escalates_near_tcpa(self):
        from repro.model.events import EventSeverity

        scenario = collision_course_scenario()
        detector = CollisionRiskDetector(refractory_s=60.0)
        detections = []
        for report in scenario.reports:
            detections.extend(detector.process(report))
        assert detections[-1].severity == EventSeverity.ALARM

    def test_missing_kinematics_skipped(self):
        detector = CollisionRiskDetector()
        bare = PositionReport(entity_id="A", t=0.0, lon=24.0, lat=37.0)
        assert detector.process(bare) == []


class TestAviationNearMiss:
    @staticmethod
    def atm_detector():
        return CollisionRiskDetector(
            cpa_threshold_m=9_000.0,           # ~5 NM
            vertical_threshold_m=300.0,        # ~1000 ft
            tcpa_threshold_s=600.0,
            candidate_radius_m=150_000.0,
        )

    def test_same_level_crossing_alerts(self):
        scenario = aviation_near_miss_scenario()
        detector = self.atm_detector()
        detections = []
        for report in scenario.reports:
            detections.extend(detector.process(report))
        # ATM-style thresholds alert exactly the same-level pair — the
        # +600 m crosser is vertically separated even with a 9 km
        # horizontal threshold.
        assert {d.entity_ids for d in detections} == {("NM01", "NM02")}
        score = match_events(detections, scenario.expected)
        assert score.precision == 1.0 and score.recall == 1.0

    def test_vertically_separated_silent(self):
        scenario = aviation_near_miss_scenario(vertical_separation_m=600.0)
        assert scenario.expected == []  # negative control by construction
        detector = self.atm_detector()
        detections = []
        for report in scenario.reports:
            detections.extend(detector.process(report))
        assert detections == []

    def test_vertical_threshold_validation(self):
        with pytest.raises(ValueError):
            CollisionRiskDetector(vertical_threshold_m=0.0)


class TestLoitering:
    def test_scripted_scenario(self):
        scenario = loitering_scenario()
        detector = LoiteringDetector(radius_m=800.0, min_duration_s=900.0)
        detections = []
        for report in scenario.reports:
            detections.extend(detector.process(report))
        score = match_events(detections, scenario.expected)
        assert score.recall == 1.0

    def test_transit_not_loitering(self):
        detector = LoiteringDetector(min_duration_s=300.0)
        detections = []
        for i in range(100):
            detections.extend(detector.process(PositionReport(
                entity_id="A", t=10.0 * i, lon=24.0 + 0.001 * i, lat=37.0, speed=8.0)))
        assert detections == []


class TestRendezvous:
    def test_scripted_scenario(self):
        scenario = rendezvous_scenario()
        extractor = SimpleEventExtractor()
        detector = RendezvousDetector(radius_m=600.0, min_duration_s=600.0)
        detections = []
        for report in scenario.reports:
            for event in extractor.process(report):
                detections.extend(detector.process(event))
            detections.extend(detector.tick(report.t))
        score = match_events(detections, scenario.expected)
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_stopped_far_apart_not_rendezvous(self):
        from repro.model.events import SimpleEvent

        detector = RendezvousDetector(radius_m=500.0, min_duration_s=60.0)
        detector.process(SimpleEvent("stop_begin", "A", 0.0, 24.0, 37.0))
        detector.process(SimpleEvent("stop_begin", "B", 1.0, 24.5, 37.0))
        assert detector.tick(1_000.0) == []

    def test_stop_end_resets_pair(self):
        from repro.model.events import SimpleEvent

        detector = RendezvousDetector(radius_m=500.0, min_duration_s=100.0)
        detector.process(SimpleEvent("stop_begin", "A", 0.0, 24.0, 37.0))
        detector.process(SimpleEvent("stop_begin", "B", 1.0, 24.001, 37.0))
        detector.process(SimpleEvent("stop_end", "A", 10.0, 24.0, 37.0))
        assert detector.tick(500.0) == []


class TestZoneEventsEndToEnd:
    def test_intrusion_scenario(self):
        scenario = zone_intrusion_scenario()
        extractor = SimpleEventExtractor(zones=scenario.zones)
        simple = extractor.process_all(scenario.reports)
        detections = [promote(e) for e in simple if e.event_type.startswith("zone")]
        score = match_events(detections, scenario.expected)
        assert score.recall == 1.0
        assert score.precision == 1.0


class TestCapacityDemand:
    SECTOR = Polygon.rectangle("s1", BBox(24.0, 37.0, 25.0, 38.0))

    def flights(self, n, t0=0.0):
        return [
            PositionReport(entity_id=f"F{i}", t=t0 + i, lon=24.5, lat=37.5, alt=9000.0)
            for i in range(n)
        ]

    def test_overload_detected_at_window_close(self):
        detector = CapacityDemandDetector([self.SECTOR], capacity=3, window_s=600.0)
        out = []
        for report in self.flights(5):
            out.extend(detector.process(report))
        out.extend(detector.flush())
        assert len(out) == 1
        assert out[0].attributes["sector"] == "s1"
        assert out[0].attributes["count"] == 5

    def test_under_capacity_silent(self):
        detector = CapacityDemandDetector([self.SECTOR], capacity=10, window_s=600.0)
        out = []
        for report in self.flights(5):
            out.extend(detector.process(report))
        out.extend(detector.flush())
        assert out == []

    def test_windows_counted_separately(self):
        detector = CapacityDemandDetector([self.SECTOR], capacity=3, window_s=600.0)
        out = []
        for report in self.flights(5, t0=0.0) + self.flights(2, t0=700.0):
            out.extend(detector.process(report))
        out.extend(detector.flush())
        # Only the first window overloads.
        assert len(out) == 1
        assert out[0].t_start == 0.0

    def test_same_entity_counted_once(self):
        detector = CapacityDemandDetector([self.SECTOR], capacity=2, window_s=600.0)
        out = []
        for i in range(10):  # one aircraft reporting 10 times
            out.extend(detector.process(PositionReport(
                entity_id="F0", t=float(i), lon=24.5, lat=37.5, alt=9000.0)))
        out.extend(detector.flush())
        assert out == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityDemandDetector([self.SECTOR], capacity=0)

"""Aviation-specific detectors: level bust and holding pattern."""

import math

import pytest

from repro.cep.aviation import HoldingPatternDetector, LevelBustDetector
from repro.model.reports import PositionReport


def flight_report(entity="F1", t=0.0, lon=5.0, lat=45.0, alt=10_000.0, heading=None):
    return PositionReport(
        entity_id=entity, t=t, lon=lon, lat=lat, alt=alt, heading=heading
    )


def level_then_ramp(detector, rate_m_per_10s, level_samples=40, ramp_samples=40):
    events = []
    for i in range(level_samples + ramp_samples):
        if i < level_samples:
            alt = 10_000.0
        else:
            alt = 10_000.0 + rate_m_per_10s * (i - level_samples)
        events.extend(
            detector.process(flight_report(t=10.0 * i, lon=5.0 + 0.01 * i, alt=alt))
        )
    return events


class TestLevelBust:
    def test_rapid_departure_alerts(self):
        events = level_then_ramp(LevelBustDetector(), rate_m_per_10s=15.0)
        assert [e.event_type for e in events] == ["level_bust"]
        assert abs(events[0].attributes["deviation_m"]) >= 90.0

    def test_noise_within_band_silent(self):
        detector = LevelBustDetector(level_band_m=60.0)
        events = []
        for i in range(80):
            alt = 10_000.0 + (25.0 if i % 2 else -25.0)  # ±25 m jitter
            events.extend(
                detector.process(flight_report(t=10.0 * i, lon=5.0 + 0.01 * i, alt=alt))
            )
        assert events == []

    def test_very_slow_drift_is_level_change(self):
        # 1 m per 10 s: reaching the 90 m threshold takes 300 s after
        # leaving the 60 m band — beyond the 120 s grace → no alarm.
        events = level_then_ramp(
            LevelBustDetector(grace_s=120.0), rate_m_per_10s=1.0, ramp_samples=400
        )
        assert events == []

    def test_reestablishes_after_change(self):
        detector = LevelBustDetector(establish_s=100.0)
        level_then_ramp(detector, rate_m_per_10s=15.0, ramp_samples=20)
        # Hold the new altitude; the detector should re-establish there.
        base_t = 600.0
        for i in range(30):
            detector.process(
                flight_report(t=base_t + 10.0 * i, lon=6.0 + 0.01 * i, alt=10_300.0)
            )
        assert detector.established_level("F1") == pytest.approx(10_300.0, abs=60.0)

    def test_refractory(self):
        detector = LevelBustDetector(refractory_s=1e9, establish_s=50.0)
        events = level_then_ramp(detector, rate_m_per_10s=20.0)
        # Re-established and busted again would be suppressed by refractory.
        more = level_then_ramp(detector, rate_m_per_10s=20.0)
        assert len(events) + len(more) == 1

    def test_2d_reports_ignored(self):
        detector = LevelBustDetector()
        assert detector.process(flight_report(alt=None)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            LevelBustDetector(level_band_m=100.0, bust_threshold_m=50.0)


def circling_reports(entity="F2", n=80, deg_per_step=12.0, radius_deg=0.02):
    out = []
    for i in range(n):
        angle = i * deg_per_step
        lon = 8.0 + radius_deg * math.cos(math.radians(angle))
        lat = 47.0 + radius_deg * math.sin(math.radians(angle))
        out.append(
            flight_report(
                entity=entity, t=10.0 * i, lon=lon, lat=lat,
                heading=(angle + 90.0) % 360.0,
            )
        )
    return out


class TestHoldingPattern:
    def test_circling_detected(self):
        detector = HoldingPatternDetector(window_s=600.0, min_total_turn_deg=300.0)
        events = []
        for report in circling_reports():
            events.extend(detector.process(report))
        assert events
        assert events[0].event_type == "holding_pattern"
        assert events[0].attributes["total_turn_deg"] >= 300.0

    def test_straight_flight_silent(self):
        detector = HoldingPatternDetector()
        events = []
        for i in range(100):
            events.extend(
                detector.process(
                    flight_report(t=10.0 * i, lon=5.0 + 0.02 * i, heading=90.0)
                )
            )
        assert events == []

    def test_turning_but_covering_ground_silent(self):
        # A big sweeping turn across a wide area is not a hold.
        detector = HoldingPatternDetector(radius_m=5_000.0)
        events = []
        for report in circling_reports(radius_deg=1.5, deg_per_step=6.0):
            events.extend(detector.process(report))
        assert events == []

    def test_refractory_limits_alerts(self):
        detector = HoldingPatternDetector(
            window_s=600.0, min_total_turn_deg=300.0, refractory_s=1e9
        )
        events = []
        for report in circling_reports(n=200):
            events.extend(detector.process(report))
        assert len(events) == 1

    def test_heading_required(self):
        detector = HoldingPatternDetector()
        assert detector.process(flight_report(heading=None)) == []

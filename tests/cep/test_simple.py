"""Simple event extraction."""

import pytest

from repro.cep.simple import SimpleEventConfig, SimpleEventExtractor
from repro.geo.polygon import Polygon
from repro.model.entities import EntityRegistry, Vessel
from repro.model.reports import PositionReport


def report(entity="V1", t=0.0, lon=24.0, lat=37.0, speed=5.0):
    return PositionReport(entity_id=entity, t=t, lon=lon, lat=lat, speed=speed)


ZONE = Polygon("z", ((24.4, 36.9), (24.6, 36.9), (24.6, 37.1), (24.4, 37.1)))


class TestZoneEvents:
    def test_entry_and_exit(self):
        extractor = SimpleEventExtractor(zones=[ZONE])
        events = extractor.process_all(
            [
                report(t=0.0, lon=24.2),
                report(t=10.0, lon=24.5),   # inside
                report(t=20.0, lon=24.55),  # still inside (no repeat)
                report(t=30.0, lon=24.8),   # out
            ]
        )
        zone_events = [e for e in events if e.event_type.startswith("zone")]
        assert [e.event_type for e in zone_events] == ["zone_entry", "zone_exit"]
        assert zone_events[0].attributes["zone"] == "z"

    def test_no_events_outside(self):
        extractor = SimpleEventExtractor(zones=[ZONE])
        events = extractor.process_all([report(t=0.0, lon=23.0), report(t=10.0, lon=23.1)])
        assert [e for e in events if e.event_type.startswith("zone")] == []


class TestStopEvents:
    def test_stop_begin_end_with_hysteresis(self):
        config = SimpleEventConfig(stop_speed_mps=1.0, stop_hysteresis=2.0)
        extractor = SimpleEventExtractor(config=config)
        events = extractor.process_all(
            [
                report(t=0.0, speed=5.0),
                report(t=10.0, speed=0.5),   # stop_begin
                report(t=20.0, speed=1.5),   # within hysteresis: still stopped
                report(t=30.0, speed=2.5),   # stop_end
            ]
        )
        stops = [e.event_type for e in events if e.event_type.startswith("stop")]
        assert stops == ["stop_begin", "stop_end"]

    def test_derived_speed_when_field_missing(self):
        extractor = SimpleEventExtractor()
        events = extractor.process_all(
            [
                report(t=0.0, speed=None),
                report(t=10.0, speed=None),  # same position → derived 0 m/s
            ]
        )
        assert any(e.event_type == "stop_begin" for e in events)


class TestGapEvents:
    def test_gap_pair_emitted(self):
        config = SimpleEventConfig(gap_threshold_s=300.0)
        extractor = SimpleEventExtractor(config=config)
        events = extractor.process_all([report(t=0.0), report(t=1000.0, lon=24.01)])
        kinds = [e.event_type for e in events if "gap" in e.event_type]
        assert kinds == ["gap_start", "gap_end"]
        start = next(e for e in events if e.event_type == "gap_start")
        assert start.t == 0.0  # timestamped at the silence's beginning
        assert start.attributes["duration_s"] == pytest.approx(1000.0)


class TestSpeedAnomaly:
    def test_anomaly_against_registry_ceiling(self):
        registry = EntityRegistry()
        registry.add(Vessel("V1", "x", max_speed_mps=10.0))
        config = SimpleEventConfig(speed_anomaly_factor=1.2)
        extractor = SimpleEventExtractor(config=config, registry=registry)
        events = extractor.process_all([report(speed=15.0)])
        assert [e.event_type for e in events if e.event_type == "speed_anomaly"]

    def test_no_registry_no_anomaly(self):
        extractor = SimpleEventExtractor()
        events = extractor.process_all([report(speed=500.0)])
        assert not [e for e in events if e.event_type == "speed_anomaly"]


class TestProximity:
    def test_pairwise_proximity(self):
        config = SimpleEventConfig(proximity_radius_m=5000.0)
        extractor = SimpleEventExtractor(config=config)
        events = extractor.process_all(
            [
                report(entity="A", t=0.0, lon=24.0),
                report(entity="B", t=10.0, lon=24.01),  # ~890 m away
            ]
        )
        prox = [e for e in events if e.event_type == "proximity"]
        assert len(prox) == 1
        assert prox[0].entity_id == "B"
        assert prox[0].attributes["other"] == "A"
        assert prox[0].attributes["distance_m"] < 1000.0

    def test_staleness_suppresses(self):
        config = SimpleEventConfig(proximity_radius_m=5000.0, proximity_staleness_s=60.0)
        extractor = SimpleEventExtractor(config=config)
        events = extractor.process_all(
            [
                report(entity="A", t=0.0, lon=24.0),
                report(entity="B", t=500.0, lon=24.01),  # A's position too old
            ]
        )
        assert [e for e in events if e.event_type == "proximity"] == []

    def test_far_entities_no_event(self):
        extractor = SimpleEventExtractor()
        events = extractor.process_all(
            [report(entity="A", lon=24.0), report(entity="B", t=1.0, lon=25.0)]
        )
        assert [e for e in events if e.event_type == "proximity"] == []


class TestConfigValidation:
    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            SimpleEventConfig(stop_speed_mps=-1.0)
        with pytest.raises(ValueError):
            SimpleEventConfig(gap_threshold_s=0.0)

"""Pattern algebra and the NFA engine."""

import pytest

from repro.cep.nfa import NFA, PatternEngine
from repro.cep.patterns import Atom, Iter, MatchContext, Neg, Or, Seq
from repro.model.events import SimpleEvent


def ev(event_type, t, entity="X", **attrs):
    return SimpleEvent(event_type, entity, t, 24.0, 37.0, attributes=attrs)


class TestPatternAlgebra:
    def test_seq_needs_two_parts(self):
        with pytest.raises(ValueError):
            Seq((Atom("a"),))

    def test_then_flattens(self):
        p = Atom("a").then(Atom("b")).then(Atom("c"))
        assert isinstance(p, Seq)
        assert len(p.parts) == 3

    def test_or_operator(self):
        p = Atom("a") | Atom("b")
        assert isinstance(p, Or)

    def test_iter_bounds(self):
        with pytest.raises(ValueError):
            Iter(Atom("a"), min_count=0)
        with pytest.raises(ValueError):
            Iter(Atom("a"), min_count=3, max_count=2)

    def test_atom_guard(self):
        atom = Atom("a", guard=lambda e, ctx: e.attributes.get("v", 0) > 5)
        assert atom.matches(ev("a", 0.0, v=10), MatchContext())
        assert not atom.matches(ev("a", 0.0, v=1), MatchContext())
        assert not atom.matches(ev("b", 0.0, v=10), MatchContext())


class TestCompilation:
    def test_atom_nfa(self):
        nfa = NFA.compile(Atom("a"))
        assert nfa.n_states == 2
        assert nfa.accepts

    def test_neg_outside_seq_rejected(self):
        with pytest.raises(ValueError):
            NFA.compile(Neg(Atom("a")))

    def test_seq_starting_with_neg_rejected(self):
        with pytest.raises(ValueError):
            NFA.compile(Seq((Neg(Atom("a")), Atom("b"))))

    def test_seq_ending_with_neg_rejected(self):
        with pytest.raises(ValueError):
            NFA.compile(Seq((Atom("a"), Neg(Atom("b")))))


class TestSequenceMatching:
    def test_simple_sequence(self):
        engine = PatternEngine(Atom("a").then(Atom("b")), window_s=100.0, name="ab")
        matches = engine.process_all([ev("a", 1.0), ev("b", 2.0)])
        assert len(matches) == 1
        assert matches[0].pattern_name == "ab"
        assert [e.event_type for e in matches[0].events] == ["a", "b"]

    def test_skip_till_next_match(self):
        engine = PatternEngine(Atom("a").then(Atom("b")), window_s=100.0)
        matches = engine.process_all([ev("a", 1.0), ev("x", 2.0), ev("b", 3.0)])
        assert len(matches) == 1

    def test_window_expiry(self):
        engine = PatternEngine(Atom("a").then(Atom("b")), window_s=10.0)
        matches = engine.process_all([ev("a", 1.0), ev("b", 50.0)])
        assert matches == []

    def test_keys_isolated(self):
        engine = PatternEngine(Atom("a").then(Atom("b")), window_s=100.0)
        matches = engine.process_all(
            [ev("a", 1.0, entity="P"), ev("b", 2.0, entity="Q")]
        )
        assert matches == []

    def test_multiple_matches_same_key(self):
        engine = PatternEngine(Atom("a").then(Atom("b")), window_s=100.0)
        matches = engine.process_all(
            [ev("a", 1.0), ev("b", 2.0), ev("a", 3.0), ev("b", 4.0)]
        )
        assert len(matches) == 2


class TestDisjunction:
    def test_or_either_branch(self):
        pattern = Seq((Atom("start"), Or((Atom("x"), Atom("y")))))
        engine = PatternEngine(pattern, window_s=100.0)
        m1 = engine.process_all([ev("start", 1.0), ev("x", 2.0)])
        assert len(m1) == 1
        engine2 = PatternEngine(pattern, window_s=100.0)
        m2 = engine2.process_all([ev("start", 1.0), ev("y", 2.0)])
        assert len(m2) == 1


class TestIteration:
    def test_min_count_required(self):
        pattern = Seq((Atom("go"), Iter(Atom("ping"), min_count=3, max_count=5)))
        engine = PatternEngine(pattern, window_s=100.0)
        matches = engine.process_all(
            [ev("go", 0.0), ev("ping", 1.0), ev("ping", 2.0)]
        )
        assert matches == []
        matches = engine.process(ev("ping", 3.0))
        assert len(matches) == 1
        assert len(matches[0].events) == 4

    def test_iteration_emits_each_accept(self):
        engine = PatternEngine(Iter(Atom("p"), min_count=2, max_count=3), window_s=100.0)
        matches = engine.process_all([ev("p", 1.0), ev("p", 2.0), ev("p", 3.0)])
        # Accepts at length 2 (twice: events 1-2 and 2-3) and at length 3.
        assert len(matches) >= 2


class TestNegation:
    def test_negation_blocks(self):
        pattern = Seq((Atom("gap_start"), Neg(Atom("reappear")), Atom("gap_end")))
        engine = PatternEngine(pattern, window_s=100.0)
        matches = engine.process_all(
            [ev("gap_start", 1.0), ev("reappear", 2.0), ev("gap_end", 3.0)]
        )
        assert matches == []

    def test_negation_allows_when_absent(self):
        pattern = Seq((Atom("gap_start"), Neg(Atom("reappear")), Atom("gap_end")))
        engine = PatternEngine(pattern, window_s=100.0)
        matches = engine.process_all([ev("gap_start", 1.0), ev("gap_end", 3.0)])
        assert len(matches) == 1


class TestGuardsAndContext:
    def test_guard_sees_previous_events(self):
        # Second event must concern a *different* zone than the first.
        def different_zone(event, context):
            return event.attributes["zone"] != context.events[0].attributes["zone"]

        pattern = Seq((Atom("zone_entry"), Atom("zone_entry", guard=different_zone)))
        engine = PatternEngine(pattern, window_s=100.0)
        matches = engine.process_all(
            [
                ev("zone_entry", 1.0, zone="A"),
                ev("zone_entry", 2.0, zone="A"),  # same zone: guard blocks
                ev("zone_entry", 3.0, zone="B"),
            ]
        )
        # Both partial runs (anchored at t=1 and t=2) complete on zone B;
        # neither completed on the same-zone event at t=2.
        assert len(matches) == 2
        assert all(m.events[-1].attributes["zone"] == "B" for m in matches)
        assert all(m.events[0].attributes["zone"] == "A" for m in matches)


class TestMatchAndConversion:
    def test_match_to_complex_event(self):
        engine = PatternEngine(Atom("a").then(Atom("b")), window_s=100.0, name="pair")
        (match,) = engine.process_all([ev("a", 1.0), ev("b", 5.0)])
        complex_event = match.to_complex_event()
        assert complex_event.event_type == "pair"
        assert complex_event.t_start == 1.0
        assert complex_event.t_end == 5.0
        assert complex_event.entity_ids == ("X",)

    def test_active_runs_introspection(self):
        engine = PatternEngine(Atom("a").then(Atom("b")), window_s=100.0)
        engine.process(ev("a", 1.0))
        assert engine.active_runs("X") == 1
        assert engine.partial_states("X")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PatternEngine(Atom("a"), window_s=0.0)

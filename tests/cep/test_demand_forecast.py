"""Sector capacity-demand forecasting."""

import pytest

from repro.cep.demand_forecast import SectorDemandForecaster, actual_occupancy
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.geo.bbox import BBox
from repro.geo.polygon import Polygon
from repro.model.reports import PositionReport
from repro.model.trajectory import Trajectory


EAST_SECTOR = Polygon.rectangle("east", BBox(24.5, 36.5, 26.0, 38.0))
WEST_SECTOR = Polygon.rectangle("west", BBox(22.0, 36.5, 24.5, 38.0))


def eastbound_reports(entity, n=20, lon0=24.0, t0=0.0):
    """~8.9 m/s east: crosses from west into the east sector at lon 24.5."""
    return [
        PositionReport(
            entity_id=entity, t=t0 + 10.0 * i, lon=lon0 + 0.001 * i, lat=37.0,
            speed=8.9, heading=90.0,
        )
        for i in range(n)
    ]


class TestForecast:
    def test_predicts_sector_crossing(self):
        forecaster = SectorDemandForecaster(
            [EAST_SECTOR, WEST_SECTOR], DeadReckoningPredictor(), capacity=1
        )
        # At lon ~24.42 after 20 reports; the east boundary (24.5) is
        # ~7.1 km ahead → ~800 s at 8.9 m/s.
        forecaster.observe_all(eastbound_reports("F1", n=20, lon0=24.4))
        now = 190.0
        short = forecaster.forecast(now, 60.0)
        assert {d.sector for d in short} == {"west"}
        long = forecaster.forecast(now, 1800.0)
        assert {d.sector for d in long} == {"east"}

    def test_overload_event_raised_ahead(self):
        forecaster = SectorDemandForecaster(
            [EAST_SECTOR, WEST_SECTOR], DeadReckoningPredictor(), capacity=2
        )
        for i in range(4):
            forecaster.observe_all(eastbound_reports(f"F{i}", n=20, lon0=24.4))
        events = forecaster.forecast_events(190.0, 1800.0)
        assert len(events) == 1
        event = events[0]
        assert event.event_type == "capacity_demand_forecast"
        assert event.attributes["sector"] == "east"
        assert event.attributes["expected_count"] == 4
        assert len(event.entity_ids) == 4

    def test_under_capacity_no_event(self):
        forecaster = SectorDemandForecaster(
            [EAST_SECTOR], DeadReckoningPredictor(), capacity=10
        )
        forecaster.observe_all(eastbound_reports("F1"))
        assert forecaster.forecast_events(190.0, 600.0) == []

    def test_stale_entities_excluded(self):
        forecaster = SectorDemandForecaster(
            [EAST_SECTOR, WEST_SECTOR], DeadReckoningPredictor(), capacity=1
        )
        forecaster.observe_all(eastbound_reports("OLD", n=20, t0=0.0))
        now = 10_000.0  # far past the last report
        assert forecaster.active_entities(now) == []
        assert forecaster.forecast(now, 600.0) == []

    def test_short_history_skipped(self):
        forecaster = SectorDemandForecaster(
            [WEST_SECTOR], DeadReckoningPredictor(), capacity=1, min_history_s=300.0
        )
        forecaster.observe_all(eastbound_reports("F1", n=3))  # 20 s of history
        assert forecaster.forecast(25.0, 60.0) == []

    def test_out_of_order_reports_ignored(self):
        forecaster = SectorDemandForecaster(
            [WEST_SECTOR], DeadReckoningPredictor(), capacity=1
        )
        reports = eastbound_reports("F1", n=10)
        forecaster.observe_all(reports)
        forecaster.observe(reports[0])  # stale replay
        assert len(forecaster._tracks["F1"]) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            SectorDemandForecaster([EAST_SECTOR], DeadReckoningPredictor(), capacity=0)
        forecaster = SectorDemandForecaster(
            [EAST_SECTOR], DeadReckoningPredictor(), capacity=1
        )
        with pytest.raises(ValueError):
            forecaster.forecast(0.0, -1.0)


class TestActualOccupancy:
    def test_ground_truth_counting(self):
        truth = {
            "A": Trajectory("A", [0, 100], [24.6, 24.7], [37.0, 37.0]),
            "B": Trajectory("B", [0, 100], [23.0, 23.1], [37.0, 37.0]),
            "C": Trajectory("C", [500, 600], [24.6, 24.7], [37.0, 37.0]),  # later
        }
        occupancy = actual_occupancy(truth, [EAST_SECTOR, WEST_SECTOR], t=50.0)
        assert occupancy["east"] == {"A"}
        assert occupancy["west"] == {"B"}

    def test_forecast_agrees_with_truth_on_fleet(self, aviation_sample):
        forecaster = SectorDemandForecaster(
            aviation_sample.world.sectors, DeadReckoningPredictor(), capacity=3
        )
        now = 2400.0
        forecaster.observe_all(r for r in aviation_sample.reports if r.t <= now)
        horizon = 300.0
        forecast = {
            d.sector: d.expected_count for d in forecaster.forecast(now, horizon)
        }
        truth = actual_occupancy(
            aviation_sample.truth, aviation_sample.world.sectors, now + horizon
        )
        for sector, count in forecast.items():
            assert abs(count - len(truth.get(sector, set()))) <= 1

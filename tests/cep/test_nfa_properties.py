"""Property tests: the NFA engine against brute-force reference models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.nfa import PatternEngine
from repro.cep.patterns import Atom, Neg, Seq
from repro.model.events import SimpleEvent

TYPES = ("a", "b", "c", "x")


def stream(type_indices):
    return [
        SimpleEvent(TYPES[idx], "K", float(t), 24.0, 37.0)
        for t, idx in enumerate(type_indices)
    ]


def reference_seq_match(events, wanted, window):
    """Brute force: does any in-order, within-window assignment exist?"""
    n = len(events)

    def search(start, need, anchor_t):
        if not need:
            return True
        for i in range(start, n):
            event = events[i]
            if anchor_t is not None and event.t - anchor_t > window:
                return False
            if event.event_type == need[0]:
                first_t = event.t if anchor_t is None else anchor_t
                if search(i + 1, need[1:], first_t):
                    return True
        return False

    return search(0, list(wanted), None)


def reference_neg_match(events, first, forbidden, last, window):
    """Brute force for Seq((first, Neg(forbidden), last))."""
    n = len(events)
    for i in range(n):
        if events[i].event_type != first:
            continue
        for j in range(i + 1, n):
            if events[j].t - events[i].t > window:
                break
            if events[j].event_type == forbidden:
                break  # this anchor is dead from here on
            if events[j].event_type == last:
                return True
    return False


class TestSequenceAgainstReference:
    @given(
        type_indices=st.lists(st.integers(0, 3), min_size=0, max_size=24),
        wanted=st.lists(st.integers(0, 2), min_size=2, max_size=3),
        window=st.integers(2, 30),
    )
    @settings(max_examples=200, deadline=None)
    def test_match_existence_agrees(self, type_indices, wanted, window):
        events = stream(type_indices)
        wanted_types = [TYPES[i] for i in wanted]
        pattern = Seq(tuple(Atom(t) for t in wanted_types))
        engine = PatternEngine(pattern, window_s=float(window))
        matches = engine.process_all(events)
        expected = reference_seq_match(events, wanted_types, float(window))
        assert bool(matches) == expected

    @given(
        type_indices=st.lists(st.integers(0, 3), min_size=0, max_size=20),
        window=st.integers(2, 25),
    )
    @settings(max_examples=200, deadline=None)
    def test_negation_agrees(self, type_indices, window):
        events = stream(type_indices)
        pattern = Seq((Atom("a"), Neg(Atom("x")), Atom("b")))
        engine = PatternEngine(pattern, window_s=float(window))
        matches = engine.process_all(events)
        expected = reference_neg_match(events, "a", "x", "b", float(window))
        assert bool(matches) == expected

    @given(type_indices=st.lists(st.integers(0, 3), min_size=0, max_size=24))
    @settings(max_examples=100, deadline=None)
    def test_matches_are_well_formed(self, type_indices):
        events = stream(type_indices)
        pattern = Seq((Atom("a"), Atom("b")))
        engine = PatternEngine(pattern, window_s=10.0)
        for match in engine.process_all(events):
            assert [e.event_type for e in match.events] == ["a", "b"]
            assert match.events[0].t < match.events[1].t
            assert match.t_end - match.t_start <= 10.0

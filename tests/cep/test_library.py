"""The predefined domain pattern library."""

import pytest

from repro.cep.library import (
    all_patterns,
    blackout_reappear_elsewhere,
    dark_activity,
    gap_near_zone,
    shadowing,
    zigzag,
)
from repro.geo.geodesy import destination_point
from repro.model.events import SimpleEvent


def ev(event_type, t, entity="X", lon=24.0, lat=37.0, **attrs):
    return SimpleEvent(event_type, entity, t, lon, lat, attributes=attrs)


class TestDarkActivity:
    def test_full_signature_matches(self):
        engine = dark_activity()
        matches = engine.process_all([
            ev("stop_begin", 0.0),
            ev("gap_start", 100.0),
            ev("gap_end", 900.0),
        ])
        assert len(matches) == 1
        assert matches[0].pattern_name == "dark_activity"

    def test_movement_before_gap_blocks(self):
        engine = dark_activity()
        matches = engine.process_all([
            ev("stop_begin", 0.0),
            ev("stop_end", 50.0),   # resumed movement: not dark activity
            ev("gap_start", 100.0),
            ev("gap_end", 900.0),
        ])
        assert matches == []


class TestGapNearZone:
    def test_entry_then_gap(self):
        engine = gap_near_zone()
        matches = engine.process_all([
            ev("zone_entry", 0.0, zone="natura_protected"),
            ev("gap_start", 500.0),
        ])
        assert len(matches) == 1

    def test_exit_before_gap_blocks(self):
        engine = gap_near_zone()
        matches = engine.process_all([
            ev("zone_entry", 0.0, zone="natura_protected"),
            ev("zone_exit", 100.0, zone="natura_protected"),
            ev("gap_start", 500.0),
        ])
        assert matches == []

    def test_zone_prefix_filter(self):
        engine = gap_near_zone(zone_prefix="natura")
        matches = engine.process_all([
            ev("zone_entry", 0.0, zone="anchorage"),
            ev("gap_start", 500.0),
        ])
        assert matches == []


class TestShadowing:
    def test_constant_counterpart_matches(self):
        engine = shadowing(max_gap_events=3)
        matches = engine.process_all([
            ev("proximity", t, other="TARGET") for t in (0.0, 100.0, 200.0)
        ])
        assert len(matches) == 1

    def test_different_counterparts_do_not_match(self):
        engine = shadowing(max_gap_events=3)
        matches = engine.process_all([
            ev("proximity", 0.0, other="A"),
            ev("proximity", 100.0, other="B"),
            ev("proximity", 200.0, other="C"),
        ])
        assert matches == []

    def test_window_expiry(self):
        engine = shadowing(max_gap_events=3, window_s=150.0)
        matches = engine.process_all([
            ev("proximity", t, other="TARGET") for t in (0.0, 100.0, 400.0)
        ])
        assert matches == []


class TestZigzag:
    def test_alternating_stops(self):
        engine = zigzag(min_turns=4)
        events = []
        for i in range(4):
            etype = "stop_begin" if i % 2 == 0 else "stop_end"
            events.append(ev(etype, 100.0 * i))
        matches = engine.process_all(events)
        assert matches


class TestBlackoutReappearElsewhere:
    def test_long_jump_matches(self):
        engine = blackout_reappear_elsewhere(min_jump_m=10_000.0)
        far_lon, far_lat = destination_point(24.0, 37.0, 90.0, 20_000.0)
        matches = engine.process_all([
            ev("gap_start", 0.0, lon=24.0, lat=37.0),
            ev("gap_end", 3600.0, lon=far_lon, lat=far_lat),
        ])
        assert len(matches) == 1

    def test_short_jump_does_not(self):
        engine = blackout_reappear_elsewhere(min_jump_m=10_000.0)
        near_lon, near_lat = destination_point(24.0, 37.0, 90.0, 500.0)
        matches = engine.process_all([
            ev("gap_start", 0.0, lon=24.0, lat=37.0),
            ev("gap_end", 3600.0, lon=near_lon, lat=near_lat),
        ])
        assert matches == []


class TestRegistry:
    def test_all_patterns_fresh_and_named(self):
        patterns = all_patterns()
        assert set(patterns) == {
            "dark_activity", "gap_near_zone", "shadowing", "zigzag",
            "blackout_reappear_elsewhere",
        }
        # Fresh engines: no shared run state between calls.
        again = all_patterns()
        assert patterns["dark_activity"] is not again["dark_activity"]

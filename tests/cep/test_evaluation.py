"""Detection scoring against scripted ground truth."""

import pytest

from repro.cep.evaluation import DetectionScore, match_events, promote
from repro.model.events import ComplexEvent, SimpleEvent
from repro.sources.scenarios import ExpectedEvent


def detection(event_type="collision_risk", entities=("A", "B"), t=100.0):
    return ComplexEvent(event_type, tuple(entities), t, t)


def expected(event_type="collision_risk", entities=("A", "B"), t_from=50.0, t_to=150.0):
    return ExpectedEvent(event_type, tuple(entities), t_from, t_to)


class TestMatching:
    def test_perfect_match(self):
        score = match_events([detection()], [expected()])
        assert score.true_positives == 1
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.mean_latency_s == pytest.approx(50.0)

    def test_type_mismatch(self):
        score = match_events([detection(event_type="rendezvous")], [expected()])
        assert score.false_positives == 1
        assert score.false_negatives == 1

    def test_time_window_enforced(self):
        score = match_events([detection(t=500.0)], [expected()])
        assert score.true_positives == 0

    def test_entity_subset_allowed(self):
        # Detection may include extra entities (e.g. a convoy) as long as
        # the expected pair is covered.
        score = match_events(
            [detection(entities=("A", "B", "C"))], [expected(entities=("A", "B"))]
        )
        assert score.true_positives == 1

    def test_missing_entity_fails(self):
        score = match_events([detection(entities=("A",))], [expected()])
        assert score.true_positives == 0

    def test_repeated_alerts_not_false_positives(self):
        repeats = [detection(t=t) for t in (100.0, 110.0, 120.0)]
        score = match_events(repeats, [expected()])
        assert score.true_positives == 1
        assert score.false_positives == 0

    def test_each_expectation_needs_own_detection(self):
        two_expected = [expected(), expected(entities=("C", "D"))]
        score = match_events([detection()], two_expected)
        assert score.true_positives == 1
        assert score.false_negatives == 1

    def test_empty_both(self):
        score = match_events([], [])
        assert score.precision == 1.0 and score.recall == 1.0


class TestScoreProperties:
    def test_f1(self):
        score = DetectionScore(
            true_positives=2, false_negatives=1, false_positives=1, mean_latency_s=0.0
        )
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(2 / 3)
        assert score.f1 == pytest.approx(2 / 3)

    def test_f1_degenerate(self):
        score = DetectionScore(0, 0, 0, 0.0)
        assert score.f1 > 0  # P=R=1 by convention


class TestPromote:
    def test_simple_to_complex(self):
        simple = SimpleEvent("zone_entry", "V1", 10.0, 24.0, 37.0)
        lifted = promote(simple)
        assert lifted.event_type == "zone_entry"
        assert lifted.entity_ids == ("V1",)
        assert lifted.t_start == lifted.t_end == 10.0
        assert lifted.contributing == (simple,)

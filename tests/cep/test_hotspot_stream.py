"""Online hot-spot detection."""

import pytest

from repro.cep.hotspot_stream import StreamingHotspotDetector
from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport


@pytest.fixture()
def grid():
    return GeoGrid(bbox=BBox(24.0, 37.0, 25.0, 38.0), nx=10, ny=10)


def converging_reports(n_entities=6, t0=0.0, n_steps=10):
    """Several entities reporting from the same central cell."""
    out = []
    for step in range(n_steps):
        for e in range(n_entities):
            out.append(
                PositionReport(
                    entity_id=f"E{e}",
                    t=t0 + 60.0 * step + e,
                    lon=24.55 + 0.002 * e,
                    lat=37.55,
                )
            )
    return out


def scattered_reports(t0=0.0):
    """One entity per cell row: uniform, no hotspot."""
    out = []
    for e in range(10):
        out.append(
            PositionReport(entity_id=f"S{e}", t=t0 + e, lon=24.05 + 0.1 * e, lat=37.05)
        )
    return out


class TestStreamingHotspots:
    def test_convergence_detected(self, grid):
        detector = StreamingHotspotDetector(grid, window_s=1800.0, min_entities=3)
        events = detector.process_all(
            converging_reports(n_entities=10) + scattered_reports(t0=700.0)
        )
        hot = [e for e in events if e.event_type == "hotspot"]
        assert hot
        top = hot[0]
        assert top.attributes["entity_count"] == 10
        assert top.attributes["cell"] == grid.cell_of(24.55, 37.55)
        assert len(top.entity_ids) == 10

    def test_uniform_traffic_silent(self, grid):
        detector = StreamingHotspotDetector(grid, window_s=1800.0)
        events = detector.process_all(scattered_reports())
        assert events == []

    def test_windows_independent(self, grid):
        detector = StreamingHotspotDetector(grid, window_s=600.0, min_entities=3)
        # Window 0: convergence; window 1: scattered.
        stream = converging_reports(n_steps=5) + scattered_reports(t0=700.0)
        events = detector.process_all(stream)
        assert all(event.t_start == 0.0 for event in events)

    def test_min_entities_guard(self, grid):
        detector = StreamingHotspotDetector(grid, window_s=1800.0, min_entities=10)
        events = detector.process_all(converging_reports())
        assert events == []

    def test_same_entity_repeats_count_once(self, grid):
        detector = StreamingHotspotDetector(grid, window_s=1800.0, min_entities=2)
        one_entity = [
            PositionReport(entity_id="LONE", t=float(i), lon=24.55, lat=37.55)
            for i in range(100)
        ]
        events = detector.process_all(one_entity + scattered_reports(t0=500.0))
        assert events == []

    def test_flush_idempotent(self, grid):
        detector = StreamingHotspotDetector(grid, window_s=600.0, min_entities=3)
        for report in converging_reports(n_steps=3):
            detector.process(report)
        first = detector.flush()
        assert detector.flush() == []
        assert first or first == []  # flush returns, second is empty

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            StreamingHotspotDetector(grid, window_s=0.0)
        with pytest.raises(ValueError):
            StreamingHotspotDetector(grid, min_entities=0)

"""Aviation ATM: capacity demand, conflicts, hotspots, 3D prediction.

The paper's aviation use case: "accurate prediction of complex events or
hotspots, leading to benefits to the overall efficiency of an air-traffic
management (ATM) system."

This example flies a fleet across a European-style airspace and runs the
ATM toolset: reactive sector-overload detection, *predictive* capacity
demand (per-flight FLP → forecast occupancy), conflict detection with
ATM-style independent horizontal/vertical separation on a scripted
near-miss, traffic hotspots, and a 3D future-position shoot-out.

Run:  python examples/aviation_atm.py
"""

from repro.cep.demand_forecast import SectorDemandForecaster, actual_occupancy
from repro.cep.detectors import CapacityDemandDetector, CollisionRiskDetector
from repro.forecasting import (
    DeadReckoningPredictor,
    KalmanPredictor,
    RouteBasedPredictor,
    horizon_sweep,
)
from repro.geo.grid import GeoGrid
from repro.sources import AviationTrafficGenerator
from repro.trajectory import density_grid, hotspot_cells
from repro.viz import ascii_density


def main() -> None:
    sample = AviationTrafficGenerator(seed=17).generate(n_flights=16)
    world = sample.world
    print(f"{sample.n_entities} flights, {len(sample.reports)} ADS-B reports, "
          f"{len(world.sectors)} ATC sectors")

    # --- capacity demand ---------------------------------------------------
    detector = CapacityDemandDetector(world.sectors, capacity=4, window_s=1800.0)
    overloads = []
    for report in sample.reports:
        overloads.extend(detector.process(report))
    overloads.extend(detector.flush())
    print(f"\n--- sector capacity overloads (capacity 4 / 30 min window) ---")
    for event in overloads[:10]:
        print(f"window {event.t_start/60:5.0f}-{event.t_end/60:5.0f} min  "
              f"{event.attributes['sector']}: {event.attributes['count']} aircraft")
    if not overloads:
        print("(none)")

    # --- predictive capacity demand -----------------------------------------
    from repro.forecasting import DeadReckoningPredictor as _DR

    forecaster = SectorDemandForecaster(world.sectors, _DR(), capacity=4)
    now = 2700.0
    forecaster.observe_all(r for r in sample.reports if r.t <= now)
    horizon = 900.0
    print(f"\n--- capacity demand FORECAST at t={now:.0f}s, +{horizon:.0f}s ---")
    truth_occupancy = actual_occupancy(sample.truth, world.sectors, now + horizon)
    for demand in forecaster.forecast(now, horizon):
        actual = len(truth_occupancy.get(demand.sector, set()))
        print(f"{demand.sector}: forecast {demand.expected_count}, "
              f"actual {actual}")

    # --- conflict detection (ATM separation standards) ------------------------
    from repro.sources import aviation_near_miss_scenario

    scenario = aviation_near_miss_scenario()
    conflict_detector = CollisionRiskDetector(
        cpa_threshold_m=9_000.0,      # ~5 NM horizontal
        vertical_threshold_m=300.0,   # ~1000 ft vertical
        tcpa_threshold_s=600.0,
        candidate_radius_m=150_000.0,
    )
    conflicts = []
    for report in scenario.reports:
        conflicts.extend(conflict_detector.process(report))
    print("\n--- conflict detection on the scripted near-miss ---")
    for conflict in conflicts[:3]:
        print(f"t={conflict.t_end:6.0f}s  {'/'.join(conflict.entity_ids)}  "
              f"cpa {conflict.attributes['cpa_m']:.0f} m in "
              f"{conflict.attributes['tcpa_s']:.0f} s")
    print(f"(the vertically separated crosser NM03 raised "
          f"{sum(1 for c in conflicts if 'NM03' in c.entity_ids)} alerts — "
          f"independent vertical separation keeps it silent)")

    # --- hotspots ------------------------------------------------------------
    grid = GeoGrid(bbox=world.bbox, nx=36, ny=24)
    density = density_grid(sample.truth.values(), grid)
    spots = hotspot_cells(density, z_threshold=2.5)
    print(f"\n--- traffic hotspots (top 5 of {len(spots)}) ---")
    for ix, iy, z in spots[:5]:
        lon, lat = grid.cell_bbox(ix, iy).center
        print(f"cell ({ix:2d},{iy:2d}) at ({lon:6.2f}, {lat:5.2f})  z={z:.1f}")
    print("\n--- airspace density (ASCII) ---")
    print(ascii_density(density, max_width=72))

    # --- 3D trajectory prediction ---------------------------------------------
    history = list(sample.truth.values())[:12]
    test = list(sample.truth.values())[12:]
    predictors = [
        DeadReckoningPredictor(),
        KalmanPredictor(measurement_noise_m=30.0),
        RouteBasedPredictor(history, n_routes=8),
    ]
    horizons = [60.0, 300.0, 900.0]
    sweep = horizon_sweep(predictors, test, horizons, min_history_s=600.0)
    print("\n--- future position error, mean horizontal m (vertical m) ---")
    header = "model".ljust(16) + "".join(f"{int(h)}s".rjust(16) for h in horizons)
    print(header)
    for model, results in sweep.items():
        cells = []
        for errors in results:
            cells.append(
                f"{errors.mean_horizontal_m():8.0f} ({errors.mean_vertical_m():5.0f})"
            )
        print(model.ljust(16) + "".join(c.rjust(16) for c in cells))


if __name__ == "__main__":
    main()

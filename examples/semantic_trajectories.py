"""Semantic trajectories: from raw tracks to episode structure to reports.

datAcron's trajectory model is *semantic*: a raw surveillance track is
lifted into STOP/MOVE episodes annotated with context (which zone a stop
happened in, which way a move headed). This example builds semantic
trajectories for a fleet that includes a loiterer and a rendezvous pair,
discovers trajectory-level links (same-route, co-movement), and writes
the whole picture into a single HTML situation report.

Run:  python examples/semantic_trajectories.py
"""

from repro.sources import (
    MaritimeTrafficGenerator,
    loitering_scenario,
    rendezvous_scenario,
)
from repro.linkage import co_movement_links, same_route_links
from repro.trajectory import build_semantic_trajectory, detect_stay_points
from repro.viz import HtmlReport, SvgMap


def main() -> None:
    background = MaritimeTrafficGenerator(seed=11).generate(
        n_vessels=8, max_duration_s=2 * 3600.0
    )
    tracks = dict(background.truth)
    tracks.update(loitering_scenario().truth)
    tracks.update(rendezvous_scenario().truth)
    print(f"{len(tracks)} trajectories (8 background + 3 scripted)")

    # -- semantic lifting -----------------------------------------------------
    print("\n--- semantic trajectories with stops ---")
    semantic = {}
    for entity_id, track in tracks.items():
        semantic[entity_id] = build_semantic_trajectory(
            track,
            zones=background.world.zones,
            stay_radius_m=600.0,
            stay_min_duration_s=900.0,
        )
    for entity_id, st in semantic.items():
        if st.stops():
            print(st.describe())

    # -- trajectory-level links --------------------------------------------------
    track_list = list(tracks.values())
    same_route = same_route_links(track_list, max_shape_distance_m=4_000.0)
    convoys = co_movement_links(track_list, radius_m=2_000.0)
    print("\n--- trajectory-level links ---")
    for link in same_route:
        print(f"same_route   {link.source_id} ↔ {link.target_id} "
              f"(shape distance {link.score:.0f} m)")
    for link in convoys:
        print(f"co_movement  {link.source_id} ↔ {link.target_id} "
              f"(together {link.score:.0%} of shared time)")
    if not same_route and not convoys:
        print("(none at these thresholds)")

    # -- HTML situation report ------------------------------------------------------
    svg = SvgMap(background.world.bbox, width_px=860)
    for zone in background.world.zones:
        svg.add_zone(zone)
    svg.add_trajectories(tracks.values())

    report = HtmlReport("Semantic trajectory report")
    report.add_stat("trajectories", len(tracks))
    report.add_stat("stops found",
                    sum(len(st.stops()) for st in semantic.values()))
    report.add_stat("same-route links", len(same_route))
    report.add_stat("co-movement links", len(convoys))
    report.set_map(svg.render())
    report.add_table(
        "Stops",
        ["entity", "t_start (s)", "duration (min)", "zones"],
        [
            [
                entity_id,
                int(stop.t_start),
                round(stop.duration / 60.0, 1),
                ", ".join(t for t in stop.tags if t.startswith("zone:")) or "-",
            ]
            for entity_id, st in semantic.items()
            for stop in st.stops()
        ],
    )
    report.add_table(
        "Trajectory links",
        ["kind", "a", "b", "score"],
        [[l.relation, l.source_id, l.target_id, round(l.score, 2)]
         for l in same_route + convoys],
    )
    report.save("semantic_report.html")
    print("\nwrote semantic_report.html")


if __name__ == "__main__":
    main()

"""Integrated data management: archives + streams + links in one RDF store.

The paper's data-layer story end to end: heterogeneous sources (AIS
stream, archival voyages, weather grid) are transformed to the common
RDF representation, interlinked by link discovery, loaded into the
partitioned parallel store and queried with spatio-temporal operators —
comparing partitioning strategies on the same workload.

Run:  python examples/integrated_data_management.py
"""

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.linkage import (
    items_from_reports,
    proximity_links_blocked,
    weather_links,
    zone_links_blocked,
)
from repro.rdf import RdfTransformer, to_ntriples
from repro.sources import ArchivalStore, MaritimeTrafficGenerator, WeatherGridSource
from repro.store import (
    GridPartitioner,
    HashPartitioner,
    HilbertPartitioner,
    ParallelRDFStore,
)
from repro.query import QueryExecutor


def main() -> None:
    # -- heterogeneous sources ------------------------------------------------
    live = MaritimeTrafficGenerator(seed=5).generate(n_vessels=10, max_duration_s=3600.0)
    historical = MaritimeTrafficGenerator(seed=99).generate(
        n_vessels=6, max_duration_s=3600.0
    )
    archive = ArchivalStore()
    archive.add_all(historical.truth.values())
    weather = WeatherGridSource(bbox=live.world.bbox)
    print(f"sources: {len(live.reports)} streamed reports, "
          f"{len(archive)} archived voyages, weather grid "
          f"{weather.grid.nx}x{weather.grid.ny}")

    # -- transformation to the common representation --------------------------
    grid = GeoGrid(bbox=live.world.bbox, nx=32, ny=32)
    transformer = RdfTransformer(st_grid=grid)
    documents = []
    for entity in live.registry:
        documents.append(transformer.entity_to_triples(entity))
    for report in live.reports:
        documents.append(transformer.report_to_triples(report))
    for zone in live.world.zones:
        documents.append(transformer.zone_to_triples(zone))
    for cell in weather.cells_for_interval(0.0, 3600.0):
        documents.append(transformer.weather_to_triples(cell))
    n_triples = sum(len(d) for d in documents)
    print(f"transformed to {n_triples} triples in {len(documents)} subject documents")

    # -- link discovery ----------------------------------------------------------
    items = items_from_reports(live.reports)
    near, n_candidates = proximity_links_blocked(items, radius_m=3_000.0, max_dt_s=60.0)
    within, __ = zone_links_blocked(items, live.world.zones)
    enrich = weather_links(items[::20], weather)  # sample for the demo
    print(f"link discovery: {len(near)} nearTo links "
          f"({n_candidates} candidate pairs after blocking), "
          f"{len(within)} withinZone links, {len(enrich)} weather links")

    # -- parallel store: compare partitioners on the same query ------------------
    query_box = BBox(23.4, 37.5, 24.6, 38.2)
    print("\npartitioner      triples  imbalance  scanned  pruning  results")
    for partitioner in (
        HashPartitioner(8),
        GridPartitioner(grid, 8),
        HilbertPartitioner(grid, 8),
    ):
        store = ParallelRDFStore(partitioner)
        for document in documents:
            store.add_document(document)
        executor = QueryExecutor(store)
        nodes, report = executor.range_query(query_box, 0.0, 1800.0)
        stats = store.stats()
        print(f"{partitioner.name:<16} {len(store):>7}  {stats.imbalance:>9.2f}  "
              f"{report.partitions_scanned:>7}  {report.pruning_ratio:>7.0%}  "
              f"{len(nodes):>7}")

    # -- an N-Triples export of one vessel's document ----------------------------
    sample_doc = documents[len(live.registry)]  # first position node
    print("\none position node in the common representation:")
    print(to_ntriples(sample_doc))


if __name__ == "__main__":
    main()

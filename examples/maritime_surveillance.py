"""Maritime Situational Awareness: anomaly detection over a live picture.

The paper's maritime use case: "discovering and characterizing the
activities of vessels at sea ... detecting anomalous behaviors, enabling
an effective and quick response to maritime threats and risks."

This example merges background traffic with four scripted threat
scenarios (collision course, loitering, zone intrusion, rendezvous),
runs the recognition stack, scores it against the scripted ground truth
and prints an operator-style event log plus an ASCII traffic map.

Run:  python examples/maritime_surveillance.py
"""

from repro.cep.detectors import (
    CollisionRiskDetector,
    LoiteringDetector,
    RendezvousDetector,
)
from repro.cep.evaluation import match_events, promote
from repro.cep.simple import SimpleEventConfig, SimpleEventExtractor
from repro.geo.bbox import BBox
from repro.sources import (
    MaritimeTrafficGenerator,
    collision_course_scenario,
    loitering_scenario,
    rendezvous_scenario,
    zone_intrusion_scenario,
)
from repro.viz import ascii_trajectories


def main() -> None:
    background = MaritimeTrafficGenerator(seed=31).generate(
        n_vessels=8, max_duration_s=3600.0
    )
    scenarios = [
        collision_course_scenario(),
        loitering_scenario(),
        zone_intrusion_scenario(),
        rendezvous_scenario(),
    ]

    reports = list(background.reports)
    zones = list(background.world.zones)
    expected = []
    for scenario in scenarios:
        reports.extend(scenario.reports)
        zones.extend(scenario.zones)
        expected.extend(scenario.expected)
    reports.sort(key=lambda r: r.t)
    print(f"surveillance picture: {len(reports)} reports, "
          f"{len(scenarios)} scripted threats hidden in background traffic")

    # Recognition stack.
    extractor = SimpleEventExtractor(
        config=SimpleEventConfig(proximity_radius_m=8_000.0), zones=zones
    )
    collision = CollisionRiskDetector()
    loitering = LoiteringDetector(radius_m=800.0, min_duration_s=900.0)
    rendezvous = RendezvousDetector(radius_m=600.0, min_duration_s=600.0)

    detections = []
    for report in reports:
        detections.extend(collision.process(report))
        detections.extend(loitering.process(report))
        for event in extractor.process(report):
            detections.extend(rendezvous.process(event))
            if event.event_type in ("zone_entry", "zone_exit"):
                detections.append(promote(event))
        detections.extend(rendezvous.tick(report.t))

    print("\n--- operator event log (first 15) ---")
    for event in sorted(detections, key=lambda e: e.t_end)[:15]:
        entities = ",".join(event.entity_ids)
        print(f"t={event.t_end:7.0f}s  {event.severity.name:<8} "
              f"{event.event_type:<18} [{entities}]")

    # Score only detections involving scripted entities: the background
    # fleet produces genuine zone entries of its own, which are correct
    # detections, not false alarms against the scripted ground truth.
    scripted = {e for exp in expected for e in exp.entity_ids}
    scoped = [d for d in detections if set(d.entity_ids) <= scripted]
    score = match_events(scoped, expected)
    print("\n--- scoring against scripted ground truth ---")
    print(f"expected threats : {len(expected)}")
    print(f"recall           : {score.recall:.2f}")
    print(f"precision        : {score.precision:.2f} (vs the single labelled event "
          f"per scenario; converging rendezvous vessels legitimately also "
          f"raise collision warnings, which count against precision here)")
    print(f"mean det. latency: {score.mean_latency_s:.0f} s after earliest detectable")

    print("\n--- traffic picture (ASCII, letters = vessels, # = last position) ---")
    box = BBox(22.5, 35.0, 29.0, 41.0)
    print(ascii_trajectories(list(background.truth.values()), box, width=72, height=20))


if __name__ == "__main__":
    main()

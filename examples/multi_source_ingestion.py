"""Multi-source ingestion: wire formats → fusion → interlinked store.

The paper's premise is "more and more frequent data from many different
sources ... for each of these entities". This example walks the entire
ingestion path:

1. the same fleet is observed by two providers — terrestrial AIS
   (frequent, precise, CSV wire format) and satellite AIS (sparse,
   noisy, delivered late);
2. the CSV lines are decoded back into reports (with some corrupted
   lines thrown in, because real feeds have them);
3. the provider streams are merged and cross-source near-duplicates
   suppressed;
4. the fused stream runs through the pipeline with online interlinking
   (zones + weather), and the store is asked DISTINCT-style questions.

Run:  python examples/multi_source_ingestion.py
"""

import numpy as np

from repro.core import MobilityPipeline, PipelineConfig
from repro.insitu import FusionConfig, fuse_streams
from repro.model.reports import ReportSource
from repro.query import parse_query
from repro.sources import MaritimeTrafficGenerator, WeatherGridSource
from repro.sources.formats import decode_ais_csv_batch, dump_ais_csv
from repro.sources.noise import SensorModel


def main() -> None:
    fleet = MaritimeTrafficGenerator(seed=23).generate(
        n_vessels=10, max_duration_s=2 * 3600.0
    )
    rng = np.random.default_rng(1)

    # -- provider 1: terrestrial AIS over a CSV wire -------------------------
    csv_lines = list(dump_ais_csv(fleet.reports))
    # A real feed always carries some garbage.
    csv_lines.insert(100, "!!corrupted,line")
    csv_lines.insert(200, "205,notatime,37.0,24.0,5.0,90.0,ais_terrestrial")
    terrestrial, bad = decode_ais_csv_batch(csv_lines)
    print(f"terrestrial feed: {len(csv_lines)} CSV lines → "
          f"{len(terrestrial)} reports ({bad} malformed skipped)")

    # -- provider 2: satellite AIS (sparse, noisy) ----------------------------
    satellite_sensor = SensorModel(report_period_s=45.0, gps_sigma_m=80.0)
    satellite = []
    for truth in fleet.truth.values():
        satellite.extend(
            satellite_sensor.observe(truth, source=ReportSource.AIS_SATELLITE, rng=rng)
        )
    satellite.sort(key=lambda r: r.t)
    print(f"satellite feed  : {len(satellite)} reports")

    # -- fusion -----------------------------------------------------------------
    fused, fuser = fuse_streams(
        [terrestrial, satellite], FusionConfig(window_s=10.0, radius_m=300.0)
    )
    total = len(terrestrial) + len(satellite)
    print(f"fusion          : {total} → {len(fused)} "
          f"({fuser.suppressed} cross-source echoes suppressed, "
          f"{fuser.suppressed / total:.0%} of load)")

    # -- pipeline with online interlinking -----------------------------------------
    weather = WeatherGridSource(bbox=fleet.world.bbox)
    pipeline = MobilityPipeline(
        bbox=fleet.world.bbox,
        config=PipelineConfig(interlink=True),
        registry=fleet.registry,
        zones=fleet.world.zones,
        weather=weather,
    )
    result = pipeline.run(fused)
    print(f"pipeline        : kept {result.reports_kept} of {result.reports_clean} "
          f"clean reports ({result.compression_ratio:.0%} compression), "
          f"{result.triples_stored} triples")

    # -- questions over the integrated store --------------------------------------
    rows, __ = pipeline.executor.execute(parse_query(
        "SELECT DISTINCT ?o WHERE { ?n dac:ofMovingObject ?o . }"
    ))
    print(f"store knows {len(rows)} distinct moving objects")

    rows, __ = pipeline.executor.execute(parse_query(
        "SELECT DISTINCT ?w WHERE { ?n dac:hasWeatherCondition ?w . }"
    ))
    print(f"kept nodes link to {len(rows)} distinct weather cells")

    rows, __ = pipeline.executor.execute(parse_query(
        "SELECT ?n ?z WHERE { ?n dac:withinZone ?z . } LIMIT 5"
    ))
    if rows:
        print("sample zone containment links:")
        for row in rows:
            values = {str(var): str(term) for var, term in row.items()}
            print(f"  {values.get('?n', '?')}  within  {values.get('?z', '?')}")
    else:
        print("no vessel entered a zone of interest this run")


if __name__ == "__main__":
    main()

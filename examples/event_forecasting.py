"""Event forecasting: predicting pattern completions before they happen.

Demonstrates the CER + forecasting stack on a *zone transit* pattern:
``zone_entry`` followed by ``zone_exit`` with no communication gap in
between. The forecaster is trained on historical simple-event streams;
at runtime, as soon as a vessel enters a zone it emits a calibrated
probability that the transit will complete within the next few events —
the paper's "forecasting of complex events" capability.

Run:  python examples/event_forecasting.py
"""

from repro.cep import Atom, Neg, PatternEngine, PatternForecaster, Seq
from repro.cep.simple import SimpleEventConfig, SimpleEventExtractor
from repro.sources import MaritimeTrafficGenerator
from repro.sources.noise import SensorModel


def event_stream(seed: int):
    """Simple events from a traffic sample with occasional comms gaps."""
    generator = MaritimeTrafficGenerator(
        seed=seed,
        sensor=SensorModel(
            report_period_s=10.0,
            gps_sigma_m=15.0,
            gap_prob_per_report=0.002,
            gap_duration_s=400.0,
        ),
    )
    sample = generator.generate(n_vessels=14, max_duration_s=2 * 3600.0)
    extractor = SimpleEventExtractor(
        config=SimpleEventConfig(gap_threshold_s=180.0),
        zones=sample.world.zones,
    )
    events = extractor.process_all(sample.reports)
    # The forecaster subscribes to the event types its pattern can react
    # to; leaving high-frequency proximity chatter in the stream would
    # drown the per-step transition probabilities.
    relevant = {"zone_entry", "zone_exit", "gap_start", "gap_end",
                "stop_begin", "stop_end"}
    return [e for e in events if e.event_type in relevant]


def main() -> None:
    # The pattern: a clean zone transit — entry, then exit, with no
    # communication gap starting in between (a gap would make the track
    # untrustworthy), per entity, within 30 minutes.
    pattern = Seq((Atom("zone_entry"), Neg(Atom("gap_start")), Atom("zone_exit")))

    train_events = event_stream(seed=1)
    print(f"training stream: {len(train_events)} simple events")

    engine = PatternEngine(pattern, window_s=1800.0, name="zone_transit")
    forecaster = PatternForecaster(
        engine, horizon_events=10, threshold=0.2, refractory_events=15
    ).fit(train_events)

    print("\nNFA states and completion probability within 10 events:")
    for state in range(engine.nfa.n_states):
        marker = "accept" if state in engine.nfa.accepts else ""
        print(f"  state {state}: P={forecaster.completion_probability(state):.3f} {marker}")

    # Runtime on a fresh stream: the same engine instance must not be
    # reused across streams, so build a second engine for matching.
    test_events = event_stream(seed=2)
    match_engine = PatternEngine(pattern, window_s=1800.0, name="zone_transit")
    forecast_engine = PatternEngine(pattern, window_s=1800.0, name="zone_transit")
    runtime = PatternForecaster(
        forecast_engine, horizon_events=10, threshold=0.2, refractory_events=15
    ).fit(train_events)

    forecasts = []
    matches = []
    for event in test_events:
        matches.extend(match_engine.process(event))
        forecasts.extend(runtime.process(event))

    print(f"\ntest stream: {len(test_events)} events, "
          f"{len(matches)} completed transits, {len(forecasts)} forecasts")
    print("\n--- forecasts (first 10) ---")
    for forecast in forecasts[:10]:
        by = (f", expected by t≈{forecast.expected_by:.0f}s"
              if forecast.expected_by is not None else "")
        print(f"t={forecast.t:7.0f}s  vessel={forecast.key:<6} "
              f"P(transit completes within {forecast.horizon_events} events)"
              f"={forecast.probability:.2f}{by}")

    # Calibration: how many forecasted vessels actually completed?
    forecast_keys = {f.key for f in forecasts}
    match_keys = {m.key for m in matches}
    if forecast_keys:
        precision = len(forecast_keys & match_keys) / len(forecast_keys)
        print(f"\nforecast precision (vessel-level): {precision:.2f}")
    if match_keys:
        recall = len(forecast_keys & match_keys) / len(match_keys)
        print(f"forecast recall    (vessel-level): {recall:.2f}")


if __name__ == "__main__":
    main()

"""Quickstart: the whole datAcron pipeline in ~40 lines.

Generates a synthetic AIS fleet, runs it through the full pipeline
(cleaning → synopses → RDF store → event detection), then asks the store
two questions — one through the Python API, one through the textual
query language — and renders the traffic picture to SVG.

Run:  python examples/quickstart.py
"""

from repro import MaritimeTrafficGenerator, MobilityPipeline, parse_query
from repro.viz import SvgMap


def main() -> None:
    # 1. A synthetic source: 12 vessels criss-crossing an Aegean-like sea.
    sample = MaritimeTrafficGenerator(seed=7).generate(
        n_vessels=12, max_duration_s=2 * 3600.0
    )
    print(f"generated {len(sample.reports)} AIS reports from {sample.n_entities} vessels")

    # 2. The pipeline: in-situ compression, RDF transformation, parallel
    #    store, complex event detection — all per record, in event time.
    pipeline = MobilityPipeline(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=sample.world.zones,
    )
    result = pipeline.run(sample.reports)

    print(f"compression ratio : {result.compression_ratio:.1%}")
    print(f"triples stored    : {result.triples_stored}")
    print(f"simple events     : {len(result.simple_events)}")
    print(f"complex events    : {len(result.complex_events)}")
    print(f"per-record latency: p50 {result.end_to_end['p50_ms']:.3f} ms, "
          f"p95 {result.end_to_end['p95_ms']:.3f} ms")
    print(f"throughput        : {result.throughput_rps:,.0f} reports/s")

    # 3a. Query through the Python API: one vessel's stored trajectory.
    entity_id = next(iter(sample.truth))
    trajectory = pipeline.executor.entity_trajectory(entity_id)
    print(f"{entity_id}: {len(trajectory)} synopsis nodes span "
          f"{trajectory.duration / 60:.0f} minutes")

    # 3b. Query through the textual language: nodes in a box, first hour.
    query = parse_query(
        """
        SELECT ?n ?t WHERE {
          ?n rdf:type dac:SemanticNode .
          ?n time:inSeconds ?t .
          FILTER ST_WITHIN(?n, 23.0, 37.4, 25.0, 38.6, 0, 3600)
        }
        """
    )
    rows, report = pipeline.executor.execute(query)
    print(f"textual query: {len(rows)} nodes near Piraeus in hour 1 "
          f"(scanned {report.partitions_scanned}/{report.partitions_total} "
          f"partitions, pruning {report.pruning_ratio:.0%})")

    # 4. Visual analytics: the traffic picture as a standalone SVG.
    svg = SvgMap(sample.world.bbox, width_px=900)
    for zone in sample.world.zones:
        svg.add_zone(zone)
    svg.add_trajectories(sample.truth.values())
    for event in result.complex_events[:50]:
        svg.add_event(event)
    svg.save("quickstart_map.svg")
    print("wrote quickstart_map.svg")


if __name__ == "__main__":
    main()

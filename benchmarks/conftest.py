"""Shared fixtures and table emission for the experiment benchmarks.

Every benchmark prints the table its experiment reproduces *and* appends
it to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can be
refreshed from the files after a run.
"""

from __future__ import annotations

import os

import pytest

from repro.sources.generators import AviationTrafficGenerator, MaritimeTrafficGenerator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, title: str, headers: list[str], rows: list[list]) -> str:
    """Format a results table; print it and persist it under results/."""
    widths = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row
        ]
        str_rows.append(cells)
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    return text


@pytest.fixture(scope="session")
def maritime_fleet():
    """The standard maritime workload: 12 vessels, 2 hours."""
    return MaritimeTrafficGenerator(seed=101).generate(
        n_vessels=12, max_duration_s=2 * 3600.0
    )


@pytest.fixture(scope="session")
def maritime_history():
    """A disjoint historical fleet for training pattern models."""
    return MaritimeTrafficGenerator(seed=202).generate(
        n_vessels=16, max_duration_s=2 * 3600.0
    )


@pytest.fixture(scope="session")
def aviation_fleet():
    """The standard aviation workload: 10 flights."""
    return AviationTrafficGenerator(seed=303).generate(n_flights=10)

"""E4 — "parallel query processing ... parallel RDF stores, using
sophisticated RDF partitioning algorithms" (paper §2).

Loads the same workload under hash / grid / Hilbert partitioning across
partition counts and measures: balance (max/mean), pruning on selective
spatio-temporal queries, and simulated parallel speedup; plus a query-mix
table (selective range, broad range, trajectory retrieval, kNN).

Expected shape: hash balances best but never prunes; grid prunes best
but skews under concentrated traffic; Hilbert (sampled) holds both ends.
Spatial strategies win on selective ST queries; everything converges on
broad scans.
"""

import time

import pytest

from benchmarks.conftest import emit_table
from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.query.executor import QueryExecutor
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import (
    GridPartitioner,
    HashPartitioner,
    HilbertPartitioner,
    QuadTreePartitioner,
)


def _build_store(sample, grid, partitioner):
    transformer = RdfTransformer(st_grid=grid)
    store = ParallelRDFStore(partitioner)
    for entity in sample.registry:
        store.add_document(transformer.entity_to_triples(entity))
    for report in sample.reports:
        store.add_document(transformer.report_to_triples(report))
    return store


def _partitioners(grid, n, sample_keys):
    return [
        HashPartitioner(n),
        GridPartitioner(grid, n),
        HilbertPartitioner(grid, n, sample_keys=sample_keys),
        QuadTreePartitioner(grid, n, sample_keys=sample_keys),
    ]


def test_e4_partitioning_strategies(benchmark, maritime_fleet):
    sample = maritime_fleet
    grid = GeoGrid(bbox=sample.world.bbox, nx=32, ny=32)
    transformer = RdfTransformer(st_grid=grid)
    sample_keys = [
        transformer.st_key(r.lon, r.lat, r.t) for r in sample.reports[::10]
    ]
    selective = BBox(23.4, 37.6, 24.2, 38.1)  # around the Piraeus approaches

    rows = []
    for n in (2, 4, 8, 16):
        for partitioner in _partitioners(grid, n, sample_keys):
            store = _build_store(sample, grid, partitioner)
            executor = QueryExecutor(store)
            stats = store.stats()
            nodes, report = executor.range_query(selective, 0.0, 3600.0)
            rows.append([
                partitioner.name,
                n,
                stats.imbalance,
                report.partitions_scanned,
                report.pruning_ratio,
                report.makespan_s * 1000.0,
                report.simulated_speedup,
                len(nodes),
            ])
    emit_table(
        "e4_partitioning",
        "E4a: partitioning strategies × partition count "
        "(selective ST range query)",
        ["strategy", "parts", "imbalance", "scanned", "pruning",
         "makespan_ms", "sim_speedup", "results"],
        rows,
    )

    # Results must be identical across strategies (same workload).
    counts = {row[7] for row in rows}
    assert len(counts) == 1

    # -- query mix on the Hilbert/8 store -----------------------------------
    store = _build_store(sample, grid, HilbertPartitioner(grid, 8, sample_keys=sample_keys))
    executor = QueryExecutor(store)
    broad = sample.world.bbox
    entity_id = next(iter(sample.truth))

    mix_rows = []

    def timed(label, fn):
        started = time.perf_counter()
        out = fn()
        elapsed = (time.perf_counter() - started) * 1000.0
        mix_rows.append([label, elapsed, out])

    timed("range_selective", lambda: len(executor.range_query(selective, 0, 3600)[0]))
    timed("range_broad", lambda: len(executor.range_query(broad)[0]))
    timed("trajectory", lambda: len(executor.entity_trajectory(entity_id)))
    timed("knn_10", lambda: len(executor.knn_nodes(23.62, 37.94, k=10)))
    emit_table(
        "e4_query_mix",
        "E4b: query mix on the Hilbert/8 store",
        ["query", "wall_ms", "results"],
        mix_rows,
    )

    benchmark(lambda: executor.range_query(selective, 0.0, 3600.0))

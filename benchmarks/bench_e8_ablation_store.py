"""E8 (ablation) — what the "sophisticated" parts of the store buy.

Two ablations on the same workload and the same selective query:

- **spatio-temporal key off**: the transformer emits no st-key triples,
  so spatial partitioners degrade to hash routing and pruning vanishes.
- **partition-local strategy off**: the executor is forced down the
  global path (no pruning, single-threaded scan), isolating what the
  subject-star + pruning machinery contributes.

Expected shape: removing either ingredient costs most of the selective-
query speedup; result counts stay identical (ablations affect cost, not
correctness).
"""

import time

import pytest

from benchmarks.conftest import emit_table
from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.query.ast import STWithinFilter, SelectQuery, TriplePattern, Variable
from repro.query.executor import QueryExecutor
from repro.rdf import vocabulary as V
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import HilbertPartitioner


def _load(sample, grid, with_st_keys: bool):
    transformer = RdfTransformer(st_grid=grid if with_st_keys else None)
    store = ParallelRDFStore(HilbertPartitioner(grid, 8))
    for report in sample.reports:
        store.add_document(transformer.report_to_triples(report))
    return store


def _selective_query(box):
    n = Variable("n")
    t = Variable("t")
    return SelectQuery(
        select=(n,),
        patterns=(
            TriplePattern(n, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
            TriplePattern(n, V.PROP_TIMESTAMP, t),
        ),
        filters=(STWithinFilter(n, box, 0.0, 3600.0),),
    )


def test_e8_store_ablations(benchmark, maritime_fleet):
    sample = maritime_fleet
    grid = GeoGrid(bbox=sample.world.bbox, nx=32, ny=32)
    box = BBox(23.4, 37.6, 24.2, 38.1)
    query = _selective_query(box)

    rows = []

    # Full system.
    store_full = _load(sample, grid, with_st_keys=True)
    executor = QueryExecutor(store_full)
    started = time.perf_counter()
    rows_full, report_full = executor.execute(query)
    wall_full = (time.perf_counter() - started) * 1000.0
    rows.append([
        "full (st-key + partition-local)",
        report_full.partitions_scanned,
        report_full.pruning_ratio,
        report_full.makespan_s * 1000.0,
        wall_full,
        len(rows_full),
    ])

    # Ablation 1: no spatio-temporal keys → hash-like placement, no pruning.
    store_nokey = _load(sample, grid, with_st_keys=False)
    executor_nokey = QueryExecutor(store_nokey)
    started = time.perf_counter()
    rows_nokey, report_nokey = executor_nokey.execute(query)
    wall_nokey = (time.perf_counter() - started) * 1000.0
    rows.append([
        "no st-key encoding",
        report_nokey.partitions_scanned,
        report_nokey.pruning_ratio,
        report_nokey.makespan_s * 1000.0,
        wall_nokey,
        len(rows_nokey),
    ])

    # Ablation 2: force the global path on the full store.
    started = time.perf_counter()
    global_rows = executor._execute_global(query, type(report_full)(partitions_total=8))
    projected = [{v: r[v] for v in query.select if v in r} for r in global_rows]
    wall_global = (time.perf_counter() - started) * 1000.0
    rows.append([
        "global strategy (no pruning)",
        8,
        0.0,
        wall_global,
        wall_global,
        len(projected),
    ])

    emit_table(
        "e8_ablation_store",
        "E8: store ablations on a selective spatio-temporal query",
        ["variant", "scanned", "pruning", "makespan_ms", "wall_ms", "results"],
        rows,
    )

    # Correctness is invariant; the full system prunes, the ablations do not.
    assert len(rows_full) == len(rows_nokey) == len(projected)
    assert report_full.pruning_ratio > 0.0
    assert report_nokey.pruning_ratio == 0.0

    benchmark(lambda: executor.execute(query))


def test_e8b_planner_ablation(benchmark, maritime_fleet):
    """E8b: what pattern ordering buys the join.

    The same anchored query (one entity's nodes and their attributes)
    runs under three planners: the shape heuristic, the statistics-based
    estimator, and an adversarial worst-case order (the selective anchor
    pattern evaluated last). Results are identical; wall time is not.
    """
    from repro.query.ast import SelectQuery, TriplePattern, Variable
    from repro.query.planner import StatisticsEstimator, default_estimator, order_patterns
    from repro.rdf.transform import entity_iri

    sample = maritime_fleet
    grid = GeoGrid(bbox=sample.world.bbox, nx=32, ny=32)
    store = _load(sample, grid, with_st_keys=True)
    entity_id = next(iter(sample.truth))

    n, t, lon = Variable("n"), Variable("t"), Variable("lon")
    anchor = TriplePattern(n, V.PROP_OF_MOVING_OBJECT, entity_iri(entity_id))
    broad_t = TriplePattern(n, V.PROP_TIMESTAMP, t)
    broad_lon = TriplePattern(n, V.PROP_LON, lon)
    query = SelectQuery(select=(n, t), patterns=(anchor, broad_t, broad_lon))

    executor = QueryExecutor(store)

    def run_with(estimator):
        ordered = order_patterns(query.patterns, estimator=estimator)
        started = time.perf_counter()
        count = sum(
            1 for __row in executor._join(ordered, {}, partitions=None)
        )
        return (count, (time.perf_counter() - started) * 1000.0, ordered[0] is anchor)

    def worst_case(pattern, bound):
        return -default_estimator(pattern, bound)  # invert: broadest first

    rows = []
    for label, estimator in (
        ("shape heuristic", default_estimator),
        ("statistics", StatisticsEstimator(store)),
        ("worst-case order", worst_case),
    ):
        count, wall_ms, anchored_first = run_with(estimator)
        rows.append([label, count, anchored_first, wall_ms])
    emit_table(
        "e8b_planner",
        "E8b: pattern-order ablation on an entity-anchored join",
        ["planner", "results", "anchor_first", "wall_ms"],
        rows,
    )
    counts = {row[1] for row in rows}
    assert len(counts) == 1  # identical results
    # Both real planners put the selective anchor first; worst-case not.
    assert rows[0][2] and rows[1][2] and not rows[2][2]
    assert rows[2][3] > rows[0][3]

    benchmark(lambda: run_with(default_estimator))

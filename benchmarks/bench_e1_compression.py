"""E1 — "high rates of data compression without affecting the quality of
analytics" (paper §2, in-situ processing).

Sweeps the synopses dead-reckoning threshold over maritime and aviation
fleets, reporting compression ratio vs reconstruction fidelity, with the
offline Douglas-Peucker baseline at the matching spatial tolerance.

Expected shape: ≥90% compression at tens-of-metres RMSE; fidelity
degrades smoothly as the threshold grows; offline DP compresses slightly
harder at equal tolerance (it sees the whole track).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_table
from repro.insitu.douglas_peucker import douglas_peucker
from repro.insitu.quality import evaluate_compression
from repro.insitu.synopses import SynopsesConfig, compress_trajectory

THRESHOLDS_M = [25.0, 50.0, 100.0, 200.0, 400.0]


def _sweep_rows(trajectories, label):
    rows = []
    for threshold in THRESHOLDS_M:
        config = SynopsesConfig(dr_error_threshold_m=threshold)
        ratios, rmses, maxes, speed_rmses, length_errs = [], [], [], [], []
        dp_ratios, dp_rmses = [], []
        for truth in trajectories:
            compressed, ratio = compress_trajectory(truth, config)
            quality = evaluate_compression(truth, compressed)
            ratios.append(ratio)
            rmses.append(quality.rmse_m)
            maxes.append(quality.max_error_m)
            speed_rmses.append(quality.speed_rmse_mps)
            length_errs.append(quality.length_error_ratio)
            dp = douglas_peucker(truth, threshold)
            dp_quality = evaluate_compression(truth, dp)
            dp_ratios.append(dp_quality.compression_ratio)
            dp_rmses.append(dp_quality.rmse_m)
        rows.append([
            label,
            int(threshold),
            float(np.mean(ratios)),
            float(np.mean(rmses)),
            float(np.mean(maxes)),
            float(np.mean(speed_rmses)),
            float(np.mean(length_errs)),
            float(np.mean(dp_ratios)),
            float(np.mean(dp_rmses)),
        ])
    return rows


def test_e1_compression_quality_sweep(benchmark, maritime_fleet, aviation_fleet):
    maritime = list(maritime_fleet.truth.values())
    aviation = list(aviation_fleet.truth.values())

    rows = _sweep_rows(maritime, "maritime") + _sweep_rows(aviation, "aviation")
    emit_table(
        "e1_compression",
        "E1: synopses compression vs analytics quality "
        "(DP = offline Douglas-Peucker baseline)",
        ["domain", "thr_m", "compress", "rmse_m", "max_m",
         "speed_rmse", "len_err", "dp_compress", "dp_rmse_m"],
        rows,
    )

    # The headline claim must hold at the default operating point.
    config = SynopsesConfig(dr_error_threshold_m=100.0)
    sample = maritime[0]
    compressed, ratio = compress_trajectory(sample, config)
    quality = evaluate_compression(sample, compressed)
    assert ratio > 0.9
    assert quality.rmse_m < 100.0

    benchmark(compress_trajectory, sample, config)


def test_e1b_cross_source_fusion(benchmark, maritime_fleet):
    """E1b: cross-source fusion — the *integration* half of the in-situ
    claim ("compress and integrate data at high rates").

    The fleet is observed by a second (satellite) provider; the table
    reports the redundant load suppressed by precision-ranked
    near-duplicate fusion at several suppression radii, with the
    reconstruction fidelity of the fused stream unchanged (the suppressed
    reports were echoes, not information).
    """
    import numpy as np

    from repro.insitu.fusion import FusionConfig, fuse_streams
    from repro.model.reports import ReportSource
    from repro.sources.noise import SensorModel

    rng = np.random.default_rng(31)
    satellite_sensor = SensorModel(report_period_s=45.0, gps_sigma_m=80.0)
    satellite = []
    for truth in maritime_fleet.truth.values():
        satellite.extend(
            satellite_sensor.observe(truth, source=ReportSource.AIS_SATELLITE, rng=rng)
        )
    satellite.sort(key=lambda r: r.t)
    terrestrial = list(maritime_fleet.reports)
    total = len(terrestrial) + len(satellite)

    rows = []
    for radius in (100.0, 300.0, 1000.0):
        fused, fuser = fuse_streams(
            [terrestrial, satellite], FusionConfig(window_s=10.0, radius_m=radius)
        )
        rows.append([
            int(radius),
            total,
            len(fused),
            fuser.suppressed,
            fuser.suppressed / total,
        ])
    emit_table(
        "e1b_fusion",
        "E1b: cross-source near-duplicate fusion (terrestrial + satellite AIS)",
        ["radius_m", "reports_in", "fused_out", "suppressed", "load_cut"],
        rows,
    )
    # Wider radii suppress monotonically more.
    cuts = [row[4] for row in rows]
    assert cuts == sorted(cuts)
    assert cuts[-1] > 0.2

    benchmark(
        lambda: fuse_streams(
            [terrestrial, satellite], FusionConfig(window_s=10.0, radius_m=300.0)
        )
    )

"""E11 — serving-tier load: latency SLOs under concurrent clients + ingest.

The datAcron architecture promises an *always-on* analytics surface:
operational clients query latest states, forecasts and spatial ranges
while the ingest stream keeps running. This benchmark stands up a warm
sharded :class:`~repro.serving.runtime.ServingRuntime`, fronts it with
the admission-controlled :class:`~repro.serving.app.ServingApp`, and
drives three seeded arms of the closed-loop harness
(:mod:`repro.serving.loadgen`):

- **closed** — hundreds of concurrent closed-loop clients (>= 200 even
  in ``--quick``) with a writer arm ingesting batches mid-run; every
  Nth request per client runs the cached-vs-fresh digest differential.
- **open** — the same request volume on a seeded Poisson arrival
  schedule (the arrival model that exposes queueing collapse).
- **overload** — a deliberately tiny admission capacity, proving the
  per-client controller sheds deterministically with 429s instead of
  queueing without bound.

Gates (all must hold; the process exits non-zero otherwise):

1. server-side per-endpoint p50/p99 against
   :data:`repro.obs.slo.DEFAULT_SERVING_BUDGETS` (the E11 SLO);
2. zero digest mismatches between cached and fresh executions under
   concurrent ingest;
3. cache hit rate of the closed arm at or above ``CACHE_HIT_FLOOR``;
4. the overload arm actually sheds (and every shed is a 429 counted on
   the registry).

Artifacts: ``benchmarks/results/e11_serving.txt`` (table) and
``benchmarks/results/BENCH_e11_serving.json`` (the ``bench.v1`` report
CI uploads). ``--write-baseline`` refreshes
``benchmarks/baselines/BENCH_baseline_e11.json``.

Standalone::

    PYTHONPATH=src python -m benchmarks.bench_e11_serving --quick
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os

from benchmarks.conftest import RESULTS_DIR, emit_table
from repro.core.pipeline import PipelineSpec
from repro.obs.slo import DEFAULT_SERVING_BUDGETS, SLOChecker
from repro.runtime.backpressure import AdmissionConfig
from repro.serving import (
    AdmissionPolicyConfig,
    LoadConfig,
    LoadReport,
    ServingApp,
    ServingConfig,
    ServingRuntime,
    Workload,
    run_load,
)
from repro.sources.generators import MaritimeTrafficGenerator

SCHEMA = "bench.v1"
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "BENCH_baseline_e11.json"
)
#: Closed-arm cache hit rate must not fall below this (the workload is
#: seeded and repetitive by construction; a healthy cache stays well
#: above it even with the writer arm invalidating mid-run).
CACHE_HIT_FLOOR = 0.25
#: Modeled downstream service wait per request (same role as E2b's
#: per-record service time): what makes concurrency real in one process.
SERVICE_TIME_S = 0.001
#: Textual queries in the request mix (valid under repro.query's grammar).
QUERIES = (
    "SELECT ?o WHERE { ?n dac:ofMovingObject ?o . }",
    "SELECT DISTINCT ?o WHERE { ?n dac:ofMovingObject ?o . }",
    "SELECT ?t WHERE { ?n time:inSeconds ?t . } ORDER BY ?t LIMIT 25",
)


def build_serving(quick: bool):
    """A warm runtime + the reports held back for the writer arm."""
    n_vessels = 10 if quick else 24
    duration = 1800.0 if quick else 3600.0
    sample = MaritimeTrafficGenerator(seed=211).generate(
        n_vessels=n_vessels, max_duration_s=duration
    )
    reports = sorted(sample.reports, key=lambda r: r.t)
    spec = PipelineSpec(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=tuple(sample.world.zones),
    )
    runtime = ServingRuntime(spec, ServingConfig(n_shards=4))
    warm = len(reports) * 2 // 3
    runtime.ingest(reports[:warm])
    bbox = sample.world.bbox
    workload = Workload(
        entity_ids=tuple(runtime.entity_ids()),
        bbox=(bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat),
        queries=QUERIES,
    )
    return runtime, workload, reports[warm:], {
        "generator": "maritime",
        "seed": 211,
        "n_vessels": n_vessels,
        "max_duration_s": duration,
        "records": len(reports),
        "warm_records": warm,
    }


def writer_batches(held_back, n_batches: int, size: int):
    return [
        held_back[i * size : (i + 1) * size]
        for i in range(n_batches)
        if held_back[i * size : (i + 1) * size]
    ]


def run_closed_arm(runtime, workload, held_back, quick: bool) -> LoadReport:
    app = ServingApp(runtime, service_time_s=SERVICE_TIME_S)
    config = LoadConfig(
        clients=200 if quick else 1000,
        requests_per_client=6 if quick else 10,
        mode="closed",
        seed=2017,
        verify_every=8,
    )
    return asyncio.run(
        run_load(
            app,
            workload,
            config,
            writer_batches=writer_batches(held_back, 6, 60 if quick else 200),
        )
    )


def run_open_arm(runtime, workload, quick: bool) -> LoadReport:
    app = ServingApp(runtime, service_time_s=SERVICE_TIME_S)
    config = LoadConfig(
        clients=200 if quick else 1000,
        requests_per_client=6 if quick else 10,
        mode="open",
        seed=2018,
        arrival_rate_rps=2000.0,
        verify_every=8,
    )
    return asyncio.run(run_load(app, workload, config))


def run_overload_arm(runtime, workload) -> LoadReport:
    """Tiny admission capacity + aggressive controller window: the point
    is deterministic shedding, not throughput."""
    app = ServingApp(
        runtime,
        admission=AdmissionPolicyConfig(
            capacity=4, controller=AdmissionConfig(window=4, seed=2019)
        ),
        service_time_s=0.004,
    )
    config = LoadConfig(
        clients=64, requests_per_client=8, mode="closed", seed=2019, verify_every=0
    )
    return asyncio.run(run_load(app, workload, config))


def _headline(report: LoadReport) -> dict:
    """The arm's bench.v1 latency columns: the state endpoint (the
    headline interactive lookup), falling back to the slowest endpoint
    if the mix somehow skipped it."""
    summary = report.latency.get("state")
    if summary is None and report.latency:
        summary = max(report.latency.values(), key=lambda s: s["p99_ms"])
    return summary or {"p50_ms": None, "p95_ms": None, "p99_ms": None}


def arm_record(name: str, report: LoadReport) -> dict:
    headline = _headline(report)
    return {
        "name": name,
        "batch_size": None,
        "workers": 4,
        "dispatch": report.mode,
        "records_per_s": report.requests_per_s,
        "p50_ms": headline["p50_ms"],
        "p95_ms": headline["p95_ms"],
        "p99_ms": headline["p99_ms"],
        "wall_s": report.wall_s,
        "clients": report.clients,
        "requests": report.requests,
        "statuses": {str(k): v for k, v in report.statuses.items()},
        "shed": report.shed,
        "verify_pairs": report.verify_pairs,
        "digest_mismatches": report.digest_mismatches,
        "ingest_reports": report.ingest_reports,
        "endpoints": report.latency,
    }


def collect(quick: bool, out_dir: str = RESULTS_DIR) -> tuple[dict, list[str]]:
    """Run all arms, emit artifacts, evaluate every gate."""
    runtime, workload, held_back, workload_meta = build_serving(quick)
    closed = run_closed_arm(runtime, workload, held_back, quick)
    closed_hit_rate = runtime.cache_hit_rate()
    open_loop = run_open_arm(runtime, workload, quick)
    overload = run_overload_arm(runtime, workload)

    failures: list[str] = []

    # Gate 1: server-side endpoint latencies against the E11 SLO budgets.
    checker = SLOChecker(DEFAULT_SERVING_BUDGETS)
    slo = checker.report(runtime.metrics)
    failures.extend(
        f"SLO: {v['metric']} {v['percentile']} {v['observed_ms']:.2f} ms "
        f"over budget {v['budget_ms']:.2f} ms"
        for v in slo["violations"]
    )

    # Gate 2: the cache never served what a fresh execution disowns.
    for name, report in (("closed", closed), ("open", open_loop)):
        if report.verify_pairs == 0:
            failures.append(f"{name} arm ran no digest differentials")
        if report.digest_mismatches:
            failures.append(
                f"{name} arm: {report.digest_mismatches} cached-vs-fresh "
                "digest mismatches under concurrent ingest"
            )

    # Gate 3: the result cache pulled its weight on the repetitive mix.
    if closed_hit_rate < CACHE_HIT_FLOOR:
        failures.append(
            f"closed-arm cache hit rate {closed_hit_rate:.2f} below the "
            f"{CACHE_HIT_FLOOR:.2f} floor"
        )

    # Gate 4: overload sheds, and every shed is a counted 429.
    if overload.shed == 0:
        failures.append("overload arm shed nothing at capacity 4")
    counted_429 = runtime.metrics.counter("serving.responses.429").value
    if counted_429 != overload.shed:
        failures.append(
            f"obs counter serving.responses.429 = {counted_429} but the "
            f"overload arm observed {overload.shed} sheds"
        )

    rows = []
    for name, report in (
        ("closed", closed),
        ("open", open_loop),
        ("overload", overload),
    ):
        headline = _headline(report)
        rows.append(
            [
                name,
                report.clients,
                report.requests,
                report.shed,
                report.ingest_reports,
                headline["p50_ms"] or 0.0,
                headline["p95_ms"] or 0.0,
                headline["p99_ms"] or 0.0,
                report.requests_per_s,
                report.wall_s,
            ]
        )
    emit_table(
        "e11_serving",
        "E11 (serving): seeded load over the warm sharded runtime "
        f"(state-endpoint client latency, cache hit rate {closed_hit_rate:.2f})",
        ["arm", "clients", "requests", "shed", "ingested",
         "p50_ms", "p95_ms", "p99_ms", "req_per_s", "wall_s"],
        rows,
    )

    bench = {
        "schema": SCHEMA,
        "experiment": "e11_serving",
        "quick": quick,
        "workload": workload_meta,
        "arms": [
            arm_record("closed", closed),
            arm_record("open", open_loop),
            arm_record("overload", overload),
        ],
        "cache_hit_rate": closed_hit_rate,
        "slo": slo,
        "server_histograms": {
            name: summary
            for name, summary in runtime.metrics.histogram_summaries().items()
            if name.startswith("serving.request.")
        },
    }
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_e11_serving.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return bench, failures


def check_serving_regression(current: dict, baseline: dict) -> list[str]:
    """Scale-free regression gates against the committed E11 baseline.

    Host throughput cancels out of both gated quantities: the cache hit
    rate is a pure workload property, and the shed behavior of the
    overload arm is seeded. The absolute latency budgets already gate in
    :func:`collect` via the SLO checker.
    """
    failures = []
    tolerance = 0.25
    floor = baseline["cache_hit_rate"] * (1.0 - tolerance)
    if current["cache_hit_rate"] < floor:
        failures.append(
            f"cache hit rate {current['cache_hit_rate']:.2f} fell below "
            f"{floor:.2f} (baseline {baseline['cache_hit_rate']:.2f} - "
            f"{tolerance:.0%})"
        )
    def overload_shed(report):
        for arm in report["arms"]:
            if arm["name"] == "overload":
                return arm["shed"]
        return 0
    if overload_shed(baseline) > 0 and overload_shed(current) == 0:
        failures.append("overload arm stopped shedding (baseline shed > 0)")
    return failures


def test_e11_serving_quick_gates():
    """The full gate battery at quick scale (>= 200 concurrent clients)."""
    bench, failures = collect(quick=True)
    assert not failures, "\n".join(failures)
    closed = bench["arms"][0]
    assert closed["clients"] >= 200
    assert closed["digest_mismatches"] == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI scale (200 clients)")
    parser.add_argument("--out-dir", default=RESULTS_DIR)
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument(
        "--check",
        action="store_true",
        help="also gate scale-free quantities against the committed baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="(re)write the committed E11 baseline from this run",
    )
    args = parser.parse_args()

    bench, failures = collect(args.quick, out_dir=args.out_dir)

    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {args.baseline}")

    if args.check and os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures.extend(check_serving_regression(bench, baseline))

    closed = bench["arms"][0]
    print(
        f"\nE11 closed loop: {closed['clients']} clients, "
        f"{closed['requests']} requests at {closed['records_per_s']:.0f} req/s, "
        f"state p99 {closed['p99_ms']:.2f} ms, "
        f"cache hit rate {bench['cache_hit_rate']:.2f}, "
        f"{closed['digest_mismatches']} digest mismatches"
    )
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("E11 serving gates: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

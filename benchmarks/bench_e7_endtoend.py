"""E7 — the "integrated exploitation of voluminous and heterogeneous
data-at-rest and data-in-motion" concept, end to end (paper §1–2).

Scales the fleet and runs the complete pipeline (cleaning → synopses →
RDF store → events), reporting throughput, latency, compression and
analytics output at each scale; then verifies stream/archive integration
by answering one query over the combined store.

Expected shape: per-record latency stays flat (sub-ms) as the fleet
grows; compression and event counts scale with traffic.
"""

import pytest

from benchmarks.conftest import emit_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import MobilityPipeline
from repro.geo.bbox import BBox
from repro.sources.generators import MaritimeTrafficGenerator


def _run(n_vessels: int):
    sample = MaritimeTrafficGenerator(seed=404 + n_vessels).generate(
        n_vessels=n_vessels, max_duration_s=3600.0
    )
    pipeline = MobilityPipeline(
        bbox=sample.world.bbox,
        config=PipelineConfig(),
        registry=sample.registry,
        zones=sample.world.zones,
    )
    result = pipeline.run(sample.reports)
    return (sample, pipeline, result)


def test_e7_fleet_scaling(benchmark):
    rows = []
    keep = None
    for n_vessels in (5, 10, 20, 40):
        sample, pipeline, result = _run(n_vessels)
        rows.append([
            n_vessels,
            result.reports_in,
            result.throughput_rps,
            result.end_to_end["p50_ms"],
            result.end_to_end["p95_ms"],
            result.compression_ratio,
            result.triples_stored,
            len(result.simple_events),
            len(result.complex_events),
        ])
        if n_vessels == 20:
            keep = (sample, pipeline, result)
    emit_table(
        "e7_endtoend",
        "E7: end-to-end pipeline scaling with fleet size (1 h of traffic)",
        ["vessels", "reports", "rps", "p50_ms", "p95_ms",
         "compression", "triples", "simple_ev", "complex_ev"],
        rows,
    )

    # Latency must stay in the ms class at every scale.
    assert all(row[4] < 10.0 for row in rows)

    # Integrated query over the populated store (data-at-rest now).
    sample, pipeline, result = keep
    box = sample.world.bbox
    query_box = BBox(
        box.min_lon + box.width * 0.3,
        box.min_lat + box.height * 0.3,
        box.min_lon + box.width * 0.7,
        box.min_lat + box.height * 0.7,
    )
    nodes, report = pipeline.executor.range_query(query_box, 0.0, 1800.0)
    emit_table(
        "e7_integrated_query",
        "E7b: spatio-temporal query over the integrated store",
        ["results", "scanned", "pruning", "makespan_ms"],
        [[len(nodes), report.partitions_scanned, report.pruning_ratio,
          report.makespan_s * 1000.0]],
    )

    benchmark.pedantic(lambda: _run(10), rounds=3, iterations=1)

"""E3 — "link discovery techniques for automatically computing
associations between data from heterogeneous sources" (paper §2).

Compares blocked link discovery against the naive all-pairs baseline on
growing workloads: candidate comparisons, runtime, pruning ratio — with
recall verified to be exactly 1.0 (blocking is lossless by construction).

Expected shape: ≥10x candidate reduction at recall 1.0; speedup grows
with workload size (naive is quadratic, blocking near-linear).
"""

import time

import pytest

from benchmarks.conftest import emit_table
from repro.linkage.discovery import (
    items_from_reports,
    proximity_links_blocked,
    proximity_links_naive,
    zone_links_blocked,
    zone_links_naive,
)
from repro.linkage.evaluation import score_links

RADIUS_M = 3_000.0
MAX_DT_S = 60.0


def test_e3_blocking_vs_naive(benchmark, maritime_fleet):
    all_items = items_from_reports(maritime_fleet.reports)
    rows = []
    for n in (500, 1000, 2000):
        items = all_items[:n]
        started = time.perf_counter()
        naive, candidates_naive = proximity_links_naive(items, RADIUS_M, MAX_DT_S)
        naive_s = time.perf_counter() - started
        started = time.perf_counter()
        blocked, candidates_blocked = proximity_links_blocked(items, RADIUS_M, MAX_DT_S)
        blocked_s = time.perf_counter() - started
        score = score_links(blocked, naive, candidates_blocked, candidates_naive)
        rows.append([
            n,
            len(naive),
            candidates_naive,
            candidates_blocked,
            score.pruning_ratio,
            score.precision,
            score.recall,
            naive_s,
            blocked_s,
            naive_s / blocked_s if blocked_s > 0 else float("inf"),
        ])
        assert score.recall == 1.0
        assert score.precision == 1.0
    emit_table(
        "e3_linkage_proximity",
        f"E3a: proximity link discovery, radius {RADIUS_M:.0f} m / {MAX_DT_S:.0f} s",
        ["items", "links", "cand_naive", "cand_blocked", "pruning",
         "precision", "recall", "naive_s", "blocked_s", "speedup"],
        rows,
    )

    # Zone containment linking.
    items = all_items[:2000]
    zones = maritime_fleet.world.zones
    naive_z, cand_naive_z = zone_links_naive(items, zones)
    blocked_z, cand_blocked_z = zone_links_blocked(items, zones)
    score_z = score_links(blocked_z, naive_z, cand_blocked_z, cand_naive_z)
    emit_table(
        "e3_linkage_zones",
        "E3b: zone containment linking (bbox pre-filter vs exact-only)",
        ["items", "zones", "links", "cand_naive", "cand_blocked", "pruning", "recall"],
        [[len(items), len(zones), len(blocked_z), cand_naive_z,
          cand_blocked_z, score_z.pruning_ratio, score_z.recall]],
    )
    assert score_z.recall == 1.0

    benchmark(proximity_links_blocked, all_items[:1000], RADIUS_M, MAX_DT_S)

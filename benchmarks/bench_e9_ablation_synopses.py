"""E9 (ablation) — which critical-point detectors matter for quality.

Disables each critical-point detector in turn (and all of them at once,
leaving only the dead-reckoning error bound) and re-measures compression
ratio and reconstruction fidelity on the maritime fleet, plus a
semantic-fidelity probe: can the zone-intrusion scenario's entry/exit
events still be recovered from the synopsis?

Expected shape: disabling individual detectors raises compression a
little and costs fidelity where that detector's movement feature occurs
(turns hurt the most on route traffic); the error bound alone still
bounds the error but loses the semantic annotations downstream analytics
read.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_table
from repro.cep.evaluation import match_events, promote
from repro.cep.simple import SimpleEventExtractor
from repro.insitu.critical import CriticalPointType
from repro.insitu.quality import evaluate_compression
from repro.insitu.synopses import SynopsesConfig, SynopsesGenerator, compress_trajectory
from repro.sources.scenarios import zone_intrusion_scenario

ALL = frozenset(CriticalPointType)


def _variant_configs():
    yield ("full", SynopsesConfig(enabled_critical=ALL))
    for kind in (
        CriticalPointType.TURN,
        CriticalPointType.SPEED_CHANGE,
        CriticalPointType.STOP_START,
        CriticalPointType.GAP_END,
    ):
        yield (
            f"no_{kind.value}",
            SynopsesConfig(enabled_critical=ALL - {kind}),
        )
    yield (
        "error_bound_only",
        SynopsesConfig(enabled_critical=frozenset({CriticalPointType.TRACK_START})),
    )


def test_e9_synopses_ablation(benchmark, maritime_fleet):
    # Fleet routes are largely straight; add the loitering and rendezvous
    # scenario trajectories so the stop-related detectors have real
    # movement features to preserve.
    from repro.sources.scenarios import loitering_scenario, rendezvous_scenario

    trajectories = list(maritime_fleet.truth.values())
    trajectories.extend(loitering_scenario().truth.values())
    trajectories.extend(rendezvous_scenario().truth.values())
    rows = []
    for label, config in _variant_configs():
        ratios, rmses, maxes = [], [], []
        for truth in trajectories:
            compressed, ratio = compress_trajectory(truth, config)
            quality = evaluate_compression(truth, compressed)
            ratios.append(ratio)
            rmses.append(quality.rmse_m)
            maxes.append(quality.max_error_m)
        rows.append([
            label,
            float(np.mean(ratios)),
            float(np.mean(rmses)),
            float(np.mean(maxes)),
        ])
    emit_table(
        "e9_ablation_synopses",
        "E9a: critical-point detector ablations (maritime fleet)",
        ["variant", "compression", "rmse_m", "max_m"],
        rows,
    )

    # Semantic fidelity: zone entry/exit recovered from the synopsis.
    # Detection on the synopsis is delayed by up to max_silence_s compared
    # to the full-rate stream (which is why the pipeline detects events on
    # the full stream and persists only the synopsis) — so events are
    # scored with a window relaxed by max_silence_s, and the added
    # detection latency is the quantity reported.
    from dataclasses import replace as dc_replace

    scenario = zone_intrusion_scenario()
    semantic_rows = []
    for label, config in (
        ("full", SynopsesConfig(enabled_critical=ALL)),
        ("error_bound_only",
         SynopsesConfig(enabled_critical=frozenset({CriticalPointType.TRACK_START}))),
    ):
        generator = SynopsesGenerator(config)
        kept = [r for r in scenario.reports if generator.process(r)[1]]
        kept.extend(generator.finish_all())
        kept.sort(key=lambda r: r.t)
        extractor = SimpleEventExtractor(zones=scenario.zones)
        events = [
            promote(e)
            for e in extractor.process_all(kept)
            if e.event_type.startswith("zone")
        ]
        relaxed = [
            dc_replace(exp, t_to=exp.t_to + config.max_silence_s)
            for exp in scenario.expected
        ]
        score = match_events(events, relaxed)
        semantic_rows.append([
            label,
            len(kept),
            len(scenario.reports),
            score.recall,
            score.mean_latency_s,
        ])
    emit_table(
        "e9_semantic",
        "E9b: zone entry/exit recovered from the synopsis "
        "(window relaxed by max_silence; latency = added detection delay)",
        ["variant", "kept", "of_reports", "recall", "latency_s"],
        semantic_rows,
    )
    assert semantic_rows[0][3] == 1.0  # full synopsis preserves the events

    truth = trajectories[0]
    benchmark(compress_trajectory, truth, SynopsesConfig())


def test_e9c_adaptive_load_shedding(benchmark, maritime_fleet):
    """E9c: the adaptive controller holds keep-rate targets under load.

    For each target keep rate, the floating-threshold generator processes
    the full (noisy) report stream; the table reports the achieved rate
    over the second half (after convergence) and the threshold it settled
    on.
    """
    from repro.insitu.adaptive import AdaptiveConfig, AdaptiveSynopsesGenerator

    reports = list(maritime_fleet.reports)
    half = len(reports) // 2
    rows = []
    for target in (0.02, 0.05, 0.10, 0.20):
        generator = AdaptiveSynopsesGenerator(
            base=SynopsesConfig(dr_error_threshold_m=120.0, max_silence_s=1e9),
            adaptive=AdaptiveConfig(target_keep_rate=target, adjust_every=200),
        )
        kept_tail = 0
        for i, report in enumerate(reports):
            __, keep = generator.process(report)
            if i >= half and keep:
                kept_tail += 1
        achieved = kept_tail / (len(reports) - half)
        rows.append([
            target,
            achieved,
            generator.current_threshold_m,
            len(generator.threshold_history),
        ])
    emit_table(
        "e9c_adaptive",
        "E9c: adaptive synopses — achieved keep rate vs target "
        "(second half of the stream)",
        ["target_keep", "achieved_keep", "final_threshold_m", "adjustments"],
        rows,
    )
    # Within a factor of ~1.5 of every target after convergence (the
    # tightest target saturates against the critical-point floor).
    for target, achieved, *__ in rows[1:]:
        assert achieved == pytest.approx(target, rel=0.6)

    generator = AdaptiveSynopsesGenerator()
    benchmark(lambda: [generator.process(r) for r in reports[:500]])

"""E5 — "reconstruction and forecasting of moving entities' trajectories
in the challenging Maritime (2D space) and Aviation (3D space) domains"
(paper §1).

Horizon sweep over four predictors in both domains. Histories are
reconstructed from the *noisy report streams* (not ground truth), so the
table reflects the full path: sensing → reconstruction → prediction.

Expected shape: dead-reckoning/Kalman win at short horizons; the
pattern-based (route) predictor wins at long horizons on route-following
traffic; errors grow with horizon everywhere; aviation carries a
vertical error column.
"""

import pytest

from benchmarks.conftest import emit_table
from repro.forecasting import (
    DeadReckoningPredictor,
    EnsemblePredictor,
    GridMarkovPredictor,
    KalmanPredictor,
    RouteBasedPredictor,
    horizon_sweep,
)
from repro.geo.grid import GeoGrid
from repro.trajectory.reconstruction import reconstruct_all

HORIZONS_S = [60.0, 300.0, 900.0, 1800.0]


def _reconstructed(sample, max_tracks=None):
    rebuilt = reconstruct_all(sample.reports)
    tracks = [segments[0] for segments in rebuilt.values() if segments]
    return tracks[:max_tracks] if max_tracks else tracks


def _sweep(domain, history_tracks, test_tracks, grid):
    route_model = RouteBasedPredictor(history_tracks, n_routes=10)
    predictors = [
        DeadReckoningPredictor(),
        KalmanPredictor(measurement_noise_m=25.0),
        GridMarkovPredictor(grid, history_tracks),
        route_model,
        EnsemblePredictor(DeadReckoningPredictor(), route_model),
    ]
    sweep = horizon_sweep(
        predictors, test_tracks, HORIZONS_S, min_history_s=600.0, cuts_per_trajectory=3
    )
    rows = []
    for model, results in sweep.items():
        for errors in results:
            rows.append([
                domain,
                model,
                int(errors.horizon_s),
                errors.n,
                errors.mean_horizontal_m(),
                errors.median_horizontal_m(),
                errors.p90_horizontal_m(),
                errors.mean_vertical_m(),
            ])
    return rows, sweep


def test_e5_forecasting_horizon_sweep(benchmark, maritime_fleet, maritime_history, aviation_fleet):
    maritime_grid = GeoGrid(bbox=maritime_fleet.world.bbox, nx=48, ny=48)
    history = _reconstructed(maritime_history)
    test = _reconstructed(maritime_fleet)
    rows, sweep = _sweep("maritime", history, test, maritime_grid)

    aviation_grid = GeoGrid(bbox=aviation_fleet.world.bbox, nx=48, ny=48)
    aviation_tracks = _reconstructed(aviation_fleet)
    av_history, av_test = aviation_tracks[:6], aviation_tracks[6:]
    av_rows, __ = _sweep("aviation", av_history, av_test, aviation_grid)

    emit_table(
        "e5_forecasting",
        "E5: future location prediction error by horizon "
        "(histories reconstructed from noisy streams)",
        ["domain", "model", "horizon_s", "n", "mean_m", "median_m", "p90_m", "vert_m"],
        rows + av_rows,
    )

    # Shape assertions: errors grow with horizon; route-based beats
    # dead-reckoning at the longest horizon on maritime route traffic.
    dr = {e.horizon_s: e.mean_horizontal_m() for e in sweep["dead_reckoning"]}
    assert dr[60.0] < dr[1800.0]
    route = {e.horizon_s: e.mean_horizontal_m() for e in sweep["route_based"]}
    assert route[1800.0] < dr[1800.0]

    predictor = RouteBasedPredictor(history, n_routes=10)
    sample_history = test[0].slice_time(test[0].start_time, test[0].start_time + 1200.0)
    benchmark(predictor.predict, sample_history, 900.0)


def test_e5b_calibrated_intervals(benchmark, maritime_fleet, maritime_history):
    """E5b: calibrated prediction intervals — nominal vs empirical
    coverage.

    The calibrator learns the dead-reckoning error quantiles on one fleet
    and its radii are scored on a disjoint fleet: a well-calibrated model
    covers ≈ its nominal fraction.
    """
    from repro.forecasting import CalibratedPredictor

    validation = _reconstructed(maritime_history)
    test = _reconstructed(maritime_fleet)
    rows = []
    for coverage in (0.5, 0.9):
        calibrated = CalibratedPredictor(
            DeadReckoningPredictor(),
            validation,
            horizons_s=(60.0, 300.0, 900.0),
            coverage=coverage,
        )
        for horizon in (60.0, 300.0, 900.0):
            empirical = calibrated.empirical_coverage(test, horizon)
            rows.append([
                coverage,
                int(horizon),
                calibrated.radius_for_horizon(horizon),
                empirical,
            ])
    emit_table(
        "e5b_calibration",
        "E5b: calibrated interval coverage (trained on a disjoint fleet)",
        ["nominal", "horizon_s", "radius_m", "empirical"],
        rows,
    )
    # Radii grow with horizon and with nominal coverage; empirical
    # coverage lands within sampling tolerance of nominal.
    for nominal, __h, __r, empirical in rows:
        assert abs(empirical - nominal) < 0.35

    calibrated = CalibratedPredictor(
        DeadReckoningPredictor(), validation, horizons_s=(300.0,), coverage=0.9
    )
    history = test[0].slice_time(test[0].start_time, test[0].start_time + 1200.0)
    benchmark(calibrated.predict, history, 300.0)

"""One-command benchmark runner with a standardized schema and a gate.

Runs the micro-batch throughput arms (E2), the multi-process runtime
arms (E2b) and the serving-tier load arms (E11) and writes one
``BENCH_<experiment>.json`` per experiment in the shared ``bench.v1``
schema::

    {
      "schema": "bench.v1",
      "experiment": "e2_micro_batch",
      "workload": {"generator", "seed", "n_vessels", "max_duration_s", "records"},
      "arms": [
        {"name", "batch_size", "workers", "dispatch",
         "records_per_s", "p50_ms", "p95_ms", "p99_ms", "wall_s"},
        ...
      ]
    }

``--check`` compares against a committed baseline
(``benchmarks/baselines/BENCH_baseline.json`` by default) and fails on a
>25% regression. Absolute records/s is machine-bound and noisy across
hosts, so the gate is deliberately *scale-free*: it compares the
batch-256 / batch-1 throughput **ratio** (the quantity the micro-batch
path is supposed to deliver) against the baseline's ratio, plus the
batch path against the same run's per-record path. Both arms of each
ratio run on the same machine in the same job, so host speed cancels;
each arm already reports the minimum of ``--repeats`` runs (noise floor
convention). A third gate holds the columnar RecordBatch core to its
headline win: batch-256 throughput must stay at least
``COLUMNAR_SPEEDUP_FLOOR`` times the archived pre-columnar baseline's
(``BENCH_baseline_pre_columnar.json``) — absolute by design, see
:func:`check_columnar_speedup`. The absolute latency budgets stay with
the dedicated ``latency-slo`` CI job.

Usage::

    PYTHONPATH=src python -m benchmarks.run_all --quick
    PYTHONPATH=src python -m benchmarks.run_all --quick --check
    PYTHONPATH=src python -m benchmarks.run_all --quick --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import time

from benchmarks.bench_e11_serving import (
    BASELINE_PATH as E11_BASELINE_PATH,
    check_serving_regression,
    collect as collect_serving,
)
from benchmarks.bench_e2_latency import (
    REGISTRY_SEED,
    _pipeline,
    emit_batch_table,
    measure_batch_arms,
)
from benchmarks.bench_e2b_runtime import (
    DEFAULT_SERVICE_S,
    check_invariants,
    collect as collect_runtime,
    make_workload,
)
from benchmarks.conftest import RESULTS_DIR
from repro.core.pipeline import BatchOptions
from repro.obs import MetricsRegistry
from repro.sources.generators import MaritimeTrafficGenerator

SCHEMA = "bench.v1"
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines", "BENCH_baseline.json")
#: The baseline archived when the columnar RecordBatch core landed — the
#: last measurement of the old row-at-a-time batch path. The columnar
#: gate compares against this, permanently.
PRE_COLUMNAR_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "BENCH_baseline_pre_columnar.json"
)
#: A current ratio may undershoot its baseline ratio by at most this much.
REGRESSION_TOLERANCE = 0.25
#: The batch-256 arm must sustain at least this many times the archived
#: pre-columnar baseline's batch-256 throughput (the columnar core's
#: headline speedup; see :func:`check_columnar_speedup` on why this one
#: gate is absolute).
COLUMNAR_SPEEDUP_FLOOR = 4.5
#: Batch sizes benched; 1 and 256 anchor the regression ratio.
BATCH_SIZES = (1, 64, 256)


def e2_workload(quick: bool):
    params = {
        "generator": "maritime",
        "seed": 101,
        "n_vessels": 6 if quick else 12,
        "max_duration_s": 3600.0 if quick else 2 * 3600.0,
    }
    sample = MaritimeTrafficGenerator(seed=params["seed"]).generate(
        n_vessels=params["n_vessels"], max_duration_s=params["max_duration_s"]
    )
    params["records"] = len(sample.reports)
    return sample, params


def run_e2_micro_batch(quick: bool, repeats: int) -> dict:
    """The batch-size arms of E2, in the ``bench.v1`` shape."""
    sample, workload = e2_workload(quick)
    arms = measure_batch_arms(sample, batch_sizes=BATCH_SIZES, repeats=repeats)
    emit_batch_table(arms)
    if len({arm["deterministic_digest"] for arm in arms.values()}) != 1:
        raise AssertionError("batch arms computed divergent results")
    return {
        "schema": SCHEMA,
        "experiment": "e2_micro_batch",
        "quick": quick,
        "repeats": repeats,
        "workload": workload,
        "arms": [
            {
                "name": name,
                "batch_size": arm["batch_size"],
                "workers": 1,
                "dispatch": (
                    "record"
                    if arm["batch_size"] is None
                    else "columnar" if name == "recordbatch" else "batch"
                ),
                "records_per_s": arm["records_per_s"],
                "p50_ms": arm["p50_ms"],
                "p95_ms": arm["p95_ms"],
                "p99_ms": arm["p99_ms"],
                "wall_s": arm["wall_s"],
            }
            for name, arm in arms.items()
        ],
    }


def run_e2_stage_share(quick: bool, repeats: int) -> dict:
    """Per-stage wall-clock share of the gated batch-256 arm.

    Makes the "what dominates now" claim checkable in every perf-smoke
    run: the pipeline's stage-wall accumulator (raw elapsed collected at
    the same boundaries that feed the latency histograms) is reported
    per stage — as seconds and as a share of the end-to-end wall — from
    the fastest of ``repeats`` runs. ``untimed_overhead_s`` is the wall
    time outside the instrumented region (batch slicing, column
    construction, finalization).
    """
    sample, workload = e2_workload(quick)
    reports = list(sample.reports)
    best = None
    for _ in range(max(repeats, 2)):
        pipeline = _pipeline(sample, MetricsRegistry(seed=REGISTRY_SEED))
        started = time.perf_counter()
        pipeline.run(reports, batch=BatchOptions(size=256))
        wall_s = time.perf_counter() - started
        if best is None or wall_s < best[0]:
            best = (wall_s, pipeline.stage_wall_seconds())
    wall_s, stage_wall = best
    e2e = stage_wall["end_to_end"]
    shares = {
        stage: (wall / e2e if e2e > 0 else 0.0)
        for stage, wall in stage_wall.items()
        if stage != "end_to_end"
    }
    print("\n== E2 stage share (batch256) ==")
    for stage, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        print(f"  {stage:12s} {stage_wall[stage] * 1e3:8.3f} ms  {share:6.1%}")
    return {
        "schema": SCHEMA,
        "experiment": "e2_stage_share",
        "quick": quick,
        "workload": workload,
        "arms": [
            {
                "name": "batch256",
                "batch_size": 256,
                "workers": 1,
                "dispatch": "batch",
                "records_per_s": len(reports) / wall_s if wall_s > 0 else 0.0,
                "p50_ms": None,
                "p95_ms": None,
                "p99_ms": None,
                "wall_s": wall_s,
                "stage_wall_s": stage_wall,
                "stage_share": shares,
                "untimed_overhead_s": wall_s - e2e,
            }
        ],
    }


def run_e2b_runtime(quick: bool, out_dir: str) -> dict:
    """The worker-count × dispatch arms of E2b, in the ``bench.v1`` shape."""
    spec, reports = make_workload(smoke=quick)
    worker_counts = (1, 2) if quick else (1, 2, 4)
    report, rows = collect_runtime(
        spec,
        reports,
        worker_counts,
        DEFAULT_SERVICE_S,
        out_dir=out_dir,
        dispatch_modes=(True, False),
    )
    failures = check_invariants(rows)
    if failures:
        raise AssertionError("; ".join(failures))
    arms = []
    for key, arm in report["arms"].items():
        workers, __, dispatch = str(key).partition("/")
        summary = arm["summary"]
        wall_s = arm["wall_s"]
        arms.append(
            {
                "name": str(key),
                "batch_size": None,
                "workers": int(workers),
                "dispatch": dispatch or "batch",
                "records_per_s": summary["reports_in"] / wall_s if wall_s > 0 else 0.0,
                # Per-stage latency lives in the worker registries; the
                # runtime experiment measures wall/throughput only.
                "p50_ms": None,
                "p95_ms": None,
                "p99_ms": None,
                "wall_s": wall_s,
                "speedup_vs_1": arm["speedup_vs_1"],
            }
        )
    return {
        "schema": SCHEMA,
        "experiment": "e2b_runtime",
        "quick": quick,
        "workload": {
            "generator": "maritime",
            "seed": 101,
            "n_vessels": 8 if quick else 16,
            "max_duration_s": 1800.0 if quick else 3600.0,
            "records": len(reports),
            "service_time_s": DEFAULT_SERVICE_S,
        },
        "arms": arms,
    }


def _arm(report: dict, name: str) -> dict:
    for arm in report["arms"]:
        if arm["name"] == name:
            return arm
    raise KeyError(f"no arm {name!r} in {report['experiment']}")


def batch_ratio(report: dict) -> float:
    """Throughput(batch 256) / throughput(batch 1) — the gated quantity."""
    return _arm(report, "batch256")["records_per_s"] / _arm(report, "batch1")["records_per_s"]


def normalized_batch256(report: dict) -> float:
    """Throughput(batch 256) / throughput(record) — host speed cancels.

    The per-record path is untouched by the columnar work, so this ratio
    isolates what the batch path gained, comparable across machines.
    """
    return _arm(report, "batch256")["records_per_s"] / _arm(report, "record")["records_per_s"]


def check_regression(current: dict, baseline: dict) -> list[str]:
    """Scale-free regression gates; returns human-readable failures."""
    failures = []
    current_ratio = batch_ratio(current)
    baseline_ratio = batch_ratio(baseline)
    floor = baseline_ratio * (1.0 - REGRESSION_TOLERANCE)
    if current_ratio < floor:
        failures.append(
            f"batch256/batch1 throughput ratio {current_ratio:.2f}x fell below "
            f"{floor:.2f}x (baseline {baseline_ratio:.2f}x - {REGRESSION_TOLERANCE:.0%})"
        )
    # The batch path must also not regress against the per-record path
    # measured in the *same* run (pure within-run comparison).
    record_rps = _arm(current, "record")["records_per_s"]
    batch_rps = _arm(current, "batch256")["records_per_s"]
    if batch_rps < record_rps * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"batch256 ({batch_rps:.0f} rec/s) slower than the per-record "
            f"path ({record_rps:.0f} rec/s) beyond the "
            f"{REGRESSION_TOLERANCE:.0%} tolerance"
        )
    return failures


def check_columnar_speedup(current: dict, pre_columnar: dict) -> list[str]:
    """The columnar core must hold its >=4.5x win over the archived row path.

    Deliberately an *absolute* throughput comparison —
    ``batch256_now >= 4.5 * batch256_pre_columnar`` — the one exception to
    the scale-free convention: the pre-columnar baseline is frozen, so a
    ratio re-measured against today's (also-optimized) scalar path would
    quietly move the goalposts. Valid as long as the gate runs on the
    same hardware class that produced the archive; the 25%-tolerance
    ratio gates absorb ordinary machine variance.
    """
    now = _arm(current, "batch256")["records_per_s"]
    then = _arm(pre_columnar, "batch256")["records_per_s"]
    floor = COLUMNAR_SPEEDUP_FLOOR * then
    if now < floor:
        return [
            f"columnar batch256 throughput {now:.0f} rec/s fell below "
            f"{floor:.0f} rec/s ({COLUMNAR_SPEEDUP_FLOOR:.1f}x the "
            f"pre-columnar baseline's {then:.0f} rec/s)"
        ]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument(
        "--repeats",
        type=int,
        default=0,
        help="runs per arm, minimum reported (default: 5 quick, 3 full)",
    )
    parser.add_argument("--out-dir", default=RESULTS_DIR)
    parser.add_argument(
        "--skip-runtime",
        action="store_true",
        help="skip the multi-process E2b arms (fastest signal)",
    )
    parser.add_argument(
        "--skip-serving",
        action="store_true",
        help="skip the serving-tier E11 load arms",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on >25%% ratio regression vs the committed baseline",
    )
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="(re)write the baseline file from this run's measurements",
    )
    args = parser.parse_args()
    # Quick mode gets *more* repeats, not fewer: the quick workload is small
    # enough that each arm finishes in tens of milliseconds, and the min-of-N
    # noise floor needs ~5 rounds to converge on a shared single-core runner.
    repeats = args.repeats or (5 if args.quick else 3)

    os.makedirs(args.out_dir, exist_ok=True)
    reports = [
        run_e2_micro_batch(args.quick, repeats),
        run_e2_stage_share(args.quick, repeats),
    ]
    if not args.skip_runtime:
        reports.append(run_e2b_runtime(args.quick, args.out_dir))
    serving = None
    serving_failures: list[str] = []
    if not args.skip_serving:
        # collect() writes its own BENCH_e11_serving.json and evaluates
        # the E11 gate battery (SLO budgets, digest equality, cache hit
        # rate, overload shedding).
        serving, serving_failures = collect_serving(args.quick, out_dir=args.out_dir)

    for report in reports:
        path = os.path.join(args.out_dir, f"BENCH_{report['experiment']}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}")

    micro = reports[0]
    print(f"\nbatch256 vs batch1 throughput: {batch_ratio(micro):.2f}x")

    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(micro, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {args.baseline}")
        if serving is not None:
            with open(E11_BASELINE_PATH, "w", encoding="utf-8") as fh:
                json.dump(serving, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote baseline {E11_BASELINE_PATH}")

    if args.check:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_regression(micro, baseline)
        failures.extend(serving_failures)
        if serving is not None and os.path.exists(E11_BASELINE_PATH):
            with open(E11_BASELINE_PATH, encoding="utf-8") as fh:
                e11_baseline = json.load(fh)
            failures.extend(check_serving_regression(serving, e11_baseline))
        columnar_note = ""
        if os.path.exists(PRE_COLUMNAR_BASELINE_PATH):
            with open(PRE_COLUMNAR_BASELINE_PATH, encoding="utf-8") as fh:
                pre_columnar = json.load(fh)
            failures.extend(check_columnar_speedup(micro, pre_columnar))
            speedup = _arm(micro, "batch256")["records_per_s"] / _arm(
                pre_columnar, "batch256"
            )["records_per_s"]
            columnar_note = (
                f"; columnar speedup {speedup:.2f}x vs pre-columnar "
                f"(floor {COLUMNAR_SPEEDUP_FLOOR:.1f}x)"
            )
        if failures:
            for failure in failures:
                print(f"FAIL {failure}")
            return 1
        print(
            f"regression gate OK (baseline ratio {batch_ratio(baseline):.2f}x, "
            f"tolerance {REGRESSION_TOLERANCE:.0%}{columnar_note})"
        )
    elif serving_failures:
        # The E11 gate battery (SLO, digest equality, cache hit rate,
        # shedding) is absolute — it fails the run even without --check.
        for failure in serving_failures:
            print(f"FAIL {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E10 — checkpoint overhead and recovery cost of the streaming tier.

The paper requires operational (ms) latency "without affecting quality of
analytics"; fault tolerance must not eat that budget. Measures:

- end-to-end pipeline wall time at several checkpoint intervals (the
  overhead of taking barriers), and
- recovery cost: resuming from the last checkpoint after a crash at 2/3
  of the stream vs rerunning from scratch, with the work saved.

Expected shape: overhead grows as the interval shrinks (each barrier
deep-copies all operator state, dominated by the RDF store); resume time
stays well under a full rerun and saves ~ the checkpointed prefix.
"""

import time

import pytest

from benchmarks.conftest import emit_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import CheckpointOptions, MobilityPipeline
from repro.streams.chaos import CrashInjector, InjectedCrash
from repro.streams.checkpoint import InMemoryCheckpointStore
from repro.streams.replay import ReplayLog


def _fresh_pipeline(sample):
    return MobilityPipeline(
        bbox=sample.world.bbox,
        config=PipelineConfig(),
        registry=sample.registry,
        zones=sample.world.zones,
    )


def test_e10_checkpoint_overhead(maritime_fleet):
    reports = sorted(maritime_fleet.reports, key=lambda r: r.t)
    rows = []

    baseline = _fresh_pipeline(maritime_fleet).run(reports)
    rows.append(["none", 0, baseline.wall_time_s, 0.0])

    for interval in (2000, 500, 100):
        store = InMemoryCheckpointStore(retain=2)
        result = _fresh_pipeline(maritime_fleet).run(
            reports, checkpoints=CheckpointOptions(store=store, interval=interval)
        )
        n_checkpoints = len(reports) // interval
        overhead = (result.wall_time_s / baseline.wall_time_s - 1.0) * 100.0
        rows.append([str(interval), n_checkpoints, result.wall_time_s, overhead])
        assert result.triples_stored == baseline.triples_stored

    emit_table(
        "e10_checkpoint_overhead",
        "E10: pipeline wall time vs checkpoint interval",
        ["interval", "checkpoints", "wall_s", "overhead_%"],
        rows,
    )


def test_e10_recovery_cost(maritime_fleet):
    reports = sorted(maritime_fleet.reports, key=lambda r: r.t)
    crash_at = len(reports) * 2 // 3
    interval = 500

    full = _fresh_pipeline(maritime_fleet).run(reports)

    store = InMemoryCheckpointStore(retain=2)
    crashed = _fresh_pipeline(maritime_fleet)
    with pytest.raises(InjectedCrash):
        crashed.run(
            CrashInjector(reports, crash_at),
            checkpoints=CheckpointOptions(store=store, interval=interval),
        )

    resumed_pipeline = _fresh_pipeline(maritime_fleet)
    started = time.perf_counter()
    resumed = resumed_pipeline.run(
        ReplayLog(reports), checkpoints=CheckpointOptions(store=store, resume=True)
    )
    resume_wall_s = time.perf_counter() - started

    offset = store.latest().source_offset
    assert resumed.triples_stored == full.triples_stored
    assert len(resumed.simple_events) == len(full.simple_events)

    emit_table(
        "e10_recovery",
        "E10: recovery from last checkpoint vs full rerun",
        ["strategy", "records_replayed", "wall_s"],
        [
            ["full rerun", len(reports), full.wall_time_s],
            [f"resume@{offset}", len(reports) - offset, resume_wall_s],
        ],
    )

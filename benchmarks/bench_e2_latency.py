"""E2 — "must comply with operational latency requirements (i.e. in ms)"
(paper §4).

Measures per-record latency (p50/p95/p99) of every pipeline stage and of
the end-to-end path, plus sustained throughput.

Expected shape: every stage's p99 well under 1 ms on commodity hardware;
the RDF write is the heaviest stage; end-to-end p99 in single-digit ms.
"""

import pytest

from benchmarks.conftest import emit_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import MobilityPipeline


def _fresh_pipeline(sample):
    return MobilityPipeline(
        bbox=sample.world.bbox,
        config=PipelineConfig(),
        registry=sample.registry,
        zones=sample.world.zones,
    )


def test_e2_per_stage_latency(benchmark, maritime_fleet):
    pipeline = _fresh_pipeline(maritime_fleet)
    result = pipeline.run(list(maritime_fleet.reports))

    rows = []
    for stage, summary in result.stage_latency.items():
        rows.append([
            stage,
            int(summary["count"]),
            summary["p50_ms"],
            summary["p95_ms"],
            summary["p99_ms"],
        ])
    rows.append([
        "END-TO-END",
        int(result.end_to_end["count"]),
        result.end_to_end["p50_ms"],
        result.end_to_end["p95_ms"],
        result.end_to_end["p99_ms"],
    ])
    rows.append(["throughput_rps", int(result.throughput_rps), 0.0, 0.0, 0.0])
    emit_table(
        "e2_latency",
        "E2: per-record latency by stage (ms) and sustained throughput",
        ["stage", "records", "p50_ms", "p95_ms", "p99_ms"],
        rows,
    )

    # The paper's ms-latency requirement, verified.
    assert result.end_to_end["p99_ms"] < 50.0
    assert result.throughput_rps > 500.0

    # Benchmark the steady-state per-record path on a warm pipeline.
    warm = _fresh_pipeline(maritime_fleet)
    reports = list(maritime_fleet.reports)
    for report in reports[:2000]:
        warm.process_report(report)
    tail = reports[2000:3000] or reports[:1000]
    index = {"i": 0}

    def one_record():
        report = tail[index["i"] % len(tail)]
        index["i"] += 1
        warm.process_report(report.replace_time(report.t + 10_000.0 + index["i"]))

    benchmark(one_record)


def test_e2b_stream_parallelism(benchmark, maritime_fleet):
    """E2b: simulated task-slot parallelism of the keyed synopses stage.

    The same stream is processed by 1/2/4/8 clones of the synopses
    operator with hash routing by entity; the table reports routing skew
    and the simulated makespan speedup over the single-slot run.
    """
    from benchmarks.conftest import emit_table
    from repro.insitu.synopses import SynopsesOperator
    from repro.streams.parallel import ParallelKeyedRunner
    from repro.streams.records import Record

    records = [Record(event_time=r.t, value=r) for r in maritime_fleet.reports]
    rows = []
    baseline_s = None
    for n_tasks in (1, 2, 4, 8):
        runner = ParallelKeyedRunner(
            SynopsesOperator, n_tasks, key_fn=lambda r: r.entity_id
        )
        outputs, report = runner.run(iter(records))
        if baseline_s is None:
            baseline_s = report.makespan_s
        rows.append([
            n_tasks,
            report.records_in,
            len(outputs),
            report.skew,
            report.sequential_s * 1000.0,
            report.makespan_s * 1000.0,
            baseline_s / report.makespan_s if report.makespan_s > 0 else 1.0,
        ])
    emit_table(
        "e2b_stream_parallel",
        "E2b: keyed synopses stage under simulated task parallelism",
        ["tasks", "records", "kept", "skew", "sequential_ms",
         "makespan_ms", "speedup_vs_1"],
        rows,
    )
    # Outputs are identical regardless of parallelism (keyed state).
    kept_counts = {row[2] for row in rows}
    assert len(kept_counts) == 1

    runner = ParallelKeyedRunner(SynopsesOperator, 4, key_fn=lambda r: r.entity_id)
    benchmark(lambda: runner.run(iter(records[:2000])))

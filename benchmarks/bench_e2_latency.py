"""E2 — "must comply with operational latency requirements (i.e. in ms)"
(paper §4).

Measures per-operator latency (p50/p95/p99) of every pipeline stage and
of the end-to-end path through the unified observability registry, plus
sustained throughput. Three artifacts land in ``benchmarks/results/``:

- ``e2_latency.txt`` — the human-readable table (as before);
- ``e2_latency.json`` — per-operator percentiles, throughput, the SLO
  verdict and the instrumentation-overhead measurement, machine-readable
  and comparable run-to-run (the registry's reservoirs are seeded);
- ``e2_trace.jsonl`` — the full registry export (counters, reservoirs,
  spans) via :class:`~repro.obs.export.JsonLinesExporter`, reloadable
  with identical percentiles.

Two gates hold, in pytest and in the standalone ``--smoke`` entry point:

- the :data:`~repro.obs.slo.DEFAULT_E2_BUDGETS` latency SLOs;
- instrumentation overhead (enabled vs disabled registry) under 5% of
  end-to-end wall time.

Standalone (no pytest-benchmark required)::

    PYTHONPATH=src python -m benchmarks.bench_e2_latency --smoke

Expected shape: every stage's p99 well under 1 ms on commodity hardware;
the RDF write is the heaviest stage; end-to-end p99 in single-digit ms.
"""

import argparse
import gc
import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, emit_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import BatchOptions, MobilityPipeline
from repro.obs import (
    DEFAULT_E2_BUDGETS,
    JsonLinesExporter,
    MetricsRegistry,
    SLOChecker,
)

#: Instrumentation-overhead budget: enabled-registry wall time may exceed
#: the disabled-registry run by at most this fraction.
OVERHEAD_BUDGET = 0.05
#: Repeats per arm per measurement block for the overhead measurement.
OVERHEAD_REPEATS = 6
#: Maximum measurement blocks pooled before the estimate is accepted as-is.
OVERHEAD_BLOCKS = 4
#: Registry seed — fixed so reservoirs (hence percentiles) compare
#: run-to-run on identical sample streams.
REGISTRY_SEED = 2017
#: Batch size of the native-RecordBatch-source arm of the batch bench.
NATIVE_BATCH_SIZE = 256


def _pipeline(sample, metrics, trace_every_n=100):
    return MobilityPipeline(
        bbox=sample.world.bbox,
        config=PipelineConfig(trace_every_n=trace_every_n),
        registry=sample.registry,
        zones=sample.world.zones,
        metrics=metrics,
    )


def run_instrumented(sample, trace_every_n=100):
    """One fully observed run; returns ``(metrics, result)``."""
    metrics = MetricsRegistry(seed=REGISTRY_SEED)
    result = _pipeline(sample, metrics, trace_every_n).run(list(sample.reports))
    return metrics, result


def measure_overhead(sample, repeats=OVERHEAD_REPEATS, max_blocks=OVERHEAD_BLOCKS):
    """Wall-time cost of the observability layer on the E2 workload.

    Times the per-record streaming path (``process_report`` over the whole
    stream, plus the latency-buffer flush) with an enabled and a disabled
    registry and returns ``{"enabled_s", "disabled_s", "overhead_pct",
    "runs_per_arm"}``. The one-time finalize work (summary percentiles,
    registry snapshot) is *reporting* and scales O(1) in the stream
    length, so it is excluded — the budget governs the cost added to
    every record.

    Noise discipline — the true gap (a few percent) sits near the noise
    floor of shared hardware, where wall times swing by 10-20% in
    multi-second bursts:

    - arms run in ABBA order, so neither is always second (which would
      fold machine drift into the comparison);
    - gc is paused and collected between runs (a collection landing
      inside one arm would be charged to it);
    - each arm reports its minimum: the min converges on the noise-free
      floor, which is the quantity the instrumentation actually shifts;
    - samples pool across up to ``max_blocks`` blocks of ``repeats``
      paired runs, stopping as soon as the pooled estimate is inside the
      budget — one block is enough on quiet hardware, while a block that
      straddles a noise burst gets more chances to sample a quiet window
      for both arms.
    """
    reports = list(sample.reports)
    # Untimed warmup of both arms: the first run pays allocator/cache
    # warmup that would otherwise bias whichever arm goes first.
    for enabled in (False, True):
        _pipeline(sample, MetricsRegistry(seed=REGISTRY_SEED, enabled=enabled)).run(
            reports
        )
    times = {True: [], False: []}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for block in range(max_blocks):
            for repeat in range(repeats):
                order = (False, True) if repeat % 2 == 0 else (True, False)
                for enabled in order:
                    metrics = MetricsRegistry(seed=REGISTRY_SEED, enabled=enabled)
                    pipeline = _pipeline(sample, metrics)
                    gc.collect()
                    started = time.perf_counter()
                    for report in reports:
                        pipeline.process_report(report)
                    pipeline._flush_latency()
                    times[enabled].append(time.perf_counter() - started)
            if min(times[True]) / min(times[False]) - 1.0 < OVERHEAD_BUDGET:
                break
    finally:
        if gc_was_enabled:
            gc.enable()
    enabled_s = min(times[True])
    disabled_s = min(times[False])
    return {
        "enabled_s": enabled_s,
        "disabled_s": disabled_s,
        "overhead_pct": (enabled_s / disabled_s - 1.0) * 100.0,
        "runs_per_arm": len(times[True]),
    }


def measure_batch_arms(sample, batch_sizes=(1, 64, 256), repeats=3, trace_every_n=100):
    """Throughput/latency of the stage-sliced batch path per batch size.

    Runs the whole stream through :meth:`MobilityPipeline.run` with
    ``BatchOptions`` once per batch size (plus a ``record`` arm on the classic per-record
    path) and reports each arm's *minimum* wall time — the noise-floor
    convention of :func:`measure_overhead`. The same noise discipline
    applies: arms are interleaved round-robin (``repeats`` rounds, each
    round visiting every arm, alternating direction) so a machine-load
    burst lands on every arm instead of inflating whichever arm happened
    to run during it — essential when downstream gates compare arm
    *ratios*. Latency percentiles come from the run's own
    ``pipeline.end_to_end`` histogram (the batch path samples one
    amortized per-record latency per batch, so the histograms stay
    comparable across arms).

    Returns ``{arm_name: {"batch_size", "wall_s", "records_per_s",
    "p50_ms", "p95_ms", "p99_ms", "deterministic_digest"}}``; digests let
    callers assert the arms computed identical results.
    """
    reports = list(sample.reports)
    named = [("record", None)] + [(f"batch{size}", size) for size in batch_sizes]
    # Native columnar emission: the source yields RecordBatch instances
    # (column construction happens inside the timed run, exactly like the
    # batch arms pay from_reports inside process_batch).
    named.append(("recordbatch", "native"))

    def run_once(batch_size):
        metrics = MetricsRegistry(seed=REGISTRY_SEED)
        pipeline = _pipeline(sample, metrics, trace_every_n)
        gc.collect()
        started = time.perf_counter()
        if batch_size is None:
            result = pipeline.run(reports)
        elif batch_size == "native":
            result = pipeline.run(sample.record_batches(NATIVE_BATCH_SIZE))
        else:
            result = pipeline.run(reports, batch=BatchOptions(size=batch_size))
        return time.perf_counter() - started, metrics, result

    best = {name: None for name, __ in named}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name, batch_size in named:  # untimed warmup (allocator/caches)
            run_once(batch_size)
        for round_no in range(repeats):
            order = named if round_no % 2 == 0 else list(reversed(named))
            for name, batch_size in order:
                wall, metrics, result = run_once(batch_size)
                if best[name] is None or wall < best[name][0]:
                    best[name] = (wall, metrics, result)
    finally:
        if gc_was_enabled:
            gc.enable()

    arms = {}
    for name, batch_size in named:
        best_wall, metrics, result = best[name]
        end_to_end = metrics.histogram_summaries()["pipeline.end_to_end"]
        arms[name] = {
            "batch_size": NATIVE_BATCH_SIZE if batch_size == "native" else batch_size,
            "wall_s": best_wall,
            "records_per_s": len(reports) / best_wall if best_wall > 0 else 0.0,
            "p50_ms": end_to_end["p50_ms"],
            "p95_ms": end_to_end["p95_ms"],
            "p99_ms": end_to_end["p99_ms"],
            "deterministic_digest": result.deterministic_digest(),
        }
    return arms


def emit_batch_table(arms):
    """The batch-size arm table (speedup relative to the batch-1 arm)."""
    base_rps = arms["batch1"]["records_per_s"] if "batch1" in arms else None
    rows = []
    for name, arm in arms.items():
        rows.append([
            name,
            arm["batch_size"] if arm["batch_size"] is not None else "-",
            arm["wall_s"],
            arm["records_per_s"],
            arm["p99_ms"],
            arm["records_per_s"] / base_rps if base_rps else 1.0,
        ])
    emit_table(
        "e2_batch",
        "E2 (batch): stage-sliced micro-batch path vs per-record",
        ["arm", "batch_size", "wall_s", "records_per_s", "p99_ms", "speedup_vs_batch1"],
        rows,
    )


def collect_artifacts(sample, out_dir=RESULTS_DIR, with_overhead=True):
    """Run E2, write the table/JSON/trace artifacts, return the report."""
    metrics, result = run_instrumented(sample)

    summaries = metrics.histogram_summaries()
    stage_rows = []
    stages = {}
    for name in sorted(summaries):
        if not name.startswith(("pipeline.", "store.", "query.")):
            continue
        summary = summaries[name]
        stages[name] = summary
        stage_rows.append([
            name,
            int(summary["count"]),
            summary["p50_ms"],
            summary["p95_ms"],
            summary["p99_ms"],
        ])
    stage_rows.append(["throughput_rps", int(result.throughput_rps), 0.0, 0.0, 0.0])
    emit_table(
        "e2_latency",
        "E2: per-operator latency (ms) and sustained throughput",
        ["operator", "records", "p50_ms", "p95_ms", "p99_ms"],
        stage_rows,
    )

    checker = SLOChecker(DEFAULT_E2_BUDGETS)
    report = {
        "experiment": "e2_latency",
        "registry_seed": REGISTRY_SEED,
        "reports_in": result.reports_in,
        "throughput_rps": result.throughput_rps,
        "operators": stages,
        "end_to_end": summaries["pipeline.end_to_end"],
        "slo": checker.report(metrics),
        "trace": result.metrics.get("trace", {}),
    }
    if with_overhead:
        report["overhead"] = measure_overhead(sample)

    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "e2_latency.json"), "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    JsonLinesExporter().export(metrics, os.path.join(out_dir, "e2_trace.jsonl"))
    return metrics, result, report


def test_e2_per_stage_latency(benchmark, maritime_fleet):
    metrics, result, report = collect_artifacts(maritime_fleet, with_overhead=False)

    # The paper's ms-latency requirement, now an executable contract.
    SLOChecker(DEFAULT_E2_BUDGETS).assert_ok(metrics)
    assert result.throughput_rps > 500.0

    # Benchmark the steady-state per-record path on a warm pipeline.
    warm = _pipeline(maritime_fleet, MetricsRegistry(seed=REGISTRY_SEED))
    reports = list(maritime_fleet.reports)
    for report_ in reports[:2000]:
        warm.process_report(report_)
    tail = reports[2000:3000] or reports[:1000]
    index = {"i": 0}

    def one_record():
        report_ = tail[index["i"] % len(tail)]
        index["i"] += 1
        warm.process_report(report_.replace_time(report_.t + 10_000.0 + index["i"]))

    benchmark(one_record)


def test_e2_batch_size_arms(maritime_fleet):
    """E2 (batch): every arm computes identical results, and the batch
    path's amortized latencies stay inside the same SLO budgets.

    The >= 2x throughput target is gated in ``run_all.py --check`` (ratio
    vs a committed baseline, min-of-N); here the assertion is correctness
    plus sanity, so tier-1 stays robust to shared-hardware noise.
    """
    arms = measure_batch_arms(maritime_fleet, batch_sizes=(1, 64, 256), repeats=1)
    emit_batch_table(arms)
    digests = {arm["deterministic_digest"] for arm in arms.values()}
    assert len(digests) == 1, f"batch arms diverged: {arms}"
    end_to_end_budget = next(
        b for b in DEFAULT_E2_BUDGETS if b.metric == "pipeline.end_to_end"
    )
    for name, arm in arms.items():
        assert arm["records_per_s"] > 0.0, name
        assert arm["p99_ms"] < end_to_end_budget.p99_ms, name


def test_e2c_instrumentation_overhead(maritime_fleet):
    """E2c: the observability layer costs <5% of end-to-end wall time."""
    overhead = measure_overhead(maritime_fleet)
    emit_table(
        "e2c_obs_overhead",
        "E2c: instrumentation overhead (enabled vs disabled registry)",
        ["arm", "wall_s"],
        [
            ["disabled", overhead["disabled_s"]],
            ["enabled", overhead["enabled_s"]],
            ["overhead_pct", overhead["overhead_pct"]],
        ],
    )
    assert overhead["overhead_pct"] < OVERHEAD_BUDGET * 100.0, (
        f"instrumentation overhead {overhead['overhead_pct']:.2f}% "
        f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )


def test_e2b_stream_parallelism(benchmark, maritime_fleet):
    """E2b: simulated task-slot parallelism of the keyed synopses stage.

    The same stream is processed by 1/2/4/8 clones of the synopses
    operator with hash routing by entity; the table reports routing skew
    and the simulated makespan speedup over the single-slot run.
    """
    from benchmarks.conftest import emit_table
    from repro.insitu.synopses import SynopsesOperator
    from repro.streams.parallel import ParallelKeyedRunner
    from repro.streams.records import Record

    records = [Record(event_time=r.t, value=r) for r in maritime_fleet.reports]
    rows = []
    baseline_s = None
    for n_tasks in (1, 2, 4, 8):
        runner = ParallelKeyedRunner(
            SynopsesOperator, n_tasks, key_fn=lambda r: r.entity_id
        )
        outputs, report = runner.run(iter(records))
        if baseline_s is None:
            baseline_s = report.makespan_s
        rows.append([
            n_tasks,
            report.records_in,
            len(outputs),
            report.skew,
            report.sequential_s * 1000.0,
            report.makespan_s * 1000.0,
            baseline_s / report.makespan_s if report.makespan_s > 0 else 1.0,
        ])
    emit_table(
        "e2b_stream_parallel",
        "E2b: keyed synopses stage under simulated task parallelism",
        ["tasks", "records", "kept", "skew", "sequential_ms",
         "makespan_ms", "speedup_vs_1"],
        rows,
    )
    # Outputs are identical regardless of parallelism (keyed state).
    kept_counts = {row[2] for row in rows}
    assert len(kept_counts) == 1

    runner = ParallelKeyedRunner(SynopsesOperator, 4, key_fn=lambda r: r.entity_id)
    benchmark(lambda: runner.run(iter(records[:2000])))


def main() -> int:
    """Standalone entry: run E2, gate on SLO + overhead, write artifacts."""
    from repro.sources.generators import MaritimeTrafficGenerator

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (6 vessels, 1 hour)",
    )
    parser.add_argument("--out-dir", default=RESULTS_DIR)
    parser.add_argument(
        "--batch-sizes",
        default="1,64,256",
        help="comma-separated batch-size arms ('' disables the batch table)",
    )
    args = parser.parse_args()

    if args.smoke:
        sample = MaritimeTrafficGenerator(seed=101).generate(
            n_vessels=6, max_duration_s=3600.0
        )
    else:
        sample = MaritimeTrafficGenerator(seed=101).generate(
            n_vessels=12, max_duration_s=2 * 3600.0
        )
    metrics, result, report = collect_artifacts(sample, out_dir=args.out_dir)
    if args.batch_sizes:
        sizes = tuple(int(s) for s in args.batch_sizes.split(","))
        arms = measure_batch_arms(sample, batch_sizes=sizes, repeats=2)
        emit_batch_table(arms)
        report["batch_arms"] = arms
        with open(
            os.path.join(args.out_dir, "e2_latency.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    failures = []
    if not report["slo"]["ok"]:
        for violation in report["slo"]["violations"]:
            failures.append(
                f"SLO: {violation['metric']} {violation['percentile']} = "
                f"{violation['observed_ms']:.3f} ms > {violation['budget_ms']:.3f} ms"
            )
    overhead_pct = report["overhead"]["overhead_pct"]
    if overhead_pct >= OVERHEAD_BUDGET * 100.0:
        failures.append(
            f"overhead: {overhead_pct:.2f}% >= {OVERHEAD_BUDGET:.0%} budget"
        )

    print(f"\nE2 end-to-end p99: {report['end_to_end']['p99_ms']:.3f} ms")
    print(f"E2 throughput: {report['throughput_rps']:.0f} records/s")
    if "batch_arms" in report:
        arms = report["batch_arms"]
        if len({arm["deterministic_digest"] for arm in arms.values()}) != 1:
            failures.append("batch arms computed divergent results")
        if "batch1" in arms and "batch256" in arms:
            ratio = arms["batch256"]["records_per_s"] / arms["batch1"]["records_per_s"]
            print(f"E2 batch256 vs batch1 throughput: {ratio:.2f}x")
    print(f"E2 instrumentation overhead: {overhead_pct:.2f}%")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("E2 latency SLOs and overhead budget: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

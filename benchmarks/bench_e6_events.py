"""E6 — "recognition and forecasting of complex events ... prediction of
potential collision, capacity demand, hot spots / paths" (paper §1).

Three tables:

- E6a: detection precision/recall/latency per scripted scenario type
  (collision course, loitering, zone intrusion, rendezvous).
- E6b: CER engine + detector throughput on the full surveillance stream.
- E6c: event forecasting — precision/earliness trade-off as the forecast
  horizon grows (zone-transit pattern, automaton-Markov forecaster).

Expected shape: recall 1.0 on every scripted scenario; throughput in the
tens of thousands of records/s; forecasting precision falls (and
forecasts fire earlier) as the horizon grows.
"""

import time

import pytest

from benchmarks.conftest import emit_table
from repro.cep.detectors import CollisionRiskDetector, LoiteringDetector, RendezvousDetector
from repro.cep.evaluation import match_events, promote
from repro.cep.forecast import PatternForecaster
from repro.cep.nfa import PatternEngine
from repro.cep.patterns import Atom, Neg, Seq
from repro.cep.simple import SimpleEventConfig, SimpleEventExtractor
from repro.model.points import Domain
from repro.sources.scenarios import (
    aviation_near_miss_scenario,
    collision_course_scenario,
    loitering_scenario,
    rendezvous_scenario,
    zone_intrusion_scenario,
)


def _run_detection(scenario):
    extractor = SimpleEventExtractor(zones=scenario.zones)
    if scenario.domain is Domain.AVIATION:
        # ATM-style separation: ~5 NM horizontal / ~1000 ft vertical.
        collision = CollisionRiskDetector(
            cpa_threshold_m=9_000.0,
            vertical_threshold_m=300.0,
            tcpa_threshold_s=600.0,
            candidate_radius_m=150_000.0,
        )
    else:
        collision = CollisionRiskDetector()
    loitering = LoiteringDetector(radius_m=800.0, min_duration_s=900.0)
    rendezvous = RendezvousDetector(radius_m=600.0, min_duration_s=600.0)
    detections = []
    for report in scenario.reports:
        detections.extend(collision.process(report))
        detections.extend(loitering.process(report))
        for event in extractor.process(report):
            detections.extend(rendezvous.process(event))
            if event.event_type in ("zone_entry", "zone_exit"):
                detections.append(promote(event))
        detections.extend(rendezvous.tick(report.t))
    scripted = {e for exp in scenario.expected for e in exp.entity_ids}
    expected_types = {exp.event_type for exp in scenario.expected}
    # Score only the scripted entities and the scenario's labelled event
    # types: the converging rendezvous pair, for instance, legitimately
    # also raises collision warnings, which are a different experiment.
    scoped = [
        d for d in detections
        if set(d.entity_ids) <= scripted and d.event_type in expected_types
    ]
    return match_events(scoped, scenario.expected)


def test_e6a_scenario_detection(benchmark):
    scenarios = [
        collision_course_scenario(),
        loitering_scenario(),
        zone_intrusion_scenario(),
        rendezvous_scenario(),
        aviation_near_miss_scenario(),
    ]
    rows = []
    for scenario in scenarios:
        score = _run_detection(scenario)
        rows.append([
            scenario.name,
            len(scenario.expected),
            score.true_positives,
            score.false_positives,
            score.precision,
            score.recall,
            score.mean_latency_s,
        ])
        assert score.recall == 1.0
    emit_table(
        "e6a_detection",
        "E6a: complex event recognition on scripted scenarios",
        ["scenario", "expected", "tp", "fp", "precision", "recall", "latency_s"],
        rows,
    )
    benchmark(_run_detection, collision_course_scenario())


def test_e6b_cep_throughput(benchmark, maritime_fleet):
    reports = list(maritime_fleet.reports)

    def full_stack():
        extractor = SimpleEventExtractor(
            config=SimpleEventConfig(proximity_radius_m=5_000.0),
            zones=maritime_fleet.world.zones,
        )
        collision = CollisionRiskDetector()
        loitering = LoiteringDetector()
        n_events = 0
        for report in reports:
            n_events += len(extractor.process(report))
            n_events += len(collision.process(report))
            n_events += len(loitering.process(report))
        return n_events

    started = time.perf_counter()
    n_events = full_stack()
    elapsed = time.perf_counter() - started
    emit_table(
        "e6b_throughput",
        "E6b: CER stack throughput on the full surveillance stream",
        ["reports", "events_out", "wall_s", "reports_per_s"],
        [[len(reports), n_events, elapsed, len(reports) / elapsed]],
    )
    assert len(reports) / elapsed > 1_000

    benchmark(full_stack)


def test_e6c_event_forecasting_tradeoff(benchmark, maritime_fleet, maritime_history):
    pattern = Seq((Atom("zone_entry"), Neg(Atom("gap_start")), Atom("zone_exit")))
    relevant = {"zone_entry", "zone_exit", "gap_start", "gap_end",
                "stop_begin", "stop_end"}

    def events_of(sample):
        extractor = SimpleEventExtractor(zones=sample.world.zones)
        return [
            e for e in extractor.process_all(sample.reports)
            if e.event_type in relevant
        ]

    train = events_of(maritime_history)
    test = events_of(maritime_fleet)

    rows = []
    for horizon in (2, 5, 10, 20):
        match_engine = PatternEngine(pattern, window_s=3600.0, name="zone_transit")
        matches = match_engine.process_all(test)
        engine = PatternEngine(pattern, window_s=3600.0, name="zone_transit")
        forecaster = PatternForecaster(
            engine, horizon_events=horizon, threshold=0.35, refractory_events=10
        ).fit(train)
        # P(complete | partial match) from state 1 is the forecaster's
        # working point at this horizon.
        p_state1 = forecaster.completion_probability(1)
        forecasts = []
        for event in test:
            forecasts.extend(forecaster.process(event))
        forecast_keys = {f.key for f in forecasts}
        match_keys = {m.key for m in matches}
        precision = (
            len(forecast_keys & match_keys) / len(forecast_keys)
            if forecast_keys else 1.0
        )
        recall = (
            len(forecast_keys & match_keys) / len(match_keys) if match_keys else 0.0
        )
        rows.append([
            horizon, p_state1, len(forecasts), len(matches), precision, recall,
        ])
    emit_table(
        "e6c_forecasting",
        "E6c: event forecasting vs horizon (zone-transit pattern, "
        "threshold 0.35, key-level)",
        ["horizon_events", "P_state1", "forecasts", "completions",
         "precision", "recall"],
        rows,
    )

    engine = PatternEngine(pattern, window_s=3600.0)
    forecaster = PatternForecaster(engine, horizon_events=5, threshold=0.15).fit(train)
    benchmark(lambda: [forecaster.process(e) for e in test[:200]])


def test_e6d_capacity_demand_forecast(benchmark, aviation_fleet):
    """E6d: sector capacity-demand forecasting accuracy vs horizon.

    The forecaster runs per-flight FLP from live tracks and counts
    predicted positions per sector; accuracy is the mean absolute error
    of the per-sector occupancy forecast against ground truth, across
    several "now" instants.
    """
    import numpy as np

    from repro.cep.demand_forecast import SectorDemandForecaster, actual_occupancy
    from repro.forecasting import DeadReckoningPredictor

    sectors = aviation_fleet.world.sectors
    reports = list(aviation_fleet.reports)
    nows = (1800.0, 2700.0, 3600.0)
    rows = []
    for horizon in (120.0, 300.0, 600.0, 1200.0):
        errors = []
        total_forecast = 0
        for now in nows:
            forecaster = SectorDemandForecaster(
                sectors, DeadReckoningPredictor(), capacity=3
            )
            forecaster.observe_all(r for r in reports if r.t <= now)
            forecast = {
                d.sector: d.expected_count
                for d in forecaster.forecast(now, horizon)
            }
            truth = actual_occupancy(aviation_fleet.truth, sectors, now + horizon)
            for sector in sectors:
                predicted = forecast.get(sector.name, 0)
                actual = len(truth.get(sector.name, set()))
                errors.append(abs(predicted - actual))
                total_forecast += predicted
        rows.append([
            int(horizon),
            float(np.mean(errors)),
            float(np.max(errors)),
            total_forecast,
        ])
    emit_table(
        "e6d_demand_forecast",
        "E6d: sector occupancy forecast error vs horizon "
        "(dead-reckoning FLP, per-sector MAE over 3 instants)",
        ["horizon_s", "mae", "max_err", "forecast_total"],
        rows,
    )
    # Short-horizon forecasts must be near-exact; error grows with horizon.
    assert rows[0][1] <= 1.0

    forecaster = SectorDemandForecaster(sectors, DeadReckoningPredictor(), capacity=3)
    forecaster.observe_all(r for r in reports if r.t <= 2700.0)
    benchmark(lambda: forecaster.forecast(2700.0, 600.0))

"""E2b (runtime) — real multi-process speedup of the sharded pipeline.

The original E2b models task parallelism analytically: one process runs
``n`` operator clones and reports the *simulated* makespan (max per-task
busy time + shuffle overhead). This benchmark runs the same keyed-
sharding topology for real: ``repro.runtime`` executes the full pipeline
across worker *processes* with bounded queues and checkpoints, and the
wall clock — spawn, IPC, merge, everything — is the measurement.

Workload model: each record pays ``--service-ms`` of downstream service
wait inside its worker (the remote-store/network RTT of the deployed
system; see :attr:`repro.runtime.WorkerSpec.service_time_s`). Those
waits overlap across processes, which is exactly the regime the paper's
distributed deployment exploits — and the only honest one on a
single-core CI box, where pure-CPU sharding cannot beat one process
(the GIL is not the bottleneck, the core count is). With
``--service-ms 0`` the same harness measures the pure-CPU regime, which
is expected to show ~1x on one core and scale only with real cores.

Artifacts land in ``benchmarks/results/``:

- ``e2b_runtime.txt`` — the table (workers, wall_s, speedup, skew);
- ``e2b_runtime.json`` — the merged :meth:`RuntimeResult.as_dict` of the
  widest run plus the per-arm measurements.

Standalone::

    PYTHONPATH=src python -m benchmarks.bench_e2b_runtime [--smoke]
"""

import argparse
import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, emit_table
from repro.core.pipeline import PipelineSpec
from repro.runtime import RuntimeConfig, Supervisor
from repro.runtime.sharding import ShardRouter
from repro.sources.generators import MaritimeTrafficGenerator

#: Downstream service wait per record (remote-store RTT model), seconds.
DEFAULT_SERVICE_S = 0.001
#: Full-mode gate: wall-clock speedup at 4 workers vs 1 (ISSUE acceptance).
FULL_SPEEDUP_GATE = 1.8
#: Smoke-mode gate: 2 workers on a small stream, loose enough for CI noise.
SMOKE_SPEEDUP_GATE = 1.2


def make_workload(smoke: bool):
    """A multi-entity stream that shards evenly (measured skew ~1.0 at 4)."""
    if smoke:
        sample = MaritimeTrafficGenerator(seed=101).generate(
            n_vessels=8, max_duration_s=1800.0
        )
    else:
        sample = MaritimeTrafficGenerator(seed=101).generate(
            n_vessels=16, max_duration_s=3600.0
        )
    reports = sorted(sample.reports, key=lambda r: r.t)
    spec = PipelineSpec(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=tuple(sample.world.zones),
    )
    return spec, reports


def run_arm(spec, reports, n_workers: int, service_s: float, batch_execute: bool = True):
    """One measured run at ``n_workers``; returns ``(result, wall_s)``."""
    config = RuntimeConfig(
        n_workers=n_workers,
        checkpoint_interval=2000,
        service_time_s=service_s,
        batch_execute=batch_execute,
    )
    started = time.perf_counter()
    result = Supervisor(spec, config).run(reports)
    return result, time.perf_counter() - started


def collect(spec, reports, worker_counts, service_s, out_dir=RESULTS_DIR,
            dispatch_modes=(True,)):
    """Run every arm, emit the table + JSON, return the per-arm report.

    Args:
        dispatch_modes: Which worker dispatch paths to measure —
            ``True`` is the micro-batch hot path (``process_batch`` per
            dequeued queue batch), ``False`` the record-at-a-time path.
            ``(True, False)`` benches them head-to-head per worker count.
    """
    rows = []
    arms = {}
    baseline_s = None
    widest = None
    for n_workers in worker_counts:
        for batch_execute in dispatch_modes:
            result, wall_s = run_arm(
                spec, reports, n_workers, service_s, batch_execute=batch_execute
            )
            if baseline_s is None:
                baseline_s = wall_s
            skew = ShardRouter(n_workers).skew(reports)
            dispatch = "batch" if batch_execute else "record"
            rows.append([
                n_workers,
                dispatch,
                result.workers_spawned,
                result.reports_in,
                result.reports_kept,
                skew,
                wall_s,
                result.reports_in / wall_s,
                baseline_s / wall_s,
            ])
            key = n_workers if dispatch_modes == (True,) else f"{n_workers}/{dispatch}"
            arms[key] = {
                "wall_s": wall_s,
                "batch_execute": batch_execute,
                "speedup_vs_1": baseline_s / wall_s,
                "skew": skew,
                "summary": result.summary(),
            }
            widest = result
    emit_table(
        "e2b_runtime",
        "E2b (runtime): real multi-process pipeline, "
        f"{service_s * 1000.0:.1f} ms service wait per record",
        ["workers", "dispatch", "spawned", "records", "kept", "skew",
         "wall_s", "records_per_s", "speedup_vs_1"],
        rows,
    )
    os.makedirs(out_dir, exist_ok=True)
    report = {
        "experiment": "e2b_runtime",
        "service_time_s": service_s,
        "records": len(reports),
        "arms": {str(k): v for k, v in arms.items()},
        "widest_run": widest.as_dict(),
    }
    with open(os.path.join(out_dir, "e2b_runtime.json"), "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report, rows


def check_invariants(rows) -> list[str]:
    """Counts sharding/dispatch must preserve, identical across all arms."""
    failures = []
    if len({row[3] for row in rows}) != 1:
        failures.append(f"reports_in varies across arms: {rows}")
    if len({row[4] for row in rows}) != 1:
        failures.append(f"reports_kept varies across arms: {rows}")
    return failures


def test_e2b_runtime_real_speedup():
    """Real processes beat one process when service waits can overlap."""
    spec, reports = make_workload(smoke=True)
    report, rows = collect(spec, reports, (1, 2), DEFAULT_SERVICE_S)
    assert not check_invariants(rows)
    assert report["arms"]["2"]["speedup_vs_1"] >= SMOKE_SPEEDUP_GATE


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, 2 workers (CI; gate at "
        f"{SMOKE_SPEEDUP_GATE}x)",
    )
    parser.add_argument(
        "--service-ms",
        type=float,
        default=DEFAULT_SERVICE_S * 1000.0,
        help="downstream service wait per record, in ms",
    )
    parser.add_argument("--out-dir", default=RESULTS_DIR)
    parser.add_argument(
        "--compare-dispatch",
        action="store_true",
        help="bench the micro-batch and record-at-a-time worker dispatch "
        "paths head-to-head at every worker count",
    )
    args = parser.parse_args()

    service_s = args.service_ms / 1000.0
    spec, reports = make_workload(args.smoke)
    worker_counts = (1, 2) if args.smoke else (1, 2, 4)
    dispatch_modes = (True, False) if args.compare_dispatch else (True,)
    report, rows = collect(
        spec, reports, worker_counts, service_s, out_dir=args.out_dir,
        dispatch_modes=dispatch_modes,
    )

    failures = check_invariants(rows)
    top = str(worker_counts[-1])
    if args.compare_dispatch:
        top = f"{worker_counts[-1]}/batch"
    speedup = report["arms"][top]["speedup_vs_1"]
    gate = SMOKE_SPEEDUP_GATE if args.smoke else FULL_SPEEDUP_GATE
    print(f"\nE2b runtime speedup at {top} workers: {speedup:.2f}x (gate {gate}x)")
    if speedup < gate:
        failures.append(f"speedup {speedup:.2f}x below the {gate}x gate")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("E2b runtime invariants and speedup gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
